//! Compare the three persistency models on one workload and system
//! design — a miniature of the paper's Figure 6.
//!
//! Run with: `cargo run --release --example model_shootout [scale]`

use sbrp::core::ModelKind;
use sbrp::harness::{run_workload, RunSpec};
use sbrp::sim::config::SystemDesign;
use sbrp::workloads::WorkloadKind;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be an integer"))
        .unwrap_or(8192);
    println!("Reduction, {scale} elements, scaled-down GPU\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "config", "cycles", "speedup", "PM rd misses"
    );
    let mut baseline = None;
    for (model, system) in [
        (ModelKind::Gpm, SystemDesign::PmFar),
        (ModelKind::Epoch, SystemDesign::PmFar),
        (ModelKind::Sbrp, SystemDesign::PmFar),
        (ModelKind::Epoch, SystemDesign::PmNear),
        (ModelKind::Sbrp, SystemDesign::PmNear),
    ] {
        let out = run_workload(&RunSpec {
            workload: WorkloadKind::Reduction,
            model,
            system,
            scale,
            ..RunSpec::default()
        })
        .expect("cell runs");
        assert!(out.verified);
        let base = *baseline.get_or_insert(out.cycles as f64);
        // Normalize to epoch-far (the second row), as the paper does.
        if model == ModelKind::Epoch && system == SystemDesign::PmFar {
            baseline = Some(out.cycles as f64);
        }
        println!(
            "{:<12} {:>10} {:>11.2}x {:>14}",
            format!("{model}-{system}"),
            out.cycles,
            base / out.cycles as f64,
            out.stats.l1_pm_read_misses,
        );
    }
    println!("\n(speedups are relative to the first row until epoch-far is measured;\n re-run figure6 for the paper's exact normalization)");
}
