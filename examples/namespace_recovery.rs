//! The §3 software model: allocate named persistent regions through the
//! driver's namespace table, write them from a kernel, crash, and
//! re-open the data *by name* from the durable image.
//!
//! Run with: `cargo run --release --example namespace_recovery`

use sbrp::core::ModelKind;
use sbrp::isa::{KernelBuilder, LaunchConfig, MemWidth, Special};
use sbrp::sim::config::{GpuConfig, SystemDesign};
use sbrp::sim::pmem::Namespace;
use sbrp::sim::Gpu;

fn main() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);

    // Driver side: format the device and create two named regions.
    Namespace::format(&mut gpu);
    let data = Namespace::create(&mut gpu, "checkpoint/values", 256 * 8).unwrap();
    let meta = Namespace::create(&mut gpu, "checkpoint/epoch", 8).unwrap();
    println!("created regions: values@{data:#x}, epoch@{meta:#x}");

    // Kernel: persist values, oFence, bump the checkpoint epoch.
    let mut b = KernelBuilder::new();
    b.set_params(vec![data, meta]);
    let data_r = b.param(0);
    let meta_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(data_r, off);
    let v = b.muli(tid, 7);
    b.st(addr, 0, v, MemWidth::W8);
    b.ofence();
    let is_t0 = b.eqi(tid, 0);
    b.if_then(is_t0, |b| {
        let one = b.movi(1);
        b.st(meta_r, 0, one, MemWidth::W8);
    });
    let kernel = b.build("checkpoint");

    gpu.launch(&kernel, LaunchConfig::new(2, 128));
    gpu.run(10_000_000).expect("completes");
    println!("kernel finished at cycle {}", gpu.cycle());

    // Power failure. All we keep is the durable image.
    let image = gpu.durable_image();
    drop(gpu);

    // Recovery: a fresh process re-opens everything by name.
    let values = Namespace::open_in(&image, "checkpoint/values").expect("found by name");
    let epoch = Namespace::open_in(&image, "checkpoint/epoch").expect("found by name");
    println!(
        "recovered: {} regions in the table",
        Namespace::list(&image).len()
    );
    assert_eq!(values.addr, data, "addresses are stable across crashes");
    let e = image.read_u64(epoch.addr);
    println!("checkpoint epoch = {e}");
    if e == 1 {
        for t in 0..256u64 {
            assert_eq!(image.read_u64(values.addr + t * 8), t * 7);
        }
        println!("all 256 checkpointed values verified ✓");
    } else {
        println!(
            "checkpoint incomplete; values may be partial (that's what the epoch mark is for)"
        );
    }
}
