//! Quickstart: build a tiny PM-aware kernel, run it under SBRP on a
//! PM-near GPU, crash it mid-flight, and let the formal checker confirm
//! the durable state respects the persistency model.
//!
//! Run with: `cargo run --release --example quickstart`

use sbrp::core::ModelKind;
use sbrp::isa::{KernelBuilder, LaunchConfig, MemWidth, Special};
use sbrp::sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp::sim::Gpu;

fn main() {
    // A write-ahead-logging idiom: log[t] = v; oFence; data[t] = v.
    let log = PM_BASE;
    let data = PM_BASE + (1 << 20);
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 1000);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence(); // the log entry must persist before the data
    b.st(daddr, 0, v, MemWidth::W8);
    let kernel = b.build("wal_quickstart");

    // Run to completion first.
    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 128));
    let report = gpu.run(10_000_000).expect("completes");
    println!("crash-free run: {} cycles", report.cycles);
    let stats = gpu.stats();
    println!(
        "  instructions={} persists_flushed={} PB-coalesced={}",
        stats.instructions, stats.persist_flushes, stats.pb.coalesced
    );
    gpu.take_trace()
        .expect("tracing on")
        .check()
        .expect("durability order respects PMO");
    println!("  formal check: durability respected PMO ✓");

    // Now crash it mid-run and check the durable cut.
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 128));
    let report = gpu.run_until(800).expect("no deadlock");
    println!("crashed at cycle {}", report.cycles);
    let image = gpu.durable_image();
    let mut logged = 0;
    let mut stored = 0;
    for t in 0..256u64 {
        let l = image.read_u64(log + t * 8);
        let d = image.read_u64(data + t * 8);
        if l != 0 {
            logged += 1;
        }
        if d != 0 {
            stored += 1;
            assert_eq!(l, d, "data persisted before its log entry!");
        }
    }
    println!("  durable: {logged} log entries, {stored} data entries (log ≥ data always)");
    gpu.take_trace()
        .expect("tracing on")
        .check()
        .expect("crash state is a PMO-consistent cut");
    println!("  formal check: crash cut is PMO-downward-closed ✓");
}
