//! Crash a persistent reduction mid-run and resume it: the paper's
//! running example (Fig. 2/3) with native recovery.
//!
//! Run with: `cargo run --release --example reduction_recovery`

use sbrp::core::ModelKind;
use sbrp::sim::config::{GpuConfig, SystemDesign};
use sbrp::sim::{Gpu, RunOutcome};
use sbrp::workloads::{BuildOpts, WorkloadKind};

fn main() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let w = WorkloadKind::Reduction.instantiate(8192, 7);
    let opts = BuildOpts::for_model(ModelKind::Sbrp);

    // Crash-free baseline.
    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let full = gpu.run(1_000_000_000).expect("completes").cycles;
    w.verify_complete(&gpu).expect("correct sum");
    println!("crash-free reduction: {full} cycles");

    // Crash at ~40% of the run.
    let crash_at = full * 2 / 5;
    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let r = gpu.run_until(crash_at).expect("no deadlock");
    assert_eq!(r.outcome, RunOutcome::Crashed);
    let image = gpu.durable_image();
    w.verify_crash_consistent(&image)
        .expect("recoverable image");
    println!("crashed at cycle {crash_at}; durable image is consistent");

    // Native recovery: boot from the image, reload volatile inputs,
    // re-run the same kernel — it resumes from the persisted partials.
    let mut rgpu = Gpu::from_image(&cfg, &image);
    w.init_volatile(&mut rgpu);
    let l = w.kernel(opts);
    rgpu.launch(&l.kernel, l.launch);
    let resumed = rgpu.run(1_000_000_000).expect("completes").cycles;
    w.verify_complete(&rgpu)
        .expect("recovered to the correct sum");
    println!("resumed run finished in {resumed} cycles and verified ✓");
}
