//! Tour of the formal model: model-check every litmus shape, derive the
//! trace-level litmuses from their kernels, show the §5.3
//! scoped-persistency-bug detector at work.
//!
//! Run with: `cargo run --release --example litmus_tour`

use sbrp::core::formal::{PmoGraph, TraceBuilder};
use sbrp::core::ops::PersistOpKind;
use sbrp::core::scope::{Scope, ThreadPos};
use sbrp::mc::{explore, litmus, McOpts};

fn main() {
    println!("SBRP model-checked litmus tour\n");
    println!(
        "{:<30} {:>7} {:>7}  description",
        "litmus", "states", "checks"
    );
    let opts = McOpts::default();
    for shape in litmus::all() {
        // Exhaustive: every interleaving, drain order, and crash cut.
        let report = explore(&shape.program, &shape.spec, &opts);
        assert!(report.verified(), "{}: {:?}", shape.name, report.violations);
        // Derived: the classic trace-level litmus, produced by running
        // the kernel rather than writing the trace by hand.
        let derived = shape.derive();
        derived.check().expect("derived litmus holds");
        println!(
            "{:<30} {:>7} {:>7}  {}",
            shape.name,
            report.states,
            derived.expectations.len(),
            shape.description
        );
    }

    // The §5.3 bug, caught by the detector: block-scoped release/acquire
    // across threadblocks synchronizes but orders nothing.
    println!("\nScoped persistency bug detector (§5.3):");
    let g = scope_bug_trace();
    for bug in g.scope_bugs() {
        println!("  WARNING: {bug}");
    }
    println!("  (fix: use pRel_dev/pAcq_dev — see the `MP+device` shape above)");
}

fn scope_bug_trace() -> PmoGraph {
    let (a, b) = (ThreadPos::new(0u32, 0), ThreadPos::new(1u32, 0));
    let mut tb = TraceBuilder::new();
    let w1 = tb.persist(a, 0x1000);
    let rel = tb.op(a, PersistOpKind::PRel(Scope::Block), Some(0x80));
    let acq = tb.op(b, PersistOpKind::PAcq(Scope::Block), Some(0x80));
    let w2 = tb.persist(b, 0x2000);
    tb.observe(acq, rel);
    let g = tb.finish();
    assert!(!g.pmo_holds(w1, w2));
    g
}
