//! Tour of the formal model: run every litmus test, show the §5.3
//! scoped-persistency-bug detector at work, and validate a hardware
//! execution against the model.
//!
//! Run with: `cargo run --release --example litmus_tour`

use sbrp::core::formal::{litmus, TraceBuilder};
use sbrp::core::ops::PersistOpKind;
use sbrp::core::scope::{Scope, ThreadPos};

fn main() {
    println!("SBRP formal model litmus tour\n");
    println!("{:<28} {:>6}  description", "litmus", "checks");
    for l in litmus::all() {
        l.check().expect("litmus holds");
        println!(
            "{:<28} {:>6}  {}",
            l.name,
            l.expectations.len(),
            l.description
        );
    }

    // The §5.3 bug, caught by the detector: block-scoped release/acquire
    // across threadblocks synchronizes but orders nothing.
    println!("\nScoped persistency bug detector (§5.3):");
    let (a, b) = (ThreadPos::new(0u32, 0), ThreadPos::new(1u32, 0));
    let mut tb = TraceBuilder::new();
    let w1 = tb.persist(a, 0x1000);
    let rel = tb.op(a, PersistOpKind::PRel(Scope::Block), Some(0x80));
    let acq = tb.op(b, PersistOpKind::PAcq(Scope::Block), Some(0x80));
    let w2 = tb.persist(b, 0x2000);
    tb.observe(acq, rel);
    let g = tb.finish();
    assert!(!g.pmo_holds(w1, w2));
    for bug in g.scope_bugs() {
        println!("  WARNING: {bug}");
    }
    println!("  (fix: use pRel_dev/pAcq_dev — see the `correct_device_scope` test)");
}
