//! gpKVS write-ahead undo logging under crash (Fig. 4): insert a batch,
//! kill the power, inspect the log states, replay the log, finish.
//!
//! Run with: `cargo run --release --example kvs_crash_demo`

use sbrp::core::ModelKind;
use sbrp::sim::config::{GpuConfig, SystemDesign};
use sbrp::sim::Gpu;
use sbrp::workloads::{BuildOpts, WorkloadKind};

fn main() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let w = WorkloadKind::Gpkvs.instantiate(2048, 3);
    let opts = BuildOpts::for_model(ModelKind::Sbrp);

    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let full = gpu.run(1_000_000_000).expect("completes").cycles;
    println!("crash-free batch insert: {full} cycles");

    // Crash in the thick of it.
    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let _ = gpu.run_until(full / 2).expect("no deadlock");
    let image = gpu.durable_image();
    w.verify_crash_consistent(&image)
        .expect("every slot is old, new, or undo-able — never garbage");
    println!("crashed at cycle {}; durable KVS is recoverable", full / 2);

    // Recovery kernel: replay the undo log (dFence before clearing it).
    let mut rgpu = Gpu::from_image(&cfg, &image);
    w.init_volatile(&mut rgpu);
    let rec = w.recovery(opts).expect("gpKVS recovers via logging");
    rgpu.launch(&rec.kernel, rec.launch);
    let rec_cycles = rgpu.run(1_000_000_000).expect("completes").cycles;
    println!("log replay took {rec_cycles} cycles");

    // Re-run the batch (idempotent): committed inserts are skipped.
    let l = w.kernel(opts);
    rgpu.launch(&l.kernel, l.launch);
    rgpu.run(1_000_000_000).expect("completes");
    w.verify_complete(&rgpu)
        .expect("all pairs inserted exactly once");
    println!("batch completed after recovery ✓");
}
