//! Open-loop request serving against the persistent gpKVS: a seeded
//! Poisson stream of get/put/delete requests with Zipfian keys is
//! batched onto the simulated GPU, each batch made durable by a
//! write-ahead-logged kernel, and every request's latency measured from
//! arrival to durable ack — then the same stream is replayed with a
//! power failure injected mid-stream to show exactly which requests the
//! host must replay.
//!
//! Run with: `cargo run --release --example kvs_serving`

use sbrp::harness::serve::{run_service, run_service_detailed, ServeModel, ServeSpec};

fn main() {
    // A small serving cell: 512 requests at 8 req/kilocycle against a
    // 2048-key store, batches of up to 32 lanes that linger at most
    // 1000 cycles waiting to fill.
    let spec = ServeSpec {
        model: ServeModel::Sbrp,
        rate_milli: 8_000, // requests per kilocycle, x1000
        requests: 512,
        scale: 2048,
        batch: 32,
        linger: 1_000,
        small_gpu: true,
        ..ServeSpec::default()
    };

    let out = run_service(&spec).expect("serving run completes");
    assert!(out.verified, "store must equal the acked request history");
    println!(
        "SBRP: {} requests in {} cycles ({:.2} req/kcycle) across {} batches",
        out.completed,
        out.duration,
        out.throughput_kilo(),
        out.batches,
    );
    println!(
        "latency (cycles): mean {:.0}  p50 {}  p95 {}  p99 {}  p999 {}",
        out.hist.mean(),
        out.hist.p50,
        out.hist.p95,
        out.hist.p99,
        out.hist.p999,
    );

    // The same stream under GPM: every ordering point is an epoch
    // barrier and the PM sits across the interconnect, so the ack path
    // is far longer and the tail collapses at a much lower offered rate.
    let gpm = run_service(&ServeSpec {
        model: ServeModel::Gpm,
        ..spec
    })
    .expect("GPM run completes");
    assert!(gpm.verified);
    println!(
        "GPM:  {:.2} req/kcycle, p99 {} cycles ({}x SBRP's p99)",
        gpm.throughput_kilo(),
        gpm.hist.p99,
        gpm.hist.p99 / out.hist.p99.max(1),
    );

    // Kill the power mid-stream. The durable ack is the contract: every
    // acked request survives the crash, and the replay set is exactly
    // the admitted-but-unacked requests at the crash instant.
    let (crashed, detail) = run_service_detailed(&ServeSpec {
        crash_at: Some(out.duration / 2),
        ..spec
    })
    .expect("crash run completes");
    let crash = crashed.crash_cycle.expect("injected crash fires");
    assert!(crashed.verified && detail.rollback_ok);
    let acked_before = detail
        .acked
        .iter()
        .filter(|a| a.is_some_and(|c| c <= crash))
        .count();
    println!(
        "crash at cycle {crash}: {acked_before} requests already durable, \
         {} replayed, recovery took {} cycles",
        crashed.replayed, crashed.recovery_cycles,
    );
    println!("post-recovery store verified ✓");
}
