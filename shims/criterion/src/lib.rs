//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the benchmarking API subset its
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then a fixed
//! number of timed iterations reported as mean wall-clock time per
//! iteration. There is no statistical analysis, outlier rejection, or
//! HTML report — the point is that `cargo bench` still produces usable
//! relative numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration metadata (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, running a warm-up pass then `iters` measured passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.ns_per_iter = total / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets measured iterations per benchmark (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Declares work per iteration for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / b.ns_per_iter)
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 * 1e3 / b.ns_per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.0} ns/iter{}",
            self.name, id, b.ns_per_iter, rate
        );
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// Ends the group (upstream parity; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group(&name);
        g.run_one("", f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        g.finish();
        // 1 warm-up + 3 measured.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
    }
}
