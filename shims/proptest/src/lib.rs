//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the property-testing API subset it
//! actually uses: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prop_oneof!`], [`Strategy`] with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec`], and `any::<T>()`.
//!
//! Semantics: each test runs `ProptestConfig::cases` iterations with
//! inputs drawn from a deterministic per-test generator. Failures report
//! the failing inputs. Unlike upstream proptest there is **no input
//! shrinking** and no persistence of regression seeds — failures print
//! the full input instead. That trades debugging convenience for zero
//! dependencies; the deterministic seed keeps failures reproducible.

pub mod test_runner {
    //! Test execution support: configuration, error type, generator.

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` iterations.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (treated as a skip).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with a reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with a reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Result of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator driving input creation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (stable across runs).
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        ///
        /// # Panics
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let r = (u128::from(rng.next_u64()) % span) as $t;
                    self.start.wrapping_add(r)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! Default strategies per type (`any::<T>()`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything the tests import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: `proptest! { #![proptest_config(...)]
/// #[test] fn name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let desc = format!("{:?}", values);
                let ($($pat,)+) = values;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err(e)) => panic!(
                        "[proptest shim] {} case {}/{} failed: {}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, e, desc
                    ),
                    Err(payload) => {
                        eprintln!(
                            "[proptest shim] {} case {}/{} panicked\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, desc
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{} ({:?} vs {:?})", format!($($fmt)+), a, b);
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} (both {:?})", format!($($fmt)+), a);
    }};
}

/// Weighted (or unweighted) choice between strategies:
/// `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

// Re-exported at the root so `proptest::prop_oneof!`-style paths and the
// prelude both work.
pub use arbitrary::any;
pub use strategy::{Just, Strategy};

/// Smoke tests for the shim itself.
#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u32),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3u64..10, (a, b) in (0u32..4, 0usize..2)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 4, "a = {}", a);
            prop_assert!(b < 2);
        }

        #[test]
        fn vec_and_oneof(ops in collection::vec(
            prop_oneof![2 => (0u32..7).prop_map(Op::A), 1 => Just(Op::B)],
            1..20,
        )) {
            prop_assert!(!ops.is_empty());
            for op in &ops {
                if let Op::A(v) = op {
                    prop_assert!(*v < 7);
                }
            }
        }

        #[test]
        fn any_works(x in any::<u64>(), y in any::<usize>()) {
            // Trivially true; exercises generation + Debug printing.
            prop_assert_eq!(x.wrapping_add(y as u64), (y as u64).wrapping_add(x));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn question_mark_and_reject() {
        fn helper() -> Result<(), TestCaseError> {
            Err(TestCaseError::fail("nope"))
        }
        assert!(helper().is_err());
        let r = TestCaseError::reject("skip");
        assert!(matches!(r, TestCaseError::Reject(_)));
    }
}
