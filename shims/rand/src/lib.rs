//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *small API subset it actually
//! uses* behind the same paths as `rand` 0.9: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic, seedable, and of
//! perfectly adequate quality for workload-input generation (the only
//! use in this workspace). It is **not** the same stream as upstream
//! `rand`, which is fine: nothing in the repo depends on the exact
//! pseudo-random sequence, only on determinism for a fixed seed.

/// Core generator interface: a source of pseudo-random words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                self.start.wrapping_add(r as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let r = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                start.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (the `rand` 0.9 name).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `u64` (the `rand` 0.9 name for `gen()`).
    fn random(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniformly random bool.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.random_range(0..3usize);
            assert!(w < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes all");
    }
}
