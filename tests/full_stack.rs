//! Workspace-level integration tests through the `sbrp` facade: the
//! whole stack from kernel construction to formal checking.

use sbrp::core::ModelKind;
use sbrp::harness::{geomean, run_recovery, run_workload, Fig6Bar, RunSpec};
use sbrp::mc::litmus;
use sbrp::sim::config::SystemDesign;
use sbrp::workloads::WorkloadKind;

/// Every workload × every Figure 6 bar, one small run each: verified
/// results everywhere. This is the figure harness's exact code path.
#[test]
fn figure6_matrix_smoke() {
    for kind in WorkloadKind::ALL {
        for bar in Fig6Bar::ALL {
            let (model, system) = bar.model_system();
            let out = run_workload(&RunSpec {
                workload: kind,
                model,
                system,
                scale: 512,
                small_gpu: true,
                ..RunSpec::default()
            })
            .expect("cell runs");
            assert!(out.verified, "{kind}/{}", bar.label());
            assert!(out.cycles > 0);
            assert_eq!(
                out.stats.stall.bucket_sum(),
                out.stats.stall.total,
                "{kind}/{}: stall buckets sum to total",
                bar.label()
            );
        }
    }
}

/// Crash-recovery timing measurement works for every workload.
#[test]
fn recovery_measurement_smoke() {
    for kind in [
        WorkloadKind::Gpkvs,
        WorkloadKind::Reduction,
        WorkloadKind::Scan,
    ] {
        for model in [ModelKind::Epoch, ModelKind::Sbrp] {
            let out = run_recovery(
                &RunSpec {
                    workload: kind,
                    model,
                    system: SystemDesign::PmNear,
                    scale: 512,
                    small_gpu: true,
                    ..RunSpec::default()
                },
                0.6,
            )
            .expect("recovery runs");
            assert!(out.verified, "{kind}/{model}");
            assert!(out.recovery_cycles > 0);
            assert!(out.crash_cycle < out.crash_free_cycles);
        }
    }
}

/// The litmus suite is re-exported and passes through the facade: each
/// kernel-backed shape derives a trace-level litmus that holds.
#[test]
fn litmus_suite_via_facade() {
    for shape in litmus::all() {
        shape.derive().check().unwrap();
    }
}

/// Buffering is observable end-to-end: SBRP coalesces persists where the
/// epoch baseline cannot.
#[test]
fn sbrp_reports_buffer_activity() {
    let out = run_workload(&RunSpec {
        workload: WorkloadKind::Gpkvs,
        model: ModelKind::Sbrp,
        scale: 512,
        small_gpu: true,
        ..RunSpec::default()
    })
    .expect("cell runs");
    assert!(out.stats.pb.stores > 0);
    assert!(out.stats.pb.coalesced > 0, "logging coalesces in the PB");
    assert!(out.stats.pb.acks == out.stats.pb.flushes);

    let epoch = run_workload(&RunSpec {
        workload: WorkloadKind::Gpkvs,
        model: ModelKind::Epoch,
        scale: 512,
        small_gpu: true,
        ..RunSpec::default()
    })
    .expect("cell runs");
    assert_eq!(epoch.stats.pb.stores, 0, "no PB under the epoch baseline");
    assert!(epoch.stats.epoch_rounds > 0);
}

/// The geometric-mean helper used by every figure binary.
#[test]
fn geomean_is_stable_under_permutation() {
    let a = geomean(&[1.2, 0.8, 3.0, 1.0]);
    let b = geomean(&[3.0, 1.0, 1.2, 0.8]);
    assert!((a - b).abs() < 1e-12);
}
