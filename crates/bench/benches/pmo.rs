//! Criterion benches for the formal PMO model: trace construction and
//! the crash-cut checker on synthetic release/acquire chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbrp_core::formal::TraceBuilder;
use sbrp_core::ops::PersistOpKind;
use sbrp_core::scope::{Scope, ThreadPos};
use std::collections::HashSet;

fn build_chain(threads: u32, per_thread: u32) -> sbrp_core::formal::PmoGraph {
    let mut tb = TraceBuilder::new();
    let mut last_rel = None;
    for t in 0..threads {
        let th = ThreadPos::new(0u32, t);
        let acq = tb.op(th, PersistOpKind::PAcq(Scope::Block), Some(0x80));
        if let Some(rel) = last_rel {
            tb.observe(acq, rel);
        }
        for i in 0..per_thread {
            tb.persist(th, 0x1000 + u64::from(t) * 0x100 + u64::from(i) * 8);
            if i % 4 == 3 {
                tb.op(th, PersistOpKind::OFence, None);
            }
        }
        last_rel = Some(tb.op(th, PersistOpKind::PRel(Scope::Block), Some(0x80)));
    }
    tb.finish()
}

fn bench_pmo(c: &mut Criterion) {
    let mut g = c.benchmark_group("pmo");
    for &threads in &[8u32, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("build_chain", threads),
            &threads,
            |b, &t| {
                b.iter(|| build_chain(t, 16));
            },
        );
        let graph = build_chain(threads, 16);
        let durable: HashSet<_> = graph.persists().take(threads as usize * 8).collect();
        g.bench_with_input(BenchmarkId::new("crash_cut", threads), &threads, |b, _| {
            b.iter(|| graph.check_crash_cut(&durable).is_ok());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pmo);
criterion_main!(benches);
