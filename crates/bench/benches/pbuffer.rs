//! Criterion benches for the SBRP persist-buffer engine: store
//! acceptance, coalescing, drain, and acknowledgement throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbrp_core::pbuffer::{DrainAction, DrainPolicy, LineIdx, PbConfig, PersistUnit};
use sbrp_core::scope::{Scope, WarpSlot};

fn drain_and_ack(unit: &mut PersistUnit) {
    loop {
        let actions = unit.tick(64);
        if actions.is_empty() && unit.outstanding() == 0 {
            break;
        }
        for a in actions {
            let DrainAction::Flush { line, .. } = a;
            unit.ack_persist(line);
        }
    }
}

fn bench_store_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("pbuffer/store");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("coalescing_1024_stores_64_lines", |b| {
        b.iter(|| {
            let mut unit = PersistUnit::new(PbConfig::default());
            for i in 0..1024u32 {
                let _ = unit.persist_store(WarpSlot::new((i % 32) as usize), LineIdx(i % 64));
            }
            unit.set_drain_all(true);
            drain_and_ack(&mut unit);
            unit
        });
    });
    g.finish();
}

fn bench_fence_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("pbuffer/fences");
    g.throughput(Throughput::Elements(256));
    g.bench_function("ofence_per_store", |b| {
        b.iter(|| {
            let mut unit = PersistUnit::new(PbConfig {
                capacity: 512,
                policy: DrainPolicy::Eager,
                ..PbConfig::default()
            });
            for i in 0..256u32 {
                let w = WarpSlot::new((i % 32) as usize);
                let _ = unit.persist_store(w, LineIdx(i));
                let _ = unit.ofence(w);
                for a in unit.tick(64) {
                    let DrainAction::Flush { line, .. } = a;
                    unit.ack_persist(line);
                }
                let _ = unit.take_resumable();
            }
            drain_and_ack(&mut unit);
            unit
        });
    });
    g.bench_function("release_acquire_chain", |b| {
        b.iter(|| {
            let mut unit = PersistUnit::new(PbConfig::default());
            for i in 0..128u32 {
                let rel = WarpSlot::new((i % 16) as usize);
                let acq = WarpSlot::new(16 + (i % 16) as usize);
                let _ = unit.persist_store(rel, LineIdx(i));
                let _ = unit.prel(rel, Scope::Block);
                let _ = unit.pacq(acq, Scope::Block);
                let _ = unit.persist_store(acq, LineIdx(256 + i));
                for a in unit.tick(64) {
                    let DrainAction::Flush { line, .. } = a;
                    unit.ack_persist(line);
                }
                let _ = unit.take_resumable();
            }
            drain_and_ack(&mut unit);
            unit
        });
    });
    g.finish();
}

criterion_group!(benches, bench_store_coalesce, bench_fence_heavy);
criterion_main!(benches);
