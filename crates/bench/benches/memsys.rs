//! Criterion benches for the memory subsystem: cache lookups and the
//! latency/bandwidth channel under load.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::mem::{Cache, Channel, MemSubsystem, PersistDest, ReqTag};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys/cache");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("lookup_install_stream", |b| {
        b.iter(|| {
            let mut cache = Cache::new(64 * 1024, 4, 128);
            for i in 0..4096u64 {
                let addr = (i * 128) % (256 * 1024);
                if cache.lookup(addr).is_none() {
                    let (way, _) = cache.choose_victim(addr);
                    cache.install(way, addr, i % 3 == 0, false);
                }
            }
            cache.stats()
        });
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys/channel");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("bandwidth_queueing", |b| {
        b.iter(|| {
            let mut ch = Channel::new(30.0, 400);
            let mut last = 0;
            for i in 0..10_000u64 {
                let (_, done) = ch.access(i * 2, 128);
                last = done;
            }
            last
        });
    });
    g.finish();
}

fn bench_subsystem(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys/subsystem");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("persist_flush_pipeline", |b| {
        let cfg = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
        b.iter(|| {
            let mut ms = MemSubsystem::new(&cfg);
            for i in 0..1024u64 {
                ms.submit_persist_flush(
                    i,
                    PM_BASE + i * 128,
                    vec![(PM_BASE + i * 128, vec![0u8; 128])],
                    PersistDest::Detached,
                    vec![],
                );
            }
            let mut acks = 0u32;
            while let Some(at) = ms.next_event() {
                for cpl in ms.poll(at) {
                    if let ReqTag::PersistAck { ack_id } = cpl.tag {
                        let _ = ms.take_persist_dest(ack_id);
                        acks += 1;
                    }
                }
            }
            acks
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_channel, bench_subsystem);
criterion_main!(benches);
