//! Criterion benches for whole-GPU simulation throughput: small
//! instances of the paper's workloads under SBRP and Epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::{run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

fn bench_small_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for kind in [
        WorkloadKind::Gpkvs,
        WorkloadKind::Reduction,
        WorkloadKind::Scan,
    ] {
        for model in [ModelKind::Epoch, ModelKind::Sbrp] {
            let id = BenchmarkId::new(format!("{kind}"), format!("{model}"));
            g.bench_with_input(id, &(kind, model), |b, &(kind, model)| {
                b.iter(|| {
                    run_workload(&RunSpec {
                        workload: kind,
                        model,
                        system: SystemDesign::PmNear,
                        scale: 512,
                        ..RunSpec::default()
                    })
                    .expect("cell runs")
                    .cycles
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_small_kernels);
criterion_main!(benches);
