//! End-to-end crash-and-resume test of the `campaign` binary: a sweep
//! is SIGKILLed mid-flight, resumed with `--resume`, and the resumed
//! stdout must be byte-identical to an uninterrupted run — the
//! harness-side analogue of the paper's recoverability guarantee.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// A unique throwaway directory; removed by the returned guard.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sbrp-kill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn campaign_cmd(journal: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args([
        "--quick",
        "--scale",
        "128",
        "--points",
        "3",
        "--small",
        "--no-cache",
        "--jobs",
        "2",
        "--journal-dir",
    ])
    .arg(journal);
    if resume {
        cmd.arg("--resume");
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    cmd
}

/// Counts journal record files under the (single) per-sweep directory.
fn journal_records(journal: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(journal) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|sweep_dir| {
            std::fs::read_dir(sweep_dir.path())
                .map(|records| records.filter_map(|r| r.ok()).count())
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn sigkill_mid_sweep_then_resume_matches_uninterrupted_output() {
    // Reference: one uninterrupted run.
    let clean_journal = TempDir::new("clean");
    let clean = campaign_cmd(&clean_journal.0, false)
        .output()
        .expect("clean campaign run");
    assert!(
        clean.status.success(),
        "clean campaign must pass: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let total_records = journal_records(&clean_journal.0);
    assert!(total_records >= 2, "quick campaign journals its cells");

    // Victim: SIGKILL as soon as some (not all) cells are journaled.
    let journal = TempDir::new("victim");
    let mut victim = campaign_cmd(&journal.0, false)
        .spawn()
        .expect("victim campaign spawns");
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        if journal_records(&journal.0) >= 1 {
            // SIGKILL, not SIGTERM: no destructors, no atexit — the
            // journal alone must carry the recovery.
            victim.kill().expect("SIGKILL victim");
            break;
        }
        if victim.try_wait().expect("poll victim").is_some() {
            // The whole sweep finished before we saw a record — rare,
            // but the resume path below still exercises a full journal.
            break;
        }
        assert!(Instant::now() < deadline, "victim made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = victim.wait();

    // Resume: only missing cells run; stdout must match the clean run.
    let resumed = campaign_cmd(&journal.0, true)
        .output()
        .expect("resumed campaign run");
    assert!(resumed.status.success(), "resumed campaign must pass");
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed output must be byte-identical to the uninterrupted run"
    );
}

#[test]
fn failed_cells_produce_error_rows_and_a_nonzero_exit() {
    // A 1 ms deadline no simulation can meet: every cell becomes an
    // explicit engine-failure row and the binary must exit nonzero.
    let journal = TempDir::new("deadline");
    let out = campaign_cmd(&journal.0, false)
        .args(["--cell-timeout", "0.001"])
        .output()
        .expect("deadline campaign run");
    assert!(
        !out.status.success(),
        "a campaign whose cells all failed must exit nonzero"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("deadline"),
        "the report must carry explicit deadline error rows: {stdout}"
    );
}
