//! Golden-diagnostic pin of the inter-thread linter over the stock
//! workload kernels — the same kernel set the CI `lint-workloads` step
//! scans with `lint --interthread --fix --sarif`.
//!
//! Two snapshots are committed under `tests/golden/`:
//!
//! * `workloads.lint.txt` — the text report of every kernel with at
//!   least one finding;
//! * `workloads.sarif` — the full SARIF 2.1.0 log (what CI uploads as
//!   a code-scanning artifact).
//!
//! Regenerate after an intentional diagnostic change with:
//! `SBRP_UPDATE_GOLDEN=1 cargo test -p sbrp-bench --test lint_workloads`

use sbrp_core::ModelKind;
use sbrp_lint::{lint_all, LintConfig, LintReport, Severity};
use sbrp_workloads::{BuildOpts, Launchable, Micro, WorkloadKind};
use std::path::PathBuf;

const MODELS: [ModelKind; 3] = [ModelKind::Sbrp, ModelKind::Epoch, ModelKind::Gpm];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Every stock kernel under every model, in the bench binary's order.
fn reports() -> Vec<(String, LintReport)> {
    let mut out = Vec::new();
    let mut push = |ctx: String, l: &Launchable| {
        let cfg = LintConfig::with_launch(l.launch);
        out.push((ctx, lint_all(&l.kernel, &cfg)));
    };
    for kind in WorkloadKind::ALL {
        let w = kind.instantiate(256, 42);
        for model in MODELS {
            let opts = BuildOpts::for_model(model);
            push(format!("{kind}/{model:?}/main"), &w.kernel(opts));
            if let Some(rec) = w.recovery(opts) {
                push(format!("{kind}/{model:?}/recovery"), &rec);
            }
        }
    }
    for micro in Micro::ALL {
        for model in MODELS {
            push(
                format!("micro-{}/{model:?}", micro.label()),
                &micro.kernel(BuildOpts::for_model(model), 8),
            );
        }
    }
    out
}

fn check_snapshot(path: &PathBuf, got: &str, update: bool) {
    if update {
        std::fs::write(path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        want,
        got,
        "{} drifted (SBRP_UPDATE_GOLDEN=1 to regenerate)",
        path.display()
    );
}

#[test]
fn workload_diagnostics_match_golden_snapshots() {
    let update = std::env::var("SBRP_UPDATE_GOLDEN").is_ok();
    let all = reports();

    let mut text = String::new();
    for (ctx, r) in &all {
        if !r.diags.is_empty() {
            text.push_str(&format!("== {ctx}\n{}", r.to_text()));
        }
    }
    check_snapshot(&golden_path("workloads.lint.txt"), &text, update);

    let bare: Vec<LintReport> = all.iter().map(|(_, r)| r.clone()).collect();
    check_snapshot(
        &golden_path("workloads.sarif"),
        &sbrp_lint::sarif(&bare),
        update,
    );
}

/// The gate CI enforces: stock kernels carry warnings (may-alias races
/// on hash-computed addresses) and perf notes, but never error-severity
/// findings — those fail the build.
#[test]
fn workload_kernels_have_no_error_severity_findings() {
    for (ctx, r) in reports() {
        assert_eq!(
            r.count(Severity::Error),
            0,
            "{ctx}: error-severity finding on a stock kernel:\n{}",
            r.to_text()
        );
    }
}
