//! # sbrp-bench
//!
//! The paper-evaluation harness: one binary per table/figure of §7
//! (`table1`, `table2`, `figure6` … `figure11`), plus Criterion
//! micro-benchmarks (`cargo bench`) over the persist buffer, the PMO
//! checker, the memory system, and small end-to-end kernels.
//!
//! Every figure binary accepts:
//!
//! * `--scale N` — override the per-workload default size;
//! * `--small` — simulate a scaled-down 4-SM GPU instead of the paper's
//!   30-SM Table 1 machine (faster, same qualitative shapes);
//! * `--csv` — emit CSV instead of an aligned text table;
//! * `--json` — emit JSON instead of an aligned text table;
//! * `--trace-out FILE` — also write a Chrome-trace JSON timeline
//!   (load it in Perfetto / `chrome://tracing`) for a representative
//!   cell; binaries that don't trace ignore it;
//! * `--jobs N` — worker threads for the sweep (default: all hardware
//!   threads; `--jobs 1` reproduces the historical serial behaviour,
//!   byte-identically);
//! * `--no-cache` — ignore and don't write the `outputs/.cache` result
//!   cache.
//!
//! Run one with e.g. `cargo run -p sbrp-bench --release --bin figure6`.

use sbrp_harness::report::Table;
use sbrp_harness::sweep::SweepOpts;

/// Options shared by all figure binaries.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    /// Override the per-workload default scale.
    pub scale: Option<u64>,
    /// Use the scaled-down 4-SM GPU instead of the default Table 1
    /// machine (faster, less faithful).
    pub small: bool,
    /// Emit CSV instead of text.
    pub csv: bool,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Write a Chrome-trace timeline of one representative cell here.
    pub trace_out: Option<String>,
    /// Sweep worker threads; `None` (default) uses all hardware
    /// threads, `Some(1)` is serial.
    pub jobs: Option<usize>,
    /// Bypass the on-disk result cache.
    pub no_cache: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    /// Panics (with usage help) on unknown flags or a malformed
    /// `--scale`.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    cli.scale = Some(v.parse().expect("--scale must be an integer"));
                }
                "--small" => cli.small = true,
                "--csv" => cli.csv = true,
                "--json" => cli.json = true,
                "--trace-out" => {
                    cli.trace_out = Some(args.next().expect("--trace-out needs a file path"));
                }
                "--jobs" => {
                    let v = args.next().expect("--jobs needs a value");
                    let n: usize = v.parse().expect("--jobs must be a positive integer");
                    assert!(n > 0, "--jobs must be at least 1");
                    cli.jobs = Some(n);
                }
                "--no-cache" => cli.no_cache = true,
                "--help" | "-h" => {
                    println!(
                        "usage: <figure-bin> [--scale N] [--small] [--csv] [--json] \
                         [--trace-out FILE] [--jobs N] [--no-cache]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        cli
    }

    /// The sweep-engine configuration these flags select.
    #[must_use]
    pub fn sweep_opts(&self) -> SweepOpts {
        SweepOpts {
            jobs: self.jobs.unwrap_or(0),
            cache_dir: if self.no_cache {
                None
            } else {
                Some(SweepOpts::default_cache_dir())
            },
            progress: true,
        }
    }

    /// The scale to use for a workload.
    #[must_use]
    pub fn scale_for(&self, kind: sbrp_workloads::WorkloadKind) -> u64 {
        self.scale
            .unwrap_or_else(|| sbrp_harness::default_scale(kind))
    }

    /// Prints a finished table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else if self.json {
            print!("{}", table.to_json());
        } else {
            print!("{}", table.to_text());
        }
    }

    /// Writes a timeline as Chrome-trace JSON to `--trace-out`, if set.
    ///
    /// # Panics
    /// Panics if the file cannot be written.
    pub fn write_trace(&self, timeline: &sbrp_gpu_sim::Timeline) {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, timeline.to_chrome_json())
                .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
            eprintln!("wrote Chrome-trace timeline to {path} (open in Perfetto)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_uses_workload_scales() {
        let cli = Cli::default();
        assert_eq!(
            cli.scale_for(sbrp_workloads::WorkloadKind::Gpkvs),
            sbrp_harness::default_scale(sbrp_workloads::WorkloadKind::Gpkvs)
        );
        let cli2 = Cli {
            scale: Some(64),
            ..Cli::default()
        };
        assert_eq!(cli2.scale_for(sbrp_workloads::WorkloadKind::Scan), 64);
    }
}
