//! # sbrp-bench
//!
//! The paper-evaluation harness: one binary per table/figure of §7
//! (`table1`, `table2`, `figure6` … `figure11`), plus Criterion
//! micro-benchmarks (`cargo bench`) over the persist buffer, the PMO
//! checker, the memory system, and small end-to-end kernels.
//!
//! Every figure binary accepts:
//!
//! * `--scale N` — override the per-workload default size;
//! * `--small` — simulate a scaled-down 4-SM GPU instead of the paper's
//!   30-SM Table 1 machine (faster, same qualitative shapes);
//! * `--csv` — emit CSV instead of an aligned text table;
//! * `--json` — emit JSON instead of an aligned text table;
//! * `--trace-out FILE` — also write a Chrome-trace JSON timeline
//!   (load it in Perfetto / `chrome://tracing`) for a representative
//!   cell; binaries that don't trace ignore it;
//! * `--jobs N` — worker threads for the sweep (default: all hardware
//!   threads; `--jobs 1` reproduces the historical serial behaviour,
//!   byte-identically);
//! * `--no-cache` — ignore and don't write the `outputs/.cache` result
//!   cache;
//! * `--cell-timeout SECS` — wall-clock budget per sweep cell; a cell
//!   that overruns it becomes an explicit deadline failure instead of
//!   hanging the sweep;
//! * `--retries N` — re-run a failed cell (panic, deadline, simulation
//!   error) up to N extra times with a deterministic seeded backoff;
//! * `--retry-seed N` — seed of that backoff schedule (default 42);
//! * `--resume` — reload completed cells from the crash-safe resume
//!   journal and execute only the missing ones;
//! * `--journal-dir DIR` — resume-journal root (default
//!   `outputs/.cache/journal`; `--no-cache` also disables journaling
//!   unless this flag names a directory explicitly).
//!
//! Run one with e.g. `cargo run -p sbrp-bench --release --bin figure6`.

use sbrp_harness::report::Table;
use sbrp_harness::sweep::{FaultPolicy, SweepOpts};
use std::time::Duration;

/// Options shared by all figure binaries.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    /// Override the per-workload default scale.
    pub scale: Option<u64>,
    /// Use the scaled-down 4-SM GPU instead of the default Table 1
    /// machine (faster, less faithful).
    pub small: bool,
    /// Emit CSV instead of text.
    pub csv: bool,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Write a Chrome-trace timeline of one representative cell here.
    pub trace_out: Option<String>,
    /// Sweep worker threads; `None` (default) uses all hardware
    /// threads, `Some(1)` is serial.
    pub jobs: Option<usize>,
    /// Bypass the on-disk result cache.
    pub no_cache: bool,
    /// Per-cell wall-clock budget in seconds.
    pub cell_timeout: Option<f64>,
    /// Extra attempts for failed cells.
    pub retries: u32,
    /// Seed of the deterministic retry backoff schedule.
    pub retry_seed: u64,
    /// Reload completed cells from the resume journal.
    pub resume: bool,
    /// Resume-journal root; overrides the default and survives
    /// `--no-cache`.
    pub journal_dir: Option<String>,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    /// Panics (with usage help) on unknown flags or a malformed
    /// `--scale`.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli {
            retry_seed: 42,
            ..Cli::default()
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    cli.scale = Some(v.parse().expect("--scale must be an integer"));
                }
                "--small" => cli.small = true,
                "--csv" => cli.csv = true,
                "--json" => cli.json = true,
                "--trace-out" => {
                    cli.trace_out = Some(args.next().expect("--trace-out needs a file path"));
                }
                "--jobs" => {
                    let v = args.next().expect("--jobs needs a value");
                    let n: usize = v.parse().expect("--jobs must be a positive integer");
                    assert!(n > 0, "--jobs must be at least 1");
                    cli.jobs = Some(n);
                }
                "--no-cache" => cli.no_cache = true,
                "--cell-timeout" => {
                    let v = args.next().expect("--cell-timeout needs a value");
                    let secs: f64 = v.parse().expect("--cell-timeout must be seconds");
                    assert!(
                        secs.is_finite() && secs > 0.0,
                        "--cell-timeout must be positive"
                    );
                    cli.cell_timeout = Some(secs);
                }
                "--retries" => {
                    let v = args.next().expect("--retries needs a value");
                    cli.retries = v.parse().expect("--retries must be an integer");
                }
                "--retry-seed" => {
                    let v = args.next().expect("--retry-seed needs a value");
                    cli.retry_seed = v.parse().expect("--retry-seed must be an integer");
                }
                "--resume" => cli.resume = true,
                "--journal-dir" => {
                    cli.journal_dir = Some(args.next().expect("--journal-dir needs a directory"));
                }
                "--help" | "-h" => {
                    println!(
                        "usage: <figure-bin> [--scale N] [--small] [--csv] [--json] \
                         [--trace-out FILE] [--jobs N] [--no-cache] [--cell-timeout SECS] \
                         [--retries N] [--retry-seed N] [--resume] [--journal-dir DIR]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        cli
    }

    /// The sweep-engine configuration these flags select.
    #[must_use]
    pub fn sweep_opts(&self) -> SweepOpts {
        SweepOpts {
            jobs: self.jobs.unwrap_or(0),
            cache_dir: if self.no_cache {
                None
            } else {
                Some(SweepOpts::default_cache_dir())
            },
            progress: true,
            fault: FaultPolicy {
                cell_timeout: self.cell_timeout.map(Duration::from_secs_f64),
                retries: self.retries,
                retry_seed: self.retry_seed,
            },
            journal_root: match &self.journal_dir {
                Some(dir) => Some(dir.into()),
                None if self.no_cache => None,
                None => Some(SweepOpts::default_journal_root()),
            },
            resume: self.resume,
        }
    }

    /// The scale to use for a workload.
    #[must_use]
    pub fn scale_for(&self, kind: sbrp_workloads::WorkloadKind) -> u64 {
        self.scale
            .unwrap_or_else(|| sbrp_harness::default_scale(kind))
    }

    /// Prints a finished table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else if self.json {
            print!("{}", table.to_json());
        } else {
            print!("{}", table.to_text());
        }
    }

    /// Writes a timeline as Chrome-trace JSON to `--trace-out`, if set.
    ///
    /// # Panics
    /// Panics if the file cannot be written.
    pub fn write_trace(&self, timeline: &sbrp_gpu_sim::Timeline) {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, timeline.to_chrome_json())
                .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
            eprintln!("wrote Chrome-trace timeline to {path} (open in Perfetto)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_uses_workload_scales() {
        let cli = Cli::default();
        assert_eq!(
            cli.scale_for(sbrp_workloads::WorkloadKind::Gpkvs),
            sbrp_harness::default_scale(sbrp_workloads::WorkloadKind::Gpkvs)
        );
        let cli2 = Cli {
            scale: Some(64),
            ..Cli::default()
        };
        assert_eq!(cli2.scale_for(sbrp_workloads::WorkloadKind::Scan), 64);
    }

    #[test]
    fn fault_flags_map_onto_sweep_opts() {
        let cli = Cli {
            cell_timeout: Some(1.5),
            retries: 3,
            retry_seed: 7,
            resume: true,
            journal_dir: Some("/tmp/j".into()),
            no_cache: true,
            ..Cli::default()
        };
        let opts = cli.sweep_opts();
        assert_eq!(opts.fault.cell_timeout, Some(Duration::from_millis(1500)));
        assert_eq!(opts.fault.retries, 3);
        assert_eq!(opts.fault.retry_seed, 7);
        assert!(opts.resume);
        assert_eq!(opts.cache_dir, None, "--no-cache disables the cache");
        assert_eq!(
            opts.journal_root.as_deref(),
            Some(std::path::Path::new("/tmp/j")),
            "an explicit --journal-dir survives --no-cache"
        );
        // Without an explicit dir, --no-cache disables journaling too.
        let opts = Cli {
            no_cache: true,
            ..Cli::default()
        }
        .sweep_opts();
        assert_eq!(opts.journal_root, None);
    }
}
