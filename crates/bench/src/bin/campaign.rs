//! Crash-recovery campaign driver.
//!
//! Sweeps event-triggered crash points across a (workload × model ×
//! system) matrix, recovering and verifying at every point, and fails
//! the process if any point finds a consistency violation.
//!
//! ```text
//! cargo run --release -p sbrp-bench --bin campaign -- --quick
//! ```
//!
//! * `--quick`    — acceptance sweep: gpKVS/HM/MQ × all models × both
//!   systems on the small GPU at scale 256 (minutes);
//! * `--points N` — minimum crash points per cell (default 20);
//! * `--scale N`  — override the workload scale;
//! * `--seed N`   — input seed (default 42);
//! * `--small`    — use the 4-SM GPU without the rest of `--quick`;
//! * `--csv`      — emit CSV instead of an aligned table;
//! * `--jobs N`   — sweep worker threads (default: all hardware
//!   threads; `--jobs 1` is the historical serial order);
//! * `--no-cache` — ignore and don't write `outputs/.cache`;
//! * `--cell-timeout SECS` — wall-clock budget per campaign cell;
//! * `--retries N` / `--retry-seed N` — deterministic retry policy for
//!   failed cells;
//! * `--resume`   — reload completed cells from the resume journal and
//!   run only the missing ones;
//! * `--journal-dir DIR` — resume-journal root (default
//!   `outputs/.cache/journal`).
//!
//! Without `--quick`, the full six-workload matrix runs at the default
//! figure scales on the Table 1 machine — an overnight-class sweep.

use sbrp_harness::campaign::{CampaignSpec, CellReport};
use sbrp_harness::report::Table;
use sbrp_harness::sweep::{FaultPolicy, SweepOpts};
use std::time::Duration;

struct Args {
    quick: bool,
    points: Option<usize>,
    scale: Option<u64>,
    seed: Option<u64>,
    small: bool,
    csv: bool,
    jobs: Option<usize>,
    no_cache: bool,
    cell_timeout: Option<f64>,
    retries: u32,
    retry_seed: u64,
    resume: bool,
    journal_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        quick: false,
        points: None,
        scale: None,
        seed: None,
        small: false,
        csv: false,
        jobs: None,
        no_cache: false,
        cell_timeout: None,
        retries: 0,
        retry_seed: 42,
        resume: false,
        journal_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut arg = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        let mut num = |name: &str| -> u64 {
            arg(name)
                .parse()
                .unwrap_or_else(|_| panic!("{name} must be an integer"))
        };
        match a.as_str() {
            "--quick" => out.quick = true,
            "--points" => out.points = Some(num("--points") as usize),
            "--scale" => out.scale = Some(num("--scale")),
            "--seed" => out.seed = Some(num("--seed")),
            "--small" => out.small = true,
            "--csv" => out.csv = true,
            "--jobs" => {
                let n = num("--jobs") as usize;
                assert!(n > 0, "--jobs must be at least 1");
                out.jobs = Some(n);
            }
            "--no-cache" => out.no_cache = true,
            "--cell-timeout" => {
                let secs: f64 = arg("--cell-timeout")
                    .parse()
                    .expect("--cell-timeout must be seconds");
                assert!(
                    secs.is_finite() && secs > 0.0,
                    "--cell-timeout must be positive"
                );
                out.cell_timeout = Some(secs);
            }
            "--retries" => out.retries = num("--retries") as u32,
            "--retry-seed" => out.retry_seed = num("--retry-seed"),
            "--resume" => out.resume = true,
            "--journal-dir" => out.journal_dir = Some(arg("--journal-dir")),
            "--help" | "-h" => {
                println!(
                    "usage: campaign [--quick] [--points N] [--scale N] [--seed N] [--small] \
                     [--csv] [--jobs N] [--no-cache] [--cell-timeout SECS] [--retries N] \
                     [--retry-seed N] [--resume] [--journal-dir DIR]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let mut spec = if args.quick {
        CampaignSpec::quick()
    } else {
        CampaignSpec::default()
    };
    if let Some(p) = args.points {
        spec.points_per_cell = p;
    }
    if let Some(s) = args.scale {
        spec.scale = Some(s);
    }
    if let Some(s) = args.seed {
        spec.seed = s;
    }
    if args.small {
        spec.small_gpu = true;
    }
    let opts = SweepOpts {
        jobs: args.jobs.unwrap_or(0),
        cache_dir: if args.no_cache {
            None
        } else {
            Some(SweepOpts::default_cache_dir())
        },
        // The per-cell status lines below carry more detail than the
        // engine's generic progress output.
        progress: false,
        fault: FaultPolicy {
            cell_timeout: args.cell_timeout.map(Duration::from_secs_f64),
            retries: args.retries,
            retry_seed: args.retry_seed,
        },
        journal_root: match &args.journal_dir {
            Some(dir) => Some(dir.into()),
            None if args.no_cache => None,
            None => Some(SweepOpts::default_journal_root()),
        },
        resume: args.resume,
    };

    let cells = spec.workloads.len() * spec.models.len() * spec.systems.len();
    eprintln!(
        "campaign: {cells} cells ({} workloads x {} models x {} systems), >= {} points/cell, {} jobs",
        spec.workloads.len(),
        spec.models.len(),
        spec.systems.len(),
        spec.points_per_cell,
        opts.effective_jobs()
    );

    let mut done = 0usize;
    let report = sbrp_harness::campaign::run_with_opts(&spec, &opts, |cell: &CellReport| {
        done += 1;
        let status = if let Some(e) = &cell.baseline_error {
            // Covers both baseline failures and engine-contained ones
            // (panic / deadline), which surface through the same field.
            format!("FAILED: {e}")
        } else if cell.violations() == 0 {
            format!(
                "{} points, all pass (pmo {}/{}, recovered {}/{})",
                cell.points.len(),
                cell.pmo_clean(),
                cell.points.len(),
                cell.recovered(),
                cell.points.len()
            )
        } else {
            format!(
                "{} points, {} VIOLATIONS (pmo {}/{}, recovered {}/{})",
                cell.points.len(),
                cell.violations(),
                cell.pmo_clean(),
                cell.points.len(),
                cell.recovered(),
                cell.points.len()
            )
        };
        eprintln!(
            "[{done}/{cells}] {} {:?} {:?}: {status}",
            cell.workload, cell.model, cell.system
        );
    });

    let table: Table = report.table();
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }

    // Spell out every violation with its shrunk minimal crash point.
    for cell in &report.cells {
        for s in &cell.shrunk {
            eprintln!(
                "violation: {} {:?} {:?} {} minimal failing event k={} -> {:?}",
                cell.workload,
                cell.model,
                cell.system,
                s.family.label(),
                s.min_k,
                s.outcome
            );
        }
    }
    println!(
        "campaign: {} points, {} violations",
        report.total_points(),
        report.total_violations()
    );
    if !report.ok() {
        std::process::exit(1);
    }
}
