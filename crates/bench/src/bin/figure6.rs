//! Figure 6: speedup over epoch-far of GPM, epoch-far, SBRP-far,
//! epoch-near, and SBRP-near, per application plus the geometric mean.

use sbrp_bench::Cli;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, Fig6Bar, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let headers: Vec<&str> = std::iter::once("app")
        .chain(Fig6Bar::ALL.iter().map(|b| b.label()))
        .collect();
    let mut table = Table::new("Figure 6: speedup over epoch-far", &headers);

    let mut per_bar: Vec<Vec<f64>> = vec![Vec::new(); Fig6Bar::ALL.len()];
    for kind in WorkloadKind::ALL {
        let scale = cli.scale_for(kind);
        let cycles: Vec<u64> = Fig6Bar::ALL
            .iter()
            .map(|bar| {
                let (model, system) = bar.model_system();
                let out = run_workload(&RunSpec {
                    workload: kind,
                    model,
                    system,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                })
                .expect("cell runs");
                assert!(out.verified, "{kind}/{} failed verification", bar.label());
                out.cycles
            })
            .collect();
        let baseline = cycles[1] as f64; // epoch-far
        let speedups: Vec<f64> = cycles.iter().map(|&c| baseline / c as f64).collect();
        for (i, s) in speedups.iter().enumerate() {
            per_bar[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_bar.iter().map(|v| geomean(v)).collect();
    table.row_f64("Mean", &means);
    cli.emit(&table);
}
