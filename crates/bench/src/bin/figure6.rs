//! Figure 6: speedup over epoch-far of GPM, epoch-far, SBRP-far,
//! epoch-near, and SBRP-near, per application plus the geometric mean.

use sbrp_bench::Cli;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{geomean, Fig6Bar, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let scale = cli.scale_for(kind);
            Fig6Bar::ALL.into_iter().map(move |bar| {
                let (model, system) = bar.model_system();
                RunSpec {
                    workload: kind,
                    model,
                    system,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                }
            })
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let headers: Vec<&str> = std::iter::once("app")
        .chain(Fig6Bar::ALL.iter().map(|b| b.label()))
        .collect();
    let mut table = Table::new("Figure 6: speedup over epoch-far", &headers);
    let mut per_bar: Vec<Vec<f64>> = vec![Vec::new(); Fig6Bar::ALL.len()];
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let row = &outs[w * Fig6Bar::ALL.len()..(w + 1) * Fig6Bar::ALL.len()];
        for (out, bar) in row.iter().zip(Fig6Bar::ALL) {
            assert!(out.verified, "{kind}/{} failed verification", bar.label());
        }
        let baseline = row[1].cycles as f64; // epoch-far
        let speedups: Vec<f64> = row.iter().map(|o| baseline / o.cycles as f64).collect();
        for (i, s) in speedups.iter().enumerate() {
            per_bar[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_bar.iter().map(|v| geomean(v)).collect();
    table.row_f64("Mean", &means);
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
