//! Table 1: the simulated hardware configuration.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_harness::report::Table;

fn main() {
    let cli = Cli::parse();
    let c = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut t = Table::new(
        "Table 1: simulated hardware configuration",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("# of SMs", c.num_sms.to_string()),
        ("Clock speed", format!("{} MHz", c.clock_mhz)),
        ("L1 cache", format!("{} KB/SM", c.l1_kb)),
        ("L2 cache", format!("{} MB", c.l2_kb / 1024)),
        ("Window size", format!("{:?}", c.pb.policy)),
        ("Threads/block", "1024 (max)".into()),
        ("GDDR BW", format!("{} GBPS", c.gddr_bw_gbps)),
        ("GDDR latency", format!("{} ns", c.gddr_latency_ns)),
        (
            "NVM BW",
            format!(
                "{} GBPS read, {} GBPS write",
                c.nvm_read_bw_gbps, c.nvm_write_bw_gbps
            ),
        ),
        ("NVM latency", format!("{} ns", c.nvm_latency_ns)),
        ("PCIe BW", format!("{} GBPS", c.pcie_bw_gbps)),
        ("PCIe latency", format!("{} ns", c.pcie_latency_ns)),
        ("PB entries", format!("{} (50% of L1 lines)", c.pb.capacity)),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    cli.emit(&t);
}
