//! Simulator-throughput benchmark: times representative sweeps with
//! the result cache disabled and writes `BENCH_perf.json` (cycles/sec,
//! wall-clock, peak RSS) so every PR has a perf trajectory.
//!
//! Usage: `perf [--smoke] [--jobs N] [--out FILE]`
//!
//! * `--smoke` — small GPU and reduced scales; the CI configuration.
//!   Minutes become seconds, at the cost of absolute numbers that are
//!   only comparable to other smoke runs.
//! * `--jobs N` — sweep worker threads (default 1: serial, so
//!   cycles/sec measures single-thread simulator speed).
//! * `--out FILE` — where to write the JSON (default
//!   `BENCH_perf.json` in the current directory).

use sbrp_harness::json::write_atomic;
use sbrp_harness::perf::{measure, report_json, PerfCase};
use sbrp_harness::{default_scale, Fig6Bar, RunSpec};
use sbrp_workloads::WorkloadKind;

struct Args {
    smoke: bool,
    jobs: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        jobs: 1,
        out: "BENCH_perf.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                parsed.jobs = v.parse().expect("--jobs must be a positive integer");
                assert!(parsed.jobs > 0, "--jobs must be at least 1");
            }
            "--out" => parsed.out = args.next().expect("--out needs a file path"),
            "--help" | "-h" => {
                println!("usage: perf [--smoke] [--jobs N] [--out FILE]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    parsed
}

/// The full Figure 6 matrix: every workload under all five
/// model/system bars — the sweep the ≥1.3× acceptance criterion is
/// measured on.
fn figure6_case(smoke: bool) -> PerfCase {
    let specs = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let scale = if smoke { 512 } else { default_scale(kind) };
            Fig6Bar::ALL.into_iter().map(move |bar| {
                let (model, system) = bar.model_system();
                RunSpec {
                    workload: kind,
                    model,
                    system,
                    scale,
                    small_gpu: smoke,
                    ..RunSpec::default()
                }
            })
        })
        .collect();
    PerfCase {
        name: "figure6".into(),
        specs,
    }
}

/// gpKVS alone: the most persist-heavy application, dominated by the
/// drain path the fast-forward optimization targets.
fn gpkvs_case(smoke: bool) -> PerfCase {
    let scale = if smoke {
        512
    } else {
        default_scale(WorkloadKind::Gpkvs)
    };
    PerfCase {
        name: "gpkvs".into(),
        specs: vec![RunSpec {
            workload: WorkloadKind::Gpkvs,
            scale,
            small_gpu: smoke,
            ..RunSpec::default()
        }],
    }
}

/// A small-kernel matrix (Reduction × all bars at low scale): many
/// short launches, so dispatch and warm-up overheads dominate instead
/// of steady-state simulation.
fn microbench_case(smoke: bool) -> PerfCase {
    let specs = Fig6Bar::ALL
        .into_iter()
        .map(|bar| {
            let (model, system) = bar.model_system();
            RunSpec {
                workload: WorkloadKind::Reduction,
                model,
                system,
                scale: 256,
                small_gpu: smoke,
                ..RunSpec::default()
            }
        })
        .collect();
    PerfCase {
        name: "microbench".into(),
        specs,
    }
}

fn main() {
    let args = parse_args();
    let cases = [
        figure6_case(args.smoke),
        gpkvs_case(args.smoke),
        microbench_case(args.smoke),
    ];
    let mut results = Vec::new();
    for case in &cases {
        let r = measure(case, args.jobs);
        eprintln!(
            "perf: {} — {} cells, {} sim-cycles in {} ms = {} cycles/sec",
            r.name, r.cells, r.sim_cycles, r.wall_millis, r.cycles_per_sec
        );
        results.push(r);
    }
    let doc = report_json(&results, args.jobs as u64, args.smoke);
    let rendered = doc.render();
    write_atomic(std::path::Path::new(&args.out), &rendered)
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("{rendered}");
    eprintln!("perf: wrote {}", args.out);
}
