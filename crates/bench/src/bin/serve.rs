//! `serve` — open-loop request serving against the sharded persistent
//! gpKVS: sweep offered rate × persistency model, report the
//! throughput–latency table (p50/p95/p99/p999 in simulated cycles), and
//! write `outputs/serve.txt` plus the latency-histogram JSON artifact
//! `outputs/serve_hist.json`.
//!
//! Usage: `serve [--smoke] [--arrival poisson|bursty] [--rate LIST]
//! [--zipf THETA] [--batch N] [--linger CYCLES] [--queue-bound N]
//! [--model LIST] [--requests N] [--crash-at CYCLE] [--seed N]
//! [--out-dir DIR]` plus the standard sweep flags (`--scale`, `--small`,
//! `--csv`, `--json`, `--jobs`, `--no-cache`, `--cell-timeout`,
//! `--retries`, `--retry-seed`, `--resume`, `--journal-dir`).
//!
//! * `--rate` — comma list of offered rates in requests per kilocycle
//!   (decimals allowed: `--rate 0.5,2,8`).
//! * `--model` — comma list from `sbrp,epoch,gpm,eadr`.
//! * `--smoke` — the CI configuration: small GPU, reduced trace, rates
//!   bracketing the saturation knee; seconds instead of minutes.

use sbrp_bench::Cli;
use sbrp_harness::json::write_atomic;
use sbrp_harness::serve::{
    hist_json, run_serve_cells_expect, serve_table, ServeCell, ServeModel, ServeSpec,
};
use sbrp_workloads::service::ArrivalKind;
use std::path::Path;

struct Args {
    cli: Cli,
    smoke: bool,
    arrival: ArrivalKind,
    rates_milli: Option<Vec<u64>>,
    models: Option<Vec<ServeModel>>,
    zipf_milli: Option<u64>,
    batch: Option<u32>,
    linger: Option<u64>,
    queue_bound: Option<u64>,
    requests: Option<u64>,
    crash_at: Option<u64>,
    seed: u64,
    out_dir: String,
}

fn parse_milli(v: &str, flag: &str) -> u64 {
    let f: f64 = v
        .parse()
        .unwrap_or_else(|_| panic!("{flag} must be a number, got {v:?}"));
    assert!(f.is_finite() && f >= 0.0, "{flag} must be non-negative");
    (f * 1000.0).round() as u64
}

#[allow(clippy::too_many_lines)]
fn parse_args() -> Args {
    let mut parsed = Args {
        cli: Cli {
            retry_seed: 42,
            ..Cli::default()
        },
        smoke: false,
        arrival: ArrivalKind::Poisson,
        rates_milli: None,
        models: None,
        zipf_milli: None,
        batch: None,
        linger: None,
        queue_bound: None,
        requests: None,
        crash_at: None,
        seed: 42,
        out_dir: "outputs".into(),
    };
    let mut args = std::env::args().skip(1);
    let need = |flag: &str, v: Option<String>| v.unwrap_or_else(|| panic!("{flag} needs a value"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--arrival" => {
                parsed.arrival = match need("--arrival", args.next()).as_str() {
                    "poisson" => ArrivalKind::Poisson,
                    "bursty" => ArrivalKind::Bursty,
                    other => panic!("--arrival must be poisson or bursty, got {other:?}"),
                };
            }
            "--rate" => {
                let list = need("--rate", args.next());
                let rates: Vec<u64> = list
                    .split(',')
                    .map(|v| {
                        let r = parse_milli(v, "--rate");
                        assert!(r > 0, "--rate entries must be positive");
                        r
                    })
                    .collect();
                assert!(!rates.is_empty(), "--rate needs at least one rate");
                parsed.rates_milli = Some(rates);
            }
            "--model" => {
                let list = need("--model", args.next());
                let models: Vec<ServeModel> = list
                    .split(',')
                    .map(|v| {
                        ServeModel::parse(v)
                            .unwrap_or_else(|| panic!("unknown model {v:?} (sbrp,epoch,gpm,eadr)"))
                    })
                    .collect();
                assert!(!models.is_empty(), "--model needs at least one model");
                parsed.models = Some(models);
            }
            "--zipf" => {
                parsed.zipf_milli = Some(parse_milli(&need("--zipf", args.next()), "--zipf"))
            }
            "--batch" => {
                let n: u32 = need("--batch", args.next())
                    .parse()
                    .expect("--batch must be an integer");
                assert!(n > 0, "--batch must be at least 1");
                parsed.batch = Some(n);
            }
            "--linger" => {
                parsed.linger = Some(
                    need("--linger", args.next())
                        .parse()
                        .expect("--linger must be an integer cycle count"),
                );
            }
            "--queue-bound" => {
                let n: u64 = need("--queue-bound", args.next())
                    .parse()
                    .expect("--queue-bound must be an integer");
                assert!(n > 0, "--queue-bound must be at least 1");
                parsed.queue_bound = Some(n);
            }
            "--requests" => {
                let n: u64 = need("--requests", args.next())
                    .parse()
                    .expect("--requests must be an integer");
                assert!(n > 0, "--requests must be at least 1");
                parsed.requests = Some(n);
            }
            "--crash-at" => {
                parsed.crash_at = Some(
                    need("--crash-at", args.next())
                        .parse()
                        .expect("--crash-at must be a cycle number"),
                );
            }
            "--seed" => {
                parsed.seed = need("--seed", args.next())
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--out-dir" => parsed.out_dir = need("--out-dir", args.next()),
            // Standard sweep flags, mirrored from `Cli::parse`.
            "--scale" => {
                parsed.cli.scale = Some(
                    need("--scale", args.next())
                        .parse()
                        .expect("--scale must be an integer"),
                );
            }
            "--small" => parsed.cli.small = true,
            "--csv" => parsed.cli.csv = true,
            "--json" => parsed.cli.json = true,
            "--jobs" => {
                let n: usize = need("--jobs", args.next())
                    .parse()
                    .expect("--jobs must be a positive integer");
                assert!(n > 0, "--jobs must be at least 1");
                parsed.cli.jobs = Some(n);
            }
            "--no-cache" => parsed.cli.no_cache = true,
            "--cell-timeout" => {
                let secs: f64 = need("--cell-timeout", args.next())
                    .parse()
                    .expect("--cell-timeout must be seconds");
                assert!(
                    secs.is_finite() && secs > 0.0,
                    "--cell-timeout must be positive"
                );
                parsed.cli.cell_timeout = Some(secs);
            }
            "--retries" => {
                parsed.cli.retries = need("--retries", args.next())
                    .parse()
                    .expect("--retries must be an integer");
            }
            "--retry-seed" => {
                parsed.cli.retry_seed = need("--retry-seed", args.next())
                    .parse()
                    .expect("--retry-seed must be an integer");
            }
            "--resume" => parsed.cli.resume = true,
            "--journal-dir" => parsed.cli.journal_dir = Some(need("--journal-dir", args.next())),
            "--help" | "-h" => {
                println!(
                    "usage: serve [--smoke] [--arrival poisson|bursty] [--rate LIST] \
                     [--zipf THETA] [--batch N] [--linger CYCLES] [--queue-bound N] \
                     [--model sbrp,epoch,gpm,eadr] [--requests N] [--crash-at CYCLE] \
                     [--seed N] [--out-dir DIR] [--scale N] [--small] [--csv] [--json] \
                     [--jobs N] [--no-cache] [--cell-timeout SECS] [--retries N] \
                     [--retry-seed N] [--resume] [--journal-dir DIR]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    // The smoke preset is the CI configuration: small GPU, short trace,
    // offered rates bracketing the measured saturation knee so the
    // table shows both the latency floor and the overload regime.
    let small = args.cli.small || args.smoke;
    let scale = args
        .cli
        .scale
        .unwrap_or(if args.smoke { 512 } else { 2048 });
    let requests = args.requests.unwrap_or(if args.smoke { 384 } else { 2048 });
    let batch = args.batch.unwrap_or(if args.smoke { 32 } else { 64 });
    let models = args.models.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![ServeModel::Sbrp, ServeModel::Gpm, ServeModel::Epoch]
        } else {
            ServeModel::ALL.to_vec()
        }
    });
    let rates = args.rates_milli.clone().unwrap_or_else(|| {
        if args.smoke {
            vec![2_000, 8_000, 32_000, 128_000]
        } else {
            vec![2_000, 8_000, 16_000, 32_000, 64_000, 128_000]
        }
    });

    let cells: Vec<ServeCell> = models
        .iter()
        .flat_map(|&model| {
            rates.iter().map(move |&rate_milli| ServeCell {
                spec: ServeSpec {
                    model,
                    arrival: args.arrival,
                    rate_milli,
                    zipf_milli: args.zipf_milli.unwrap_or(990),
                    requests,
                    scale,
                    batch,
                    linger: args.linger.unwrap_or(if args.smoke { 1000 } else { 2000 }),
                    queue_bound: args
                        .queue_bound
                        .unwrap_or(if args.smoke { 256 } else { 512 }),
                    seed: args.seed,
                    small_gpu: small,
                    crash_at: args.crash_at,
                    ..ServeSpec::default()
                },
            })
        })
        .collect();

    let (outs, summary) = run_serve_cells_expect(&args.cli.sweep_opts(), &cells);
    let table = serve_table(&cells, &outs);
    args.cli.emit(&table);

    std::fs::create_dir_all(&args.out_dir)
        .unwrap_or_else(|e| panic!("creating {}: {e}", args.out_dir));
    let txt_path = Path::new(&args.out_dir).join("serve.txt");
    write_atomic(&txt_path, &table.to_text())
        .unwrap_or_else(|e| panic!("writing {}: {e}", txt_path.display()));
    let hist_path = Path::new(&args.out_dir).join("serve_hist.json");
    write_atomic(&hist_path, &hist_json(&cells, &outs))
        .unwrap_or_else(|e| panic!("writing {}: {e}", hist_path.display()));
    eprintln!(
        "serve: wrote {} and {}",
        txt_path.display(),
        hist_path.display()
    );
    eprintln!("{}", summary.summary_line());
}
