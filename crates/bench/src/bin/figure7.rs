//! Figure 7: relative contribution of buffers vs. scopes to SBRP's
//! speedup, for the inter-thread-PMO applications (Red, MQ, Scan) on
//! both system designs. Scope contribution is measured by demoting all
//! block-scoped operations to device scope (§7.2, "Importance of
//! scopes"); what remains of the speedup is the buffers' share.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::RunSpec;
use sbrp_workloads::WorkloadKind;

const APPS: [WorkloadKind; 3] = [
    WorkloadKind::Reduction,
    WorkloadKind::Multiqueue,
    WorkloadKind::Scan,
];
const SYSTEMS: [SystemDesign; 2] = [SystemDesign::PmFar, SystemDesign::PmNear];

fn main() {
    let cli = Cli::parse();
    // Three runs per (app, system): epoch, full SBRP, scope-demoted SBRP.
    let specs: Vec<RunSpec> = APPS
        .into_iter()
        .flat_map(|kind| {
            let scale = cli.scale_for(kind);
            SYSTEMS.into_iter().flat_map(move |system| {
                let base = RunSpec {
                    workload: kind,
                    system,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                };
                [
                    RunSpec {
                        model: ModelKind::Epoch,
                        ..base.clone()
                    },
                    RunSpec {
                        model: ModelKind::Sbrp,
                        ..base.clone()
                    },
                    RunSpec {
                        model: ModelKind::Sbrp,
                        demote_scopes: true,
                        ..base
                    },
                ]
            })
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let mut table = Table::new(
        "Figure 7: SBRP speedup breakdown (% buffers vs % scopes)",
        &["app", "system", "buffers%", "scopes%"],
    );
    for (i, (kind, system)) in APPS
        .into_iter()
        .flat_map(|k| SYSTEMS.into_iter().map(move |s| (k, s)))
        .enumerate()
    {
        let [epoch, sbrp, demoted] = [0, 1, 2].map(|j| outs[i * 3 + j].cycles as f64);
        // Speedups over epoch: full SBRP vs buffers-only (demoted).
        let full = epoch / sbrp;
        let buffers_only = epoch / demoted;
        let gain = (full - 1.0).max(1e-9);
        let buf_share = ((buffers_only - 1.0) / gain).clamp(0.0, 1.0) * 100.0;
        let scope_share = 100.0 - buf_share;
        table.row(vec![
            kind.label().into(),
            format!("SBRP-{system}"),
            format!("{buf_share:.1}"),
            format!("{scope_share:.1}"),
        ]);
    }
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
