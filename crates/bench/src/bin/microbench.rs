//! Microbenchmarks: per-mechanism model comparison (cycles; lower is
//! better) — isolates the persist-path behaviours the applications mix.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::Gpu;
use sbrp_harness::report::Table;
use sbrp_workloads::{BuildOpts, Micro};

fn main() {
    let cli = Cli::parse();
    let iters = cli.scale.unwrap_or(16);
    let mut traced = false;
    for system in [SystemDesign::PmNear, SystemDesign::PmFar] {
        let mut table = Table::new(
            format!("Microbenchmarks on PM-{system} (cycles; epoch=1.0)"),
            &["kernel", "Epoch", "SBRP", "speedup"],
        );
        for micro in Micro::ALL {
            let mut cycles = Vec::new();
            for model in [ModelKind::Epoch, ModelKind::Sbrp] {
                let mut cfg = if cli.small {
                    GpuConfig::small(model, system)
                } else {
                    GpuConfig::table1(model, system)
                };
                // Trace the first SBRP cell if --trace-out was given.
                let trace_this = !traced && cli.trace_out.is_some() && model == ModelKind::Sbrp;
                cfg.timeline = trace_this;
                let l = micro.kernel(BuildOpts::for_model(model), iters);
                let mut gpu = Gpu::new(&cfg);
                gpu.launch(&l.kernel, l.launch);
                gpu.run(10_000_000_000).expect("completes");
                cycles.push(gpu.cycle());
                if trace_this {
                    traced = true;
                    cli.write_trace(&gpu.take_timeline().expect("tracing was enabled"));
                }
            }
            table.row(vec![
                micro.label().into(),
                cycles[0].to_string(),
                cycles[1].to_string(),
                format!("{:.2}x", cycles[0] as f64 / cycles[1] as f64),
            ]);
        }
        cli.emit(&table);
        println!();
    }
}
