//! Microbenchmarks: per-mechanism model comparison (cycles; lower is
//! better) — isolates the persist-path behaviours the applications mix.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::Gpu;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::{sweep, unwrap_outcomes, SweepCell};
use sbrp_workloads::{BuildOpts, Micro};

const SYSTEMS: [SystemDesign; 2] = [SystemDesign::PmNear, SystemDesign::PmFar];
const MODELS: [ModelKind; 2] = [ModelKind::Epoch, ModelKind::Sbrp];

/// One microbenchmark kernel on one machine. Uncached: these cells run
/// in milliseconds, cheaper than their cache round-trip would be.
#[derive(Clone)]
struct MicroCell {
    micro: Micro,
    model: ModelKind,
    system: SystemDesign,
    small: bool,
    iters: u64,
    timeline: bool,
}

impl MicroCell {
    fn config(&self) -> GpuConfig {
        let mut cfg = if self.small {
            GpuConfig::small(self.model, self.system)
        } else {
            GpuConfig::table1(self.model, self.system)
        };
        cfg.timeline = self.timeline;
        cfg
    }

    fn gpu(&self) -> Gpu {
        let l = self
            .micro
            .kernel(BuildOpts::for_model(self.model), self.iters);
        let mut gpu = Gpu::new(&self.config());
        gpu.launch(&l.kernel, l.launch);
        gpu.run(10_000_000_000).expect("completes");
        gpu
    }
}

impl SweepCell for MicroCell {
    type Out = u64;

    fn name(&self) -> String {
        format!(
            "micro {} {:?}/{}",
            self.micro.label(),
            self.model,
            self.system
        )
    }

    fn fingerprint(&self) -> u64 {
        0 // unused: micro cells are never cached
    }

    fn run(&self) -> u64 {
        self.gpu().cycle()
    }
}

fn main() {
    let cli = Cli::parse();
    let iters = cli.scale.unwrap_or(16);
    let cells: Vec<MicroCell> = SYSTEMS
        .into_iter()
        .flat_map(|system| {
            Micro::ALL.into_iter().flat_map(move |micro| {
                MODELS.into_iter().map(move |model| MicroCell {
                    micro,
                    model,
                    system,
                    small: cli.small,
                    iters,
                    timeline: false,
                })
            })
        })
        .collect();
    let mut opts = cli.sweep_opts();
    opts.cache_dir = None;
    opts.journal_root = None;
    let (outcomes, summary) = sweep(&opts, &cells);
    // A panicking or hung kernel (the `expect` in gpu()) surfaces here
    // as an aggregated failure table and a nonzero exit.
    let cycles = unwrap_outcomes(&cells, outcomes).unwrap_or_else(|f| f.exit_with_report());

    let stride = Micro::ALL.len() * MODELS.len();
    for (si, system) in SYSTEMS.into_iter().enumerate() {
        let mut table = Table::new(
            format!("Microbenchmarks on PM-{system} (cycles; epoch=1.0)"),
            &["kernel", "Epoch", "SBRP", "speedup"],
        );
        for (mi, micro) in Micro::ALL.into_iter().enumerate() {
            let at = si * stride + mi * MODELS.len();
            let (epoch, sbrp) = (cycles[at], cycles[at + 1]);
            table.row(vec![
                micro.label().into(),
                epoch.to_string(),
                sbrp.to_string(),
                format!("{:.2}x", epoch as f64 / sbrp as f64),
            ]);
        }
        cli.emit(&table);
        println!();
    }
    eprintln!("{}", summary.summary_line());

    // Trace the first SBRP cell if --trace-out was given.
    if cli.trace_out.is_some() {
        let cell = cells
            .into_iter()
            .find(|c| c.model == ModelKind::Sbrp)
            .expect("an SBRP cell exists");
        let mut gpu = MicroCell {
            timeline: true,
            ..cell
        }
        .gpu();
        cli.write_trace(&gpu.take_timeline().expect("tracing was enabled"));
    }
}
