//! Stateless model-checker driver.
//!
//! Exhaustively verifies every litmus shape of `sbrp-mc::litmus` and
//! prints the exploration statistics — states, transitions, and the
//! work the canonical-state deduper saved — or, with `--mutants`,
//! cross-validates the static linter by model-checking every seeded
//! mutant and reporting the dynamic evidence backing each verdict.
//!
//! ```text
//! cargo run --release -p sbrp-bench --bin mc [-- FLAGS]
//! ```
//!
//! * `--mutants`  — check the lint mutant suite instead of the litmuses;
//! * `--smoke`    — fast subset of both (CI gate): a handful of shapes
//!   plus one broken/correct mutant pair;
//! * `--raw`      — tab-separated output (no table chrome);
//! * `--jobs N`   — worker threads for the parallel frontier
//!   (default: all hardware threads; the report is identical at any
//!   value).
//!
//! Exits non-zero if any litmus fails to verify or any mutant's dynamic
//! evidence disagrees with the lint verdict.

use sbrp_harness::report::Table;
use sbrp_mc::evidence::cross_validate;
use sbrp_mc::{explore, litmus, McOpts};

struct Args {
    mutants: bool,
    smoke: bool,
    raw: bool,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        mutants: false,
        smoke: false,
        raw: false,
        jobs: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mutants" => out.mutants = true,
            "--smoke" => out.smoke = true,
            "--raw" => out.raw = true,
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                out.jobs = v.parse().expect("--jobs must be a positive integer");
                assert!(out.jobs > 0, "--jobs must be at least 1");
            }
            "--help" | "-h" => {
                println!("usage: mc [--mutants] [--smoke] [--raw] [--jobs N]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn run_litmus(args: &Args, opts: &McOpts) -> i32 {
    let mut shapes = litmus::all();
    if args.smoke {
        shapes.truncate(5);
    }
    let headers = [
        "shape",
        "model",
        "states",
        "transitions",
        "dedup hits",
        "complete",
        "sigs",
        "verdict",
    ];
    let mut table = Table::new("Model-checked litmus shapes (exhaustive)", &headers);
    let mut failures = 0;
    for shape in &shapes {
        let report = explore(&shape.program, &shape.spec, opts);
        let verdict = if report.verified() {
            "verified".to_string()
        } else {
            failures += 1;
            format!("{} violations", report.violations.len())
        };
        let cells = vec![
            shape.name.to_string(),
            format!("{:?}/{}", shape.program.model, shape.program.domain),
            report.states.to_string(),
            report.transitions.to_string(),
            report.dedup_hits.to_string(),
            report.complete_executions.to_string(),
            report.signatures.len().to_string(),
            verdict,
        ];
        if args.raw {
            println!("{}", cells.join("\t"));
        } else {
            table.row(cells);
        }
    }
    if !args.raw {
        print!("{}", table.to_text());
    }
    eprintln!(
        "mc: {} shapes, {} failed verification",
        shapes.len(),
        failures
    );
    i32::from(failures > 0)
}

fn run_mutants(args: &Args, opts: &McOpts) -> i32 {
    let mut evidence = cross_validate(opts);
    if args.smoke {
        evidence.retain(|e| e.name.starts_with("wal"));
    }
    let headers = ["mutant", "lint", "states", "witness", "agrees", "finding"];
    let mut table = Table::new("Lint verdicts cross-validated by model checking", &headers);
    let mut disagreements = 0;
    for ev in &evidence {
        if !ev.agrees {
            disagreements += 1;
        }
        let cells = vec![
            ev.name.to_string(),
            if ev.lint_broken { "broken" } else { "clean" }.to_string(),
            ev.report.states.to_string(),
            ev.witness
                .as_ref()
                .map_or_else(|| "-".to_string(), |w| format!("{} steps", w.len())),
            if ev.agrees { "yes" } else { "NO" }.to_string(),
            ev.finding.clone(),
        ];
        if args.raw {
            println!("{}", cells.join("\t"));
        } else {
            table.row(cells);
        }
    }
    if !args.raw {
        print!("{}", table.to_text());
    }
    eprintln!(
        "mc: {} mutants, {} disagreements",
        evidence.len(),
        disagreements
    );
    i32::from(disagreements > 0)
}

fn main() {
    let args = parse_args();
    let opts = McOpts {
        jobs: args.jobs,
        ..McOpts::default()
    };
    let code = if args.smoke && !args.mutants {
        // The CI gate covers both halves.
        run_litmus(&args, &opts) | run_mutants(&args, &opts)
    } else if args.mutants {
        run_mutants(&args, &opts)
    } else {
        run_litmus(&args, &opts)
    };
    std::process::exit(code);
}
