//! Figure 8: L1 read misses for NVM data, normalized to epoch-far
//! (lower is better). SBRP keeps PM data cached across intra-thread and
//! intra-threadblock ordering points; the epoch barrier invalidates it.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::RunSpec;
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let bars = [
        ("Epoch-far", ModelKind::Epoch, SystemDesign::PmFar),
        ("SBRP-far", ModelKind::Sbrp, SystemDesign::PmFar),
        ("Epoch-near", ModelKind::Epoch, SystemDesign::PmNear),
        ("SBRP-near", ModelKind::Sbrp, SystemDesign::PmNear),
    ];
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let scale = cli.scale_for(kind);
            bars.into_iter().map(move |(_, model, system)| RunSpec {
                workload: kind,
                model,
                system,
                scale,
                small_gpu: cli.small,
                ..RunSpec::default()
            })
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let headers: Vec<&str> = std::iter::once("app")
        .chain(bars.iter().map(|b| b.0))
        .collect();
    let mut table = Table::new(
        "Figure 8: L1 read misses for NVM data (normalized to epoch-far)",
        &headers,
    );
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let misses: Vec<u64> = outs[w * bars.len()..(w + 1) * bars.len()]
            .iter()
            .map(|o| o.stats.l1_pm_read_misses)
            .collect();
        let baseline = (misses[0].max(1)) as f64;
        let normalized: Vec<f64> = misses.iter().map(|&m| m as f64 / baseline).collect();
        table.row_f64(kind.label(), &normalized);
    }
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
