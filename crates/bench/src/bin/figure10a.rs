//! Figure 10(a): SBRP-near speedup over epoch-near while varying the
//! persist buffer's coverage of the L1 (12.5 % / 25 % / 50 % / 100 %).

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{geomean, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let coverages = [0.125, 0.25, 0.5, 1.0];
    // Per workload: one epoch baseline, then SBRP at each coverage.
    let stride = 1 + coverages.len();
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let base = RunSpec {
                workload: kind,
                system: SystemDesign::PmNear,
                scale: cli.scale_for(kind),
                small_gpu: cli.small,
                ..RunSpec::default()
            };
            std::iter::once(RunSpec {
                model: ModelKind::Epoch,
                ..base.clone()
            })
            .chain(coverages.into_iter().map(move |f| RunSpec {
                model: ModelKind::Sbrp,
                pb_coverage: Some(f),
                ..base.clone()
            }))
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let mut table = Table::new(
        "Figure 10(a): SBRP-near speedup over epoch-near, varying PB coverage of L1",
        &["app", "12.50%", "25%", "50%", "100%"],
    );
    let mut per_cov: Vec<Vec<f64>> = vec![Vec::new(); coverages.len()];
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let row = &outs[w * stride..(w + 1) * stride];
        let epoch = row[0].cycles as f64;
        let speedups: Vec<f64> = row[1..].iter().map(|o| epoch / o.cycles as f64).collect();
        for (i, s) in speedups.iter().enumerate() {
            per_cov[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_cov.iter().map(|v| geomean(v)).collect();
    table.row_f64("GMean", &means);
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
