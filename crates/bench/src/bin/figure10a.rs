//! Figure 10(a): SBRP-near speedup over epoch-near while varying the
//! persist buffer's coverage of the L1 (12.5 % / 25 % / 50 % / 100 %).

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let coverages = [0.125, 0.25, 0.5, 1.0];
    let mut table = Table::new(
        "Figure 10(a): SBRP-near speedup over epoch-near, varying PB coverage of L1",
        &["app", "12.50%", "25%", "50%", "100%"],
    );
    let mut per_cov: Vec<Vec<f64>> = vec![Vec::new(); coverages.len()];
    for kind in WorkloadKind::ALL {
        let scale = cli.scale_for(kind);
        let base = RunSpec {
            workload: kind,
            system: SystemDesign::PmNear,
            scale,
            small_gpu: cli.small,
            ..RunSpec::default()
        };
        let epoch = run_workload(&RunSpec {
            model: ModelKind::Epoch,
            ..base.clone()
        })
        .expect("cell runs")
        .cycles as f64;
        let speedups: Vec<f64> = coverages
            .iter()
            .map(|&f| {
                let sbrp = run_workload(&RunSpec {
                    model: ModelKind::Sbrp,
                    pb_coverage: Some(f),
                    ..base.clone()
                })
                .expect("cell runs")
                .cycles as f64;
                epoch / sbrp
            })
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            per_cov[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_cov.iter().map(|v| geomean(v)).collect();
    table.row_f64("GMean", &means);
    cli.emit(&table);
}
