//! Figure 10(c): SBRP-near speedup over epoch-near while varying the
//! drain-window size (outstanding persists per SM): 2 / 4 / 6 / 8 / 10.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let windows = [2u32, 4, 6, 8, 10];
    let mut table = Table::new(
        "Figure 10(c): SBRP-near speedup over epoch-near, varying window size",
        &["app", "2", "4", "6", "8", "10"],
    );
    let mut per_w: Vec<Vec<f64>> = vec![Vec::new(); windows.len()];
    for kind in WorkloadKind::ALL {
        let scale = cli.scale_for(kind);
        let base = RunSpec {
            workload: kind,
            system: SystemDesign::PmNear,
            scale,
            small_gpu: cli.small,
            ..RunSpec::default()
        };
        let epoch = run_workload(&RunSpec {
            model: ModelKind::Epoch,
            ..base.clone()
        })
        .expect("cell runs")
        .cycles as f64;
        let speedups: Vec<f64> = windows
            .iter()
            .map(|&w| {
                let sbrp = run_workload(&RunSpec {
                    model: ModelKind::Sbrp,
                    window: Some(w),
                    ..base.clone()
                })
                .expect("cell runs")
                .cycles as f64;
                epoch / sbrp
            })
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            per_w[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_w.iter().map(|v| geomean(v)).collect();
    table.row_f64("GMean", &means);
    cli.emit(&table);
}
