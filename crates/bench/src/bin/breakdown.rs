//! Stall-cycle breakdown: where do warps spend their stalled cycles,
//! per workload × persistency model × system design? This is the
//! Fig. 6-style stacked-bar companion data — each row is one bar, each
//! stall column one segment of the stack.
//!
//! With `--trace-out FILE`, additionally re-runs the first cell with the
//! timeline tracer enabled and writes a Chrome-trace JSON you can load
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::{stall_cells, stall_headers, Table};
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{run_workload_traced, RunSpec};
use sbrp_workloads::WorkloadKind;

/// The workload subset: the three applications with the most distinct
/// persist behaviour (log-append, tree-reduce, chained scan).
const WORKLOADS: [WorkloadKind; 3] = [
    WorkloadKind::Gpkvs,
    WorkloadKind::Reduction,
    WorkloadKind::Scan,
];
const MODELS: [ModelKind; 2] = [ModelKind::Epoch, ModelKind::Sbrp];
const SYSTEMS: [SystemDesign; 2] = [SystemDesign::PmFar, SystemDesign::PmNear];

fn main() {
    let cli = Cli::parse();
    let specs: Vec<RunSpec> = WORKLOADS
        .into_iter()
        .flat_map(|kind| {
            let scale = cli.scale_for(kind);
            MODELS.into_iter().flat_map(move |model| {
                SYSTEMS.into_iter().map(move |system| RunSpec {
                    workload: kind,
                    model,
                    system,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                })
            })
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let mut headers: Vec<&str> = vec!["app", "model", "system", "cycles"];
    headers.extend(stall_headers());
    let mut table = Table::new("Stall-cycle breakdown by cause", &headers);
    for (spec, out) in specs.iter().zip(&outs) {
        let (kind, model, system) = (spec.workload, spec.model, spec.system);
        assert!(out.verified, "{kind}/{model}/{system} failed verification");
        assert_eq!(
            out.stats.stall.bucket_sum(),
            out.stats.stall.total,
            "{kind}/{model}/{system}: stall buckets must sum to total"
        );
        let mut cells = vec![
            kind.label().to_string(),
            model.to_string(),
            system.to_string(),
            out.cycles.to_string(),
        ];
        cells.extend(stall_cells(&out.stats));
        table.row(cells);
    }
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());

    // The timeline changes the simulated machine's observability, not
    // its timing, but the trace is not cached — re-run the first cell
    // with the tracer armed.
    if cli.trace_out.is_some() {
        let (_, timeline) = run_workload_traced(&specs[0], true).expect("traced cell runs");
        cli.write_trace(&timeline.expect("tracing was enabled"));
    }
}
