//! Stall-cycle breakdown: where do warps spend their stalled cycles,
//! per workload × persistency model × system design? This is the
//! Fig. 6-style stacked-bar companion data — each row is one bar, each
//! stall column one segment of the stack.
//!
//! With `--trace-out FILE`, additionally re-runs the first cell with the
//! timeline tracer enabled and writes a Chrome-trace JSON you can load
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::{stall_cells, stall_headers, Table};
use sbrp_harness::{run_workload, run_workload_traced, RunSpec};
use sbrp_workloads::WorkloadKind;

/// The workload subset: the three applications with the most distinct
/// persist behaviour (log-append, tree-reduce, chained scan).
const WORKLOADS: [WorkloadKind; 3] = [
    WorkloadKind::Gpkvs,
    WorkloadKind::Reduction,
    WorkloadKind::Scan,
];
const MODELS: [ModelKind; 2] = [ModelKind::Epoch, ModelKind::Sbrp];
const SYSTEMS: [SystemDesign; 2] = [SystemDesign::PmFar, SystemDesign::PmNear];

fn main() {
    let cli = Cli::parse();
    let mut headers: Vec<&str> = vec!["app", "model", "system", "cycles"];
    headers.extend(stall_headers());
    let mut table = Table::new("Stall-cycle breakdown by cause", &headers);

    let mut traced = false;
    for kind in WORKLOADS {
        let scale = cli.scale_for(kind);
        for model in MODELS {
            for system in SYSTEMS {
                let spec = RunSpec {
                    workload: kind,
                    model,
                    system,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                };
                let out = run_workload(&spec).expect("cell runs");
                assert!(out.verified, "{kind}/{model}/{system} failed verification");
                assert_eq!(
                    out.stats.stall.bucket_sum(),
                    out.stats.stall.total,
                    "{kind}/{model}/{system}: stall buckets must sum to total"
                );
                let mut cells = vec![
                    kind.label().to_string(),
                    model.to_string(),
                    system.to_string(),
                    out.cycles.to_string(),
                ];
                cells.extend(stall_cells(&out.stats));
                table.row(cells);

                if !traced && cli.trace_out.is_some() {
                    traced = true;
                    let (_, timeline) = run_workload_traced(&spec, true).expect("traced cell runs");
                    cli.write_trace(&timeline.expect("tracing was enabled"));
                }
            }
        }
    }
    cli.emit(&table);
}
