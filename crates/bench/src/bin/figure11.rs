//! Figure 11: runtime of the recovery pass under epoch-near vs
//! SBRP-near, normalized to epoch-near (lower is better). The crash is
//! injected near the end of the run — the worst case, e.g. gpKVS just
//! before its transaction completes, maximizing the log replayed.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::{run_recovery_cells_expect, RecoveryCell};
use sbrp_harness::{geomean, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let cells: Vec<RecoveryCell> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let base = RunSpec {
                workload: kind,
                system: SystemDesign::PmNear,
                scale: cli.scale_for(kind),
                small_gpu: cli.small,
                ..RunSpec::default()
            };
            [ModelKind::Epoch, ModelKind::Sbrp].map(|model| RecoveryCell {
                spec: RunSpec {
                    model,
                    ..base.clone()
                },
                fraction: 0.9,
            })
        })
        .collect();
    // On any failing cell this prints the aggregated failure table and
    // exits nonzero instead of panicking on the first error.
    let (outs, summary) = run_recovery_cells_expect(&cli.sweep_opts(), &cells);

    let mut table = Table::new(
        "Figure 11: recovery runtime normalized to epoch-near",
        &["app", "Epoch", "SBRP", "recovery/runtime (SBRP)"],
    );
    let mut ratios = Vec::new();
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let (epoch, sbrp) = (&outs[w * 2], &outs[w * 2 + 1]);
        assert!(epoch.verified && sbrp.verified, "{kind}: recovery failed");
        let norm = sbrp.recovery_cycles as f64 / epoch.recovery_cycles.max(1) as f64;
        ratios.push(norm);
        table.row(vec![
            kind.label().into(),
            "1.000".into(),
            format!("{norm:.3}"),
            format!(
                "{:.1}%",
                100.0 * sbrp.recovery_cycles as f64 / sbrp.crash_free_cycles.max(1) as f64
            ),
        ]);
    }
    table.row(vec![
        "GMean".into(),
        "1.000".into(),
        format!("{:.3}", geomean(&ratios)),
        "-".into(),
    ]);
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
