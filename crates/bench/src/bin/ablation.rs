//! Ablation of the persist-buffer design choices (DESIGN.md,
//! "Microarchitectural refinements" + §6.2's drain policies): SBRP-near
//! and SBRP-far speedups over the epoch baseline with each mechanism
//! individually disabled.

use sbrp_bench::Cli;
use sbrp_core::pbuffer::DrainPolicy;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{geomean, RunSpec};
use sbrp_workloads::WorkloadKind;

type Variant = (&'static str, fn(&mut RunSpec));

const SYSTEMS: [SystemDesign; 2] = [SystemDesign::PmNear, SystemDesign::PmFar];

fn main() {
    let cli = Cli::parse();
    let variants: [Variant; 7] = [
        ("full", |_| {}),
        ("-ooo-drain", |s| s.no_ooo_drain = true),
        ("-early-flush", |s| s.no_early_flush = true),
        ("-perwarp-fsm", |s| s.no_per_warp_fsm = true),
        ("eager", |s| s.policy = Some(DrainPolicy::Eager)),
        ("lazy", |s| s.policy = Some(DrainPolicy::Lazy)),
        ("paper-min", |s| {
            // All refinements off at once: the most literal reading.
            s.no_ooo_drain = true;
            s.no_early_flush = true;
            s.no_per_warp_fsm = true;
        }),
    ];
    // Per (system, workload): one epoch baseline, then each variant.
    let stride = 1 + variants.len();
    let mut specs: Vec<RunSpec> = Vec::new();
    for system in SYSTEMS {
        for kind in WorkloadKind::ALL {
            let base = RunSpec {
                workload: kind,
                system,
                scale: cli.scale_for(kind),
                small_gpu: cli.small,
                ..RunSpec::default()
            };
            specs.push(RunSpec {
                model: ModelKind::Epoch,
                ..base.clone()
            });
            for (_, tweak) in &variants {
                let mut spec = RunSpec {
                    model: ModelKind::Sbrp,
                    ..base.clone()
                };
                tweak(&mut spec);
                specs.push(spec);
            }
        }
    }
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    for (si, system) in SYSTEMS.into_iter().enumerate() {
        let headers: Vec<&str> = std::iter::once("app")
            .chain(variants.iter().map(|v| v.0))
            .collect();
        let mut table = Table::new(
            format!("Ablation: SBRP-{system} speedup over epoch-{system}"),
            &headers,
        );
        let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
        for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            let at = (si * WorkloadKind::ALL.len() + w) * stride;
            let row = &outs[at..at + stride];
            let epoch = row[0].cycles as f64;
            let speedups: Vec<f64> = row[1..]
                .iter()
                .map(|out| {
                    assert!(out.verified, "{kind} ablation failed verification");
                    epoch / out.cycles as f64
                })
                .collect();
            for (i, s) in speedups.iter().enumerate() {
                per_variant[i].push(*s);
            }
            table.row_f64(kind.label(), &speedups);
        }
        let means: Vec<f64> = per_variant.iter().map(|v| geomean(v)).collect();
        table.row_f64("GMean", &means);
        cli.emit(&table);
        println!();
    }
    eprintln!("{}", summary.summary_line());
}
