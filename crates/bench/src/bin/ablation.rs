//! Ablation of the persist-buffer design choices (DESIGN.md,
//! "Microarchitectural refinements" + §6.2's drain policies): SBRP-near
//! and SBRP-far speedups over the epoch baseline with each mechanism
//! individually disabled.

use sbrp_bench::Cli;
use sbrp_core::pbuffer::DrainPolicy;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

type Variant = (&'static str, fn(&mut RunSpec));

fn main() {
    let cli = Cli::parse();
    let variants: [Variant; 7] = [
        ("full", |_| {}),
        ("-ooo-drain", |s| s.no_ooo_drain = true),
        ("-early-flush", |s| s.no_early_flush = true),
        ("-perwarp-fsm", |s| s.no_per_warp_fsm = true),
        ("eager", |s| s.policy = Some(DrainPolicy::Eager)),
        ("lazy", |s| s.policy = Some(DrainPolicy::Lazy)),
        ("paper-min", |s| {
            // All refinements off at once: the most literal reading.
            s.no_ooo_drain = true;
            s.no_early_flush = true;
            s.no_per_warp_fsm = true;
        }),
    ];
    for system in [SystemDesign::PmNear, SystemDesign::PmFar] {
        let headers: Vec<&str> = std::iter::once("app")
            .chain(variants.iter().map(|v| v.0))
            .collect();
        let mut table = Table::new(
            format!("Ablation: SBRP-{system} speedup over epoch-{system}"),
            &headers,
        );
        let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
        for kind in WorkloadKind::ALL {
            let scale = cli.scale_for(kind);
            let base = RunSpec {
                workload: kind,
                system,
                scale,
                small_gpu: cli.small,
                ..RunSpec::default()
            };
            let epoch = run_workload(&RunSpec {
                model: ModelKind::Epoch,
                ..base.clone()
            })
            .expect("cell runs")
            .cycles as f64;
            let speedups: Vec<f64> = variants
                .iter()
                .map(|(_, tweak)| {
                    let mut spec = RunSpec {
                        model: ModelKind::Sbrp,
                        ..base.clone()
                    };
                    tweak(&mut spec);
                    let out = run_workload(&spec).expect("cell runs");
                    assert!(out.verified, "{kind} ablation failed verification");
                    epoch / out.cycles as f64
                })
                .collect();
            for (i, s) in speedups.iter().enumerate() {
                per_variant[i].push(*s);
            }
            table.row_f64(kind.label(), &speedups);
        }
        let means: Vec<f64> = per_variant.iter().map(|v| geomean(v)).collect();
        table.row_f64("GMean", &means);
        cli.emit(&table);
        println!();
    }
}
