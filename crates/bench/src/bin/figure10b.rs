//! Figure 10(b): SBRP-near speedup over epoch-near while scaling the
//! NVM read/write bandwidth to 50 % / 100 % / 200 % of Table 1.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let scales = [0.5, 1.0, 2.0];
    let mut table = Table::new(
        "Figure 10(b): SBRP-near speedup over epoch-near, varying NVM bandwidth",
        &["app", "50%", "100%", "200%"],
    );
    let mut per_bw: Vec<Vec<f64>> = vec![Vec::new(); scales.len()];
    for kind in WorkloadKind::ALL {
        let scale = cli.scale_for(kind);
        let speedups: Vec<f64> = scales
            .iter()
            .map(|&bw| {
                let base = RunSpec {
                    workload: kind,
                    system: SystemDesign::PmNear,
                    nvm_bw_scale: bw,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                };
                let epoch = run_workload(&RunSpec {
                    model: ModelKind::Epoch,
                    ..base.clone()
                })
                .expect("cell runs")
                .cycles as f64;
                let sbrp = run_workload(&RunSpec {
                    model: ModelKind::Sbrp,
                    ..base.clone()
                })
                .expect("cell runs")
                .cycles as f64;
                epoch / sbrp
            })
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            per_bw[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_bw.iter().map(|v| geomean(v)).collect();
    table.row_f64("GMean", &means);
    cli.emit(&table);
}
