//! Figure 10(b): SBRP-near speedup over epoch-near while scaling the
//! NVM read/write bandwidth to 50 % / 100 % / 200 % of Table 1.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{geomean, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let scales = [0.5, 1.0, 2.0];
    // Per workload: (epoch, sbrp) at every bandwidth — the epoch
    // baseline moves with the bandwidth too.
    let stride = 2 * scales.len();
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let scale = cli.scale_for(kind);
            scales.into_iter().flat_map(move |bw| {
                let base = RunSpec {
                    workload: kind,
                    system: SystemDesign::PmNear,
                    nvm_bw_scale: bw,
                    scale,
                    small_gpu: cli.small,
                    ..RunSpec::default()
                };
                [
                    RunSpec {
                        model: ModelKind::Epoch,
                        ..base.clone()
                    },
                    RunSpec {
                        model: ModelKind::Sbrp,
                        ..base
                    },
                ]
            })
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let mut table = Table::new(
        "Figure 10(b): SBRP-near speedup over epoch-near, varying NVM bandwidth",
        &["app", "50%", "100%", "200%"],
    );
    let mut per_bw: Vec<Vec<f64>> = vec![Vec::new(); scales.len()];
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let row = &outs[w * stride..(w + 1) * stride];
        let speedups: Vec<f64> = (0..scales.len())
            .map(|i| row[2 * i].cycles as f64 / row[2 * i + 1].cycles as f64)
            .collect();
        for (i, s) in speedups.iter().enumerate() {
            per_bw[i].push(*s);
        }
        table.row_f64(kind.label(), &speedups);
    }
    let means: Vec<f64> = per_bw.iter().map(|v| geomean(v)).collect();
    table.row_f64("GMean", &means);
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
