//! Figure 9: SBRP-far speedup over epoch-far with eADR enabled — the
//! durability point moves to the host LLC, but PCIe bandwidth remains
//! the bottleneck, so scopes/buffers keep their value.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::sweep::run_specs_expect;
use sbrp_harness::{geomean, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let specs: Vec<RunSpec> = WorkloadKind::ALL
        .into_iter()
        .flat_map(|kind| {
            let base = RunSpec {
                workload: kind,
                system: SystemDesign::PmFar,
                eadr: true,
                scale: cli.scale_for(kind),
                small_gpu: cli.small,
                ..RunSpec::default()
            };
            [
                RunSpec {
                    model: ModelKind::Epoch,
                    ..base.clone()
                },
                RunSpec {
                    model: ModelKind::Sbrp,
                    ..base
                },
            ]
        })
        .collect();
    let (outs, summary) = run_specs_expect(&cli.sweep_opts(), &specs);

    let mut table = Table::new(
        "Figure 9: SBRP-far speedup over epoch-far under eADR",
        &["app", "Epoch-far", "SBRP-far"],
    );
    let mut speedups = Vec::new();
    for (w, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let s = outs[w * 2].cycles as f64 / outs[w * 2 + 1].cycles as f64;
        speedups.push(s);
        table.row_f64(kind.label(), &[1.0, s]);
    }
    table.row_f64("GMean", &[1.0, geomean(&speedups)]);
    cli.emit(&table);
    eprintln!("{}", summary.summary_line());
}
