//! Figure 9: SBRP-far speedup over epoch-far with eADR enabled — the
//! durability point moves to the host LLC, but PCIe bandwidth remains
//! the bottleneck, so scopes/buffers keep their value.

use sbrp_bench::Cli;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::report::Table;
use sbrp_harness::{geomean, run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;

fn main() {
    let cli = Cli::parse();
    let mut table = Table::new(
        "Figure 9: SBRP-far speedup over epoch-far under eADR",
        &["app", "Epoch-far", "SBRP-far"],
    );
    let mut speedups = Vec::new();
    for kind in WorkloadKind::ALL {
        let scale = cli.scale_for(kind);
        let base = RunSpec {
            workload: kind,
            system: SystemDesign::PmFar,
            eadr: true,
            scale,
            small_gpu: cli.small,
            ..RunSpec::default()
        };
        let epoch = run_workload(&RunSpec {
            model: ModelKind::Epoch,
            ..base.clone()
        })
        .expect("cell runs")
        .cycles as f64;
        let sbrp = run_workload(&RunSpec {
            model: ModelKind::Sbrp,
            ..base.clone()
        })
        .expect("cell runs")
        .cycles as f64;
        let s = epoch / sbrp;
        speedups.push(s);
        table.row_f64(kind.label(), &[1.0, s]);
    }
    table.row_f64("GMean", &[1.0, geomean(&speedups)]);
    cli.emit(&table);
}
