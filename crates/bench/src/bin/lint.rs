//! Static persistency linter driver.
//!
//! Lints every stock kernel in the repository — the six applications
//! (main and recovery flavours) and the five microbenchmarks, under
//! every persistency model — with `sbrp-lint`, and fails the process if
//! any kernel produces an error-severity diagnostic.
//!
//! ```text
//! cargo run --release -p sbrp-bench --bin lint
//! ```
//!
//! * `--json`     — emit one JSON report per kernel (a JSON array)
//!   instead of text;
//! * `--all`      — print clean reports too (default prints only
//!   kernels with diagnostics);
//! * `--demoted`  — also lint the SBRP scope-demotion variants
//!   (the §5.3 experiment kernels);
//! * `--mutants`  — lint the seeded mutant suite instead of the stock
//!   kernels and verify every broken mutant is flagged (exits non-zero
//!   if any seeded bug is missed or a correct mutant is dirty).

use sbrp_core::ModelKind;
use sbrp_lint::{lint_kernel, LintConfig, LintReport, Severity};
use sbrp_workloads::{BuildOpts, Launchable, Micro, WorkloadKind};

const MODELS: [ModelKind; 3] = [ModelKind::Sbrp, ModelKind::Epoch, ModelKind::Gpm];

struct Args {
    json: bool,
    all: bool,
    demoted: bool,
    mutants: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        json: false,
        all: false,
        demoted: false,
        mutants: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => out.json = true,
            "--all" => out.all = true,
            "--demoted" => out.demoted = true,
            "--mutants" => out.mutants = true,
            "--help" | "-h" => {
                println!("usage: lint [--json] [--all] [--demoted] [--mutants]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn lint_launchable(l: &Launchable) -> LintReport {
    lint_kernel(&l.kernel, &LintConfig::with_launch(l.launch))
}

/// Every stock kernel: (context label, report).
fn stock_reports(demoted: bool) -> Vec<(String, LintReport)> {
    let mut out = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = kind.instantiate(256, 42);
        for model in MODELS {
            let opts = BuildOpts::for_model(model);
            out.push((
                format!("{kind}/{model:?}/main"),
                lint_launchable(&w.kernel(opts)),
            ));
            if let Some(rec) = w.recovery(opts) {
                out.push((format!("{kind}/{model:?}/recovery"), lint_launchable(&rec)));
            }
        }
        if demoted {
            let opts = BuildOpts {
                model: ModelKind::Sbrp,
                demote_scopes: true,
            };
            out.push((
                format!("{kind}/Sbrp/demoted"),
                lint_launchable(&w.kernel(opts)),
            ));
        }
    }
    for micro in Micro::ALL {
        for model in MODELS {
            out.push((
                format!("micro-{}/{model:?}", micro.label()),
                lint_launchable(&micro.kernel(BuildOpts::for_model(model), 8)),
            ));
        }
    }
    out
}

fn run_stock(args: &Args) -> i32 {
    let reports = stock_reports(args.demoted);
    let mut errors = 0usize;
    let mut diags = 0usize;
    if args.json {
        let body: Vec<String> = reports.iter().map(|(_, r)| r.to_json()).collect();
        println!("[{}]", body.join(","));
    }
    for (ctx, r) in &reports {
        errors += r.count(Severity::Error);
        diags += r.diags.len();
        if !args.json && (args.all || !r.diags.is_empty()) {
            print!("== {ctx}\n{}", r.to_text());
        }
    }
    eprintln!(
        "lint: {} kernels, {} diagnostics, {} errors",
        reports.len(),
        diags,
        errors
    );
    i32::from(errors > 0)
}

fn run_mutants(args: &Args) -> i32 {
    let suite = sbrp_lint::mutants::suite(sbrp_gpu_sim::config::PM_BASE);
    let mut missed = Vec::new();
    let mut dirty = Vec::new();
    let mut body = Vec::new();
    for m in &suite {
        let mut cfg = LintConfig::with_launch(m.launch);
        cfg.pm_base = sbrp_gpu_sim::config::PM_BASE;
        let r = lint_kernel(&m.kernel, &cfg);
        if args.json {
            body.push(r.to_json());
        } else {
            print!("== {} ({})\n{}", m.name, m.what, r.to_text());
        }
        if m.is_broken() {
            if !m.expect.iter().all(|&c| r.has(c)) {
                missed.push(m.name);
            }
        } else if r.errors() > 0 {
            dirty.push(m.name);
        }
    }
    if args.json {
        println!("[{}]", body.join(","));
    }
    eprintln!(
        "lint: {} mutants, {} seeded bugs missed, {} correct kernels dirty",
        suite.len(),
        missed.len(),
        dirty.len()
    );
    for n in &missed {
        eprintln!("MISSED: {n}");
    }
    for n in &dirty {
        eprintln!("FALSE POSITIVE: {n}");
    }
    i32::from(!missed.is_empty() || !dirty.is_empty())
}

fn main() {
    let args = parse_args();
    let code = if args.mutants {
        run_mutants(&args)
    } else {
        run_stock(&args)
    };
    std::process::exit(code);
}
