//! Static persistency linter driver.
//!
//! Lints every stock kernel in the repository — the six applications
//! (main and recovery flavours) and the five microbenchmarks, under
//! every persistency model — with `sbrp-lint`, and fails the process if
//! any kernel produces an error-severity diagnostic.
//!
//! ```text
//! cargo run --release -p sbrp-bench --bin lint
//! ```
//!
//! * `--json`        — emit one JSON report per kernel (a JSON array)
//!   instead of text;
//! * `--sarif`       — emit a single SARIF 2.1.0 log for all linted
//!   kernels instead of text (for code-scanning upload);
//! * `--interthread` — run the whole-kernel inter-thread analysis
//!   (P007–P012) on top of the intra-thread rules;
//! * `--fix`         — apply every machine-applicable fix and re-lint
//!   the rewritten kernel; exits non-zero if a fix fails to clear its
//!   diagnostic or introduces a new error;
//! * `--all`         — print clean reports too (default prints only
//!   kernels with diagnostics);
//! * `--demoted`     — also lint the SBRP scope-demotion variants
//!   (the §5.3 experiment kernels);
//! * `--mutants`     — lint the seeded mutant suite instead of the
//!   stock kernels and verify every broken mutant is flagged (exits
//!   non-zero if any seeded bug is missed or a correct mutant is
//!   dirty). The mutant suite always runs the inter-thread analysis:
//!   its P007–P012 entries are invisible to the intra-thread rules.

use sbrp_core::ModelKind;
use sbrp_isa::Kernel;
use sbrp_lint::{apply_fix, lint_all, lint_kernel, LintConfig, LintReport, Severity};
use sbrp_workloads::{BuildOpts, Launchable, Micro, WorkloadKind};

const MODELS: [ModelKind; 3] = [ModelKind::Sbrp, ModelKind::Epoch, ModelKind::Gpm];

struct Args {
    json: bool,
    sarif: bool,
    interthread: bool,
    fix: bool,
    all: bool,
    demoted: bool,
    mutants: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        json: false,
        sarif: false,
        interthread: false,
        fix: false,
        all: false,
        demoted: false,
        mutants: false,
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--json" => out.json = true,
            "--sarif" => out.sarif = true,
            "--interthread" => out.interthread = true,
            "--fix" => out.fix = true,
            "--all" => out.all = true,
            "--demoted" => out.demoted = true,
            "--mutants" => out.mutants = true,
            "--help" | "-h" => {
                println!(
                    "usage: lint [--json|--sarif] [--interthread] [--fix] [--all] \
                     [--demoted] [--mutants]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

fn lint_launchable(l: &Launchable, interthread: bool) -> LintReport {
    let cfg = LintConfig::with_launch(l.launch);
    if interthread {
        lint_all(&l.kernel, &cfg)
    } else {
        lint_kernel(&l.kernel, &cfg)
    }
}

/// Every stock kernel: (context label, kernel, config, report).
fn stock_reports(args: &Args) -> Vec<(String, Kernel, LintConfig, LintReport)> {
    let mut out = Vec::new();
    let mut push = |ctx: String, l: &Launchable| {
        let cfg = LintConfig::with_launch(l.launch);
        out.push((
            ctx,
            l.kernel.clone(),
            cfg,
            lint_launchable(l, args.interthread),
        ));
    };
    for kind in WorkloadKind::ALL {
        let w = kind.instantiate(256, 42);
        for model in MODELS {
            let opts = BuildOpts::for_model(model);
            push(format!("{kind}/{model:?}/main"), &w.kernel(opts));
            if let Some(rec) = w.recovery(opts) {
                push(format!("{kind}/{model:?}/recovery"), &rec);
            }
        }
        if args.demoted {
            let opts = BuildOpts {
                model: ModelKind::Sbrp,
                demote_scopes: true,
            };
            push(format!("{kind}/Sbrp/demoted"), &w.kernel(opts));
        }
    }
    for micro in Micro::ALL {
        for model in MODELS {
            push(
                format!("micro-{}/{model:?}", micro.label()),
                &micro.kernel(BuildOpts::for_model(model), 8),
            );
        }
    }
    out
}

/// Repeatedly applies the first machine fix the linter offers and
/// re-lints, until no fixable diagnostic remains (each application can
/// shift locations and legitimately surface a successor finding, e.g.
/// the second of two stacked dominated fences). Returns failure labels
/// when the chain does not converge or the converged kernel has more
/// errors than the original.
fn check_fixes(kernel: &Kernel, cfg: &LintConfig, report: &LintReport) -> Vec<String> {
    if report.diags.iter().all(|d| d.fix.is_none()) {
        return Vec::new();
    }
    let base_errors = report.errors();
    let mut k = kernel.clone();
    for _ in 0..16 {
        let r = lint_all(&k, cfg);
        let Some(d) = r.diags.iter().find(|d| d.fix.is_some()) else {
            return if r.errors() > base_errors {
                vec![format!(
                    "{}: fixes converged but raised the error count ({} -> {})",
                    report.kernel,
                    base_errors,
                    r.errors()
                )]
            } else {
                Vec::new()
            };
        };
        k = apply_fix(&k, d.fix.as_ref().expect("filtered on fix"));
    }
    vec![format!("{}: fix chain did not converge", report.kernel)]
}

fn run_stock(args: &Args) -> i32 {
    let reports = stock_reports(args);
    let mut errors = 0usize;
    let mut diags = 0usize;
    let mut fix_failures = Vec::new();
    if args.sarif {
        let bare: Vec<LintReport> = reports.iter().map(|(_, _, _, r)| r.clone()).collect();
        println!("{}", sbrp_lint::sarif(&bare));
    } else if args.json {
        let body: Vec<String> = reports.iter().map(|(_, _, _, r)| r.to_json()).collect();
        println!("[{}]", body.join(","));
    }
    for (ctx, kernel, cfg, r) in &reports {
        errors += r.count(Severity::Error);
        diags += r.diags.len();
        if !args.json && !args.sarif && (args.all || !r.diags.is_empty()) {
            print!("== {ctx}\n{}", r.to_text());
        }
        if args.fix {
            fix_failures.extend(check_fixes(kernel, cfg, r));
        }
    }
    eprintln!(
        "lint: {} kernels, {} diagnostics, {} errors",
        reports.len(),
        diags,
        errors
    );
    for f in &fix_failures {
        eprintln!("FIX FAILED: {f}");
    }
    i32::from(errors > 0 || !fix_failures.is_empty())
}

fn run_mutants(args: &Args) -> i32 {
    let suite = sbrp_lint::mutants::suite(sbrp_gpu_sim::config::PM_BASE);
    let mut missed = Vec::new();
    let mut dirty = Vec::new();
    let mut fix_failures = Vec::new();
    let mut body = Vec::new();
    let mut sarif_reports = Vec::new();
    for m in &suite {
        let mut cfg = LintConfig::with_launch(m.launch);
        cfg.pm_base = sbrp_gpu_sim::config::PM_BASE;
        let r = lint_all(&m.kernel, &cfg);
        if args.sarif {
            sarif_reports.push(r.clone());
        } else if args.json {
            body.push(r.to_json());
        } else {
            print!("== {} ({})\n{}", m.name, m.what, r.to_text());
        }
        if m.is_broken() {
            if !m.expect.iter().all(|&c| r.has(c)) {
                missed.push(m.name);
            }
        } else if r.errors() > 0 {
            dirty.push(m.name);
        }
        if args.fix {
            fix_failures.extend(check_fixes(&m.kernel, &cfg, &r));
        }
    }
    if args.sarif {
        println!("{}", sbrp_lint::sarif(&sarif_reports));
    } else if args.json {
        println!("[{}]", body.join(","));
    }
    eprintln!(
        "lint: {} mutants, {} seeded bugs missed, {} correct kernels dirty",
        suite.len(),
        missed.len(),
        dirty.len()
    );
    for n in &missed {
        eprintln!("MISSED: {n}");
    }
    for n in &dirty {
        eprintln!("FALSE POSITIVE: {n}");
    }
    for f in &fix_failures {
        eprintln!("FIX FAILED: {f}");
    }
    i32::from(!missed.is_empty() || !dirty.is_empty() || !fix_failures.is_empty())
}

fn main() {
    let args = parse_args();
    let code = if args.mutants {
        run_mutants(&args)
    } else {
        run_stock(&args)
    };
    std::process::exit(code);
}
