//! Table 2: the applications used in the evaluation.

use sbrp_bench::Cli;
use sbrp_harness::report::Table;
use sbrp_workloads::{BuildOpts, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let mut t = Table::new(
        "Table 2: applications used in evaluation",
        &["app", "default params", "scoped PMO", "recovery"],
    );
    let meta = [
        ("~8K pairs", "Intrathread", "Logging"),
        ("~8K entries", "Intrathread", "Logging"),
        ("128 sq. matrix", "Intrathread", "Native"),
        ("~128K ints", "Blk/dev-interthread", "Native"),
        ("~16K entries", "Intra/blk-interthread", "Logging"),
        ("~16K ints", "Blk-interthread", "Native"),
    ];
    for (kind, (params, pmo, recovery)) in WorkloadKind::ALL.iter().zip(meta) {
        // Sanity: the recovery column matches the implementation.
        let w = kind.instantiate(256, 0);
        let has_kernel = w
            .recovery(BuildOpts::for_model(sbrp_core::ModelKind::Sbrp))
            .is_some();
        assert_eq!(has_kernel, recovery == "Logging", "{kind}");
        t.row(vec![
            kind.label().into(),
            params.into(),
            pmo.into(),
            recovery.into(),
        ]);
    }
    cli.emit(&t);
}
