//! Acceptance: every stock workload runs clean under the online
//! persistency sanitizer — zero PMO violations across
//! {SBRP, Epoch} × {PM-far, PM-near} — and the negative control (an
//! injected ADR violation during real workload runs) is caught,
//! proving the detector is not vacuous at workload scale.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::fault::{FaultPlan, NvmFault};
use sbrp_gpu_sim::{Gpu, RunOutcome, SimError};
use sbrp_workloads::{BuildOpts, Micro, WorkloadKind};

const CYCLE_LIMIT: u64 = 200_000_000;

fn sanitize_cfg(model: ModelKind, system: SystemDesign) -> GpuConfig {
    let mut cfg = GpuConfig::small(model, system);
    cfg.sanitize = true;
    cfg
}

fn run_sanitized(kind: WorkloadKind, opts: BuildOpts, system: SystemDesign) -> Result<(), String> {
    let cfg = sanitize_cfg(opts.model, system);
    let w = kind.instantiate(256, 42);
    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let report = gpu.run(CYCLE_LIMIT).map_err(|e| e.to_string())?;
    assert_eq!(report.outcome, RunOutcome::Completed);
    w.verify_complete(&gpu)
}

#[test]
fn applications_sanitize_clean_across_models_and_designs() {
    for kind in WorkloadKind::ALL {
        for model in [ModelKind::Sbrp, ModelKind::Epoch] {
            for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
                run_sanitized(kind, BuildOpts::for_model(model), system)
                    .unwrap_or_else(|e| panic!("{kind} {model:?}/{system}: {e}"));
            }
        }
    }
}

#[test]
fn microbenchmarks_sanitize_clean_across_models_and_designs() {
    for micro in Micro::ALL {
        for model in [ModelKind::Sbrp, ModelKind::Epoch] {
            for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
                let cfg = sanitize_cfg(model, system);
                let l = micro.kernel(BuildOpts::for_model(model), 8);
                let mut gpu = Gpu::new(&cfg);
                gpu.launch(&l.kernel, l.launch);
                gpu.run(CYCLE_LIMIT)
                    .unwrap_or_else(|e| panic!("{} {model:?}/{system}: {e}", micro.label()));
            }
        }
    }
}

#[test]
fn injected_adr_violations_are_caught_at_workload_scale() {
    // Negative control: drop the first WPQ accept of each workload run.
    // The machine still acks the write, so everything fenced after it
    // becomes durable while the dropped persist does not — the run-end
    // crash cut is not downward-closed, and the sanitizer must say so.
    // Kernels here are the *stock correct* ones; the bug is in the
    // machine, which is exactly what the static linter cannot see.
    let mut caught = 0usize;
    let mut silent = Vec::new();
    for kind in WorkloadKind::ALL {
        let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
        let w = kind.instantiate(256, 42);
        let l = w.kernel(BuildOpts::for_model(ModelKind::Sbrp));
        let mut gpu = Gpu::new(&cfg);
        gpu.set_fault_plan(FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(1)));
        w.init(&mut gpu);
        gpu.launch(&l.kernel, l.launch);
        match gpu.run_faulted(CYCLE_LIMIT) {
            Err(SimError::PmoViolation { violation, .. }) => {
                assert!(violation.before < violation.after, "{violation}");
                caught += 1;
            }
            Ok(_) => silent.push(kind),
            Err(e) => panic!("{kind} faulted: unexpected error {e}"),
        }
    }
    assert!(
        caught > 0,
        "no workload tripped the sanitizer under an injected ADR fault \
         (silent: {silent:?}) — the online detector is vacuous"
    );
}
