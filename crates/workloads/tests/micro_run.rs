//! The microbenchmark kernels run to completion and behave as designed
//! (coalescing visible in the PB stats, ping-pong round trips happen).

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::Gpu;
use sbrp_workloads::{BuildOpts, Micro};

fn run(micro: Micro, model: ModelKind, iters: u64) -> sbrp_gpu_sim::stats::SimStats {
    let cfg = GpuConfig::small(model, SystemDesign::PmNear);
    let l = micro.kernel(BuildOpts::for_model(model), iters);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&l.kernel, l.launch);
    gpu.run(100_000_000)
        .unwrap_or_else(|e| panic!("{micro}/{model}: {e}"));
    gpu.stats()
}

#[test]
fn all_micros_complete_under_all_models() {
    for micro in Micro::ALL {
        for model in ModelKind::ALL {
            let stats = run(micro, model, 4);
            assert!(stats.persist_flushes > 0, "{micro}/{model}: no persists?");
        }
    }
}

#[test]
fn coalesce_stress_coalesces_under_sbrp() {
    let stats = run(Micro::CoalesceStress, ModelKind::Sbrp, 8);
    // 32 lanes × W4 into one line: one entry, one flush per iteration
    // per warp; the per-lane stores coalesce.
    assert!(
        stats.pb.coalesced == 0,
        "a full-warp store is one engine event, not 32: got {} coalesces",
        stats.pb.coalesced
    );
    assert_eq!(stats.pb.entries, stats.persist_flushes);
}

#[test]
fn same_line_rewrite_stalls_under_sbrp() {
    let stats = run(Micro::SameLineRewrite, ModelKind::Sbrp, 8);
    assert!(
        stats.pb.stall_ordered > 0,
        "rewriting a fenced line must hit the §6.1 stall path"
    );
}

#[test]
fn fence_chain_is_cheaper_under_sbrp_than_epoch() {
    // The asynchronous oFence vs. a blocking barrier per iteration.
    let cfg_iters = 16;
    let sbrp = run(Micro::FenceChain, ModelKind::Sbrp, cfg_iters);
    let epoch = run(Micro::FenceChain, ModelKind::Epoch, cfg_iters);
    assert!(
        sbrp.cycles < epoch.cycles,
        "asynchronous fences should win: SBRP {} vs epoch {}",
        sbrp.cycles,
        epoch.cycles
    );
}

#[test]
fn pingpong_round_trips_complete() {
    for model in [ModelKind::Sbrp, ModelKind::Epoch] {
        let stats = run(Micro::AcquirePingPong, model, 6);
        assert!(stats.cycles > 0, "{model}");
    }
}
