//! End-to-end workload tests: every application runs to completion and
//! verifies under every model × system design, and recovers correctly
//! from crashes at many points.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::{Gpu, RunOutcome};
use sbrp_workloads::{BuildOpts, WorkloadKind};

const LIMIT: u64 = 300_000_000;

fn configs() -> Vec<GpuConfig> {
    let mut v = Vec::new();
    for model in ModelKind::ALL {
        for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
            if model == ModelKind::Gpm && system == SystemDesign::PmNear {
                continue;
            }
            v.push(GpuConfig::small(model, system));
        }
    }
    v
}

/// Runs a workload to completion and verifies the result.
fn run_complete(kind: WorkloadKind, scale: u64) {
    for cfg in configs() {
        let w = kind.instantiate(scale, 42);
        let l = w.kernel(BuildOpts::for_model(cfg.model));
        let mut gpu = Gpu::new(&cfg);
        w.init(&mut gpu);
        gpu.launch(&l.kernel, l.launch);
        let report = gpu
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{kind} {:?}/{}: {e}", cfg.model, cfg.system));
        assert_eq!(report.outcome, RunOutcome::Completed);
        w.verify_complete(&gpu)
            .unwrap_or_else(|e| panic!("{kind} {:?}/{}: {e}", cfg.model, cfg.system));
    }
}

/// Crashes a workload at several points, checks the durable image is
/// consistent, runs recovery, and verifies the final state.
fn run_crash_recover(kind: WorkloadKind, scale: u64, crash_points: &[u64]) {
    for model in ModelKind::ALL {
        let cfg = GpuConfig::small(model, SystemDesign::PmNear);
        for &crash_at in crash_points {
            let w = kind.instantiate(scale, 42);
            let opts = BuildOpts::for_model(model);
            let l = w.kernel(opts);
            let mut gpu = Gpu::new(&cfg);
            w.init(&mut gpu);
            gpu.launch(&l.kernel, l.launch);
            let report = gpu
                .run_until(crash_at)
                .unwrap_or_else(|e| panic!("{kind} {model:?} crash@{crash_at}: {e}"));
            let image = gpu.durable_image();
            w.verify_crash_consistent(&image)
                .unwrap_or_else(|e| panic!("{kind} {model:?} crash@{crash_at}: {e}"));
            if report.outcome == RunOutcome::Completed {
                continue; // finished before the crash point
            }

            // Boot a recovery GPU from the durable image.
            let mut rgpu = Gpu::from_image(&cfg, &image);
            w.init_volatile(&mut rgpu);
            if let Some(r) = w.recovery(opts) {
                rgpu.launch(&r.kernel, r.launch);
                rgpu.run(LIMIT)
                    .unwrap_or_else(|e| panic!("{kind} {model:?} recovery@{crash_at}: {e}"));
            }
            // Native workloads (and logging ones, post-log-replay) re-run
            // the main kernel to finish the job.
            let l2 = w.kernel(opts);
            rgpu.launch(&l2.kernel, l2.launch);
            rgpu.run(LIMIT)
                .unwrap_or_else(|e| panic!("{kind} {model:?} rerun@{crash_at}: {e}"));
            w.verify_complete(&rgpu)
                .unwrap_or_else(|e| panic!("{kind} {model:?} post-recovery@{crash_at}: {e}"));
        }
    }
}

const CRASH_POINTS: [u64; 5] = [500, 2_000, 8_000, 30_000, 120_000];

#[test]
fn reduction_completes_everywhere() {
    run_complete(WorkloadKind::Reduction, 1024);
}

#[test]
fn reduction_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Reduction, 1024, &CRASH_POINTS);
}

#[test]
fn reduction_demoted_scopes_still_correct() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let w = WorkloadKind::Reduction.instantiate(1024, 42);
    let l = w.kernel(BuildOpts {
        model: ModelKind::Sbrp,
        demote_scopes: true,
    });
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    gpu.run(LIMIT).expect("completes");
    w.verify_complete(&gpu)
        .expect("demotion widens scopes: still correct");
}

#[test]
fn gpkvs_completes_everywhere() {
    run_complete(WorkloadKind::Gpkvs, 512);
}

#[test]
fn gpkvs_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Gpkvs, 512, &CRASH_POINTS);
}

#[test]
fn hashmap_completes_everywhere() {
    run_complete(WorkloadKind::Hashmap, 512);
}

#[test]
fn hashmap_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Hashmap, 512, &CRASH_POINTS);
}

#[test]
fn srad_completes_everywhere() {
    run_complete(WorkloadKind::Srad, 512);
}

#[test]
fn srad_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Srad, 512, &CRASH_POINTS);
}

#[test]
fn multiqueue_completes_everywhere() {
    run_complete(WorkloadKind::Multiqueue, 512);
}

#[test]
fn multiqueue_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Multiqueue, 512, &CRASH_POINTS);
}

#[test]
fn scan_completes_everywhere() {
    run_complete(WorkloadKind::Scan, 512);
}

#[test]
fn scan_recovers_from_crashes() {
    run_crash_recover(WorkloadKind::Scan, 512, &CRASH_POINTS);
}
