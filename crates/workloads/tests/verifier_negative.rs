//! Negative tests: the crash-consistency verifiers must reject corrupted
//! durable images. (A verifier that accepts everything would make the
//! crash sweeps in `end_to_end.rs` vacuous.)

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_workloads::{BuildOpts, Workload, WorkloadKind};

/// Runs a workload partway and returns a consistent durable image.
fn consistent_image(kind: WorkloadKind, scale: u64, crash_at: u64) -> (Box<dyn Workload>, Backing) {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let w = kind.instantiate(scale, 42);
    let l = w.kernel(BuildOpts::for_model(ModelKind::Sbrp));
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let _ = gpu.run_until(crash_at).expect("no deadlock");
    let img = gpu.durable_image();
    w.verify_crash_consistent(&img)
        .expect("baseline image is consistent");
    (w, img)
}

/// Flips bytes across a region until the verifier complains.
fn corrupt_until_caught(
    w: &dyn Workload,
    img: &Backing,
    region: std::ops::Range<u64>,
    stride: u64,
) -> bool {
    let mut addr = region.start;
    while addr < region.end {
        let mut copy = img.clone();
        let v = copy.read_u64(addr);
        copy.write_u64(addr, v ^ 0xdead_beef_0000_0001);
        if w.verify_crash_consistent(&copy).is_err() {
            return true;
        }
        addr += stride;
    }
    false
}

// The NVM layout starts at the same base for every workload (the
// deterministic Layout); scanning a generous window hits each one's
// persistent regions.
const NVM_START: u64 = sbrp_gpu_sim::config::PM_BASE + 0x1_0000;

#[test]
fn gpkvs_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Gpkvs, 512, 20_000);
    assert!(
        corrupt_until_caught(&*w, &img, NVM_START..NVM_START + 64 * 1024, 64),
        "no corruption detected anywhere in the KVS region"
    );
}

#[test]
fn hashmap_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Hashmap, 512, 20_000);
    assert!(corrupt_until_caught(
        &*w,
        &img,
        NVM_START..NVM_START + 64 * 1024,
        64
    ));
}

#[test]
fn srad_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Srad, 512, 20_000);
    assert!(corrupt_until_caught(
        &*w,
        &img,
        NVM_START..NVM_START + 64 * 1024,
        64
    ));
}

#[test]
fn reduction_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Reduction, 1024, 20_000);
    assert!(corrupt_until_caught(
        &*w,
        &img,
        NVM_START..NVM_START + 64 * 1024,
        64
    ));
}

#[test]
fn multiqueue_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Multiqueue, 512, 20_000);
    assert!(corrupt_until_caught(
        &*w,
        &img,
        NVM_START..NVM_START + 64 * 1024,
        64
    ));
}

#[test]
fn scan_verifier_rejects_corruption() {
    let (w, img) = consistent_image(WorkloadKind::Scan, 512, 20_000);
    assert!(corrupt_until_caught(
        &*w,
        &img,
        NVM_START..NVM_START + 64 * 1024,
        64
    ));
}

/// Runs gpKVS on a machine with a seeded NVM fault, crashing shortly
/// after the faulted WPQ accept, and reports whether the formal trace
/// check or the workload's crash-consistency verifier objected.
fn seeded_fault_caught(nvm: sbrp_gpu_sim::fault::NvmFault) -> bool {
    use sbrp_gpu_sim::fault::FaultPlan;
    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let w = WorkloadKind::Gpkvs.instantiate(256, 42);
    let l = w.kernel(BuildOpts::for_model(ModelKind::Sbrp));
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    // Run to completion: every persist ordered after the faulted entry
    // becomes genuinely durable, exposing the hole to both checkers.
    gpu.set_fault_plan(FaultPlan::default().with_nvm(nvm));
    gpu.launch(&l.kernel, l.launch);
    let _ = gpu.run_faulted(50_000_000).expect("no deadlock");
    let formal_bad = gpu.take_trace().expect("traced").check().is_err();
    let semantic_bad = w.verify_crash_consistent(&gpu.durable_image()).is_err();
    formal_bad || semantic_bad
}

#[test]
fn injected_wpq_drop_is_caught() {
    // A real fault-injected machine (not a synthetic byte flip): an
    // ADR-violating dropped WPQ entry must be flagged — by the formal
    // checker or the workload verifier — for at least one entry index.
    use sbrp_gpu_sim::fault::NvmFault;
    assert!(
        (1..=10u64).any(|k| seeded_fault_caught(NvmFault::DropWpqEntry(k))),
        "no dropped WPQ entry was detected"
    );
}

#[test]
fn injected_torn_write_is_caught() {
    use sbrp_gpu_sim::fault::NvmFault;
    assert!(
        (1..=10u64).any(|k| seeded_fault_caught(NvmFault::TornWrite {
            entry: k,
            chunks: 1
        })),
        "no torn write was detected"
    );
}

#[test]
fn complete_verifiers_reject_wrong_results() {
    // verify_complete must fail on an unrun GPU (initial state).
    for kind in WorkloadKind::ALL {
        let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
        let w = kind.instantiate(512, 42);
        let mut gpu = Gpu::new(&cfg);
        w.init(&mut gpu);
        assert!(
            w.verify_complete(&gpu).is_err(),
            "{kind}: initial state must not verify as complete"
        );
    }
}
