//! gpKVS — GPU-accelerated persistent key-value store (§7.1, Fig. 4).
//!
//! A batch of key-value pairs is inserted into a PM-resident store in
//! parallel, one pair per thread, protected by a per-thread write-ahead
//! **undo log** on PM. The ordering contract is purely intra-thread
//! (`oFence`): log fields persist before the log is armed, the armed log
//! persists before the pair is overwritten, and the new pair persists
//! before the commit mark. The recovery kernel (bottom of Fig. 4)
//! restores in-doubt pairs from the log and clears it behind a `dFence`.
//!
//! Keys are a permutation of `0..pairs`, so the `key % pairs` hash maps
//! every thread to a distinct slot — the batch is conflict-free, as a
//! real gpKVS achieves with cooperative batching.
//!
//! The log is laid out append-style in three regions (fields / armed
//! marks / commit marks) so consecutive fence-separated writes never hit
//! the same cache line: rewriting a line whose earlier persist is still
//! buffered stalls the warp until that persist is durable (§6.1), which
//! PM-aware code avoids by construction.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LOG_EMPTY: u64 = 0;
const LOG_ARMED: u64 = 1;

/// New value inserted for a key.
#[must_use]
pub fn new_value(key: u64) -> u64 {
    key.wrapping_mul(2_654_435_761).wrapping_add(12_345)
}

/// Old value initially stored under a key.
#[must_use]
pub fn old_value(key: u64) -> u64 {
    key.wrapping_mul(40_503).wrapping_add(99)
}

/// The gpKVS workload: `pairs` insertions into a same-sized store.
#[derive(Debug)]
pub struct Gpkvs {
    pairs: u64,
    tpb: u32,
    /// Key handled by each thread (a block-partitioned permutation of
    /// `0..pairs`).
    keys: Vec<u64>,
    a_keys: u64,
    a_table: u64,
    a_log: u64,
    a_armed: u64,
    a_commit: u64,
}

impl Gpkvs {
    /// Creates a batch of roughly `scale` pairs.
    #[must_use]
    pub fn new(scale: u64, seed: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let blocks = (scale.max(u64::from(tpb)) / u64::from(tpb)).max(1);
        let pairs = blocks * u64::from(tpb);
        // Hash-partitioned batch, as in Mega-KV-style GPU KV stores: each
        // threadblock owns a contiguous bucket range and its threads'
        // keys are shuffled within it. (A fully random batch would have
        // every block scatter across the whole table, thrashing any
        // per-SM structure.)
        let mut keys: Vec<u64> = (0..pairs).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for chunk in keys.chunks_mut(tpb as usize) {
            chunk.shuffle(&mut rng);
        }
        let mut l = Layout::new();
        let a_keys = l.gddr(pairs * 8);
        let a_table = l.nvm(pairs * 16); // (key, value) per slot
        let a_log = l.nvm(pairs * 24); // (slot, old_key, old_val)
        let a_armed = l.nvm(pairs * 8);
        let a_commit = l.nvm(pairs * 8);
        Gpkvs {
            pairs,
            tpb,
            keys,
            a_keys,
            a_table,
            a_log,
            a_armed,
            a_commit,
        }
    }

    /// Number of pairs in the batch.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.pairs
    }

    /// Whether the batch is empty (never; at least one block).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    fn blocks(&self) -> u32 {
        (self.pairs / u64::from(self.tpb)) as u32
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks(), self.tpb)
    }

    fn emit_fence(b: &mut KernelBuilder, model: ModelKind) {
        match model {
            ModelKind::Sbrp => b.ofence(),
            ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
        }
    }
}

impl Workload for Gpkvs {
    fn name(&self) -> &'static str {
        "gpKVS"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        let mut table = Vec::with_capacity((self.pairs * 16) as usize);
        for slot in 0..self.pairs {
            table.extend_from_slice(&slot.to_le_bytes());
            table.extend_from_slice(&old_value(slot).to_le_bytes());
        }
        gpu.load_nvm(self.a_table, &table);
        gpu.load_nvm(self.a_log, &vec![0u8; (self.pairs * 24) as usize]);
        gpu.load_nvm(self.a_armed, &vec![0u8; (self.pairs * 8) as usize]);
        gpu.load_nvm(self.a_commit, &vec![0u8; (self.pairs * 8) as usize]);
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let bytes: Vec<u8> = self.keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        gpu.load_gddr(self.a_keys, &bytes);
    }

    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_keys,
            self.a_table,
            self.a_log,
            self.a_armed,
            self.a_commit,
        ]);
        let keys = b.param(0);
        let table = b.param(1);
        let log = b.param(2);
        let armed_r = b.param(3);
        let commit_r = b.param(4);

        let gtid = b.special(Special::GlobalTid);
        let koff = b.muli(gtid, 8);
        let kaddr = b.add(keys, koff);
        let key = b.ld(kaddr, 0, MemWidth::W8);
        // Keys are a permutation of 0..pairs: hash(key) = key.
        let slot = key;

        let goff8 = b.muli(gtid, 8);
        let loff = b.muli(gtid, 24);
        let laddr = b.add(log, loff);
        let my_armed = b.add(armed_r, goff8);
        let my_commit = b.add(commit_r, goff8);

        // Idempotence across recovery re-runs: skip committed inserts.
        let committed = b.ld(my_commit, 0, MemWidth::W8);
        let not_committed = b.eqi(committed, 0);
        b.if_then(not_committed, |b| {
            let toff = b.muli(slot, 16);
            let taddr = b.add(table, toff);
            let old_k = b.ld(taddr, 0, MemWidth::W8);
            let old_v = b.ld(taddr, 8, MemWidth::W8);

            // insert_into_log(...)
            b.st(laddr, 0, slot, MemWidth::W8);
            b.st(laddr, 8, old_k, MemWidth::W8);
            b.st(laddr, 16, old_v, MemWidth::W8);
            Self::emit_fence(b, opts.model);
            let one = b.movi(LOG_ARMED);
            b.st(my_armed, 0, one, MemWidth::W8);
            Self::emit_fence(b, opts.model);

            // insert_pair(...)
            let v = b.muli(key, 2_654_435_761);
            let nv = b.addi(v, 12_345);
            b.st(taddr, 0, key, MemWidth::W8);
            b.st(taddr, 8, nv, MemWidth::W8);
            Self::emit_fence(b, opts.model);

            // commit_log()
            let cm = b.movi(1);
            b.st(my_commit, 0, cm, MemWidth::W8);
        });

        Launchable {
            kernel: b.build("gpkvs_insert"),
            launch: self.launch(),
        }
    }

    fn recovery(&self, opts: BuildOpts) -> Option<Launchable> {
        let mut b = KernelBuilder::new();
        b.set_params(vec![self.a_table, self.a_log, self.a_armed, self.a_commit]);
        let table = b.param(0);
        let log = b.param(1);
        let armed_r = b.param(2);
        let commit_r = b.param(3);
        let gtid = b.special(Special::GlobalTid);
        let goff8 = b.muli(gtid, 8);
        let loff = b.muli(gtid, 24);
        let laddr = b.add(log, loff);
        let my_armed = b.add(armed_r, goff8);
        let my_commit = b.add(commit_r, goff8);
        let armed = b.ld(my_armed, 0, MemWidth::W8);
        let committed = b.ld(my_commit, 0, MemWidth::W8);

        // read_from_log + restore_pair for in-doubt inserts.
        let one = b.eqi(armed, LOG_ARMED);
        let zero = b.eqi(committed, 0);
        let in_doubt = b.mul(one, zero);
        b.if_then(in_doubt, |b| {
            let slot = b.ld(laddr, 0, MemWidth::W8);
            let old_k = b.ld(laddr, 8, MemWidth::W8);
            let old_v = b.ld(laddr, 16, MemWidth::W8);
            let toff = b.muli(slot, 16);
            let taddr = b.add(table, toff);
            b.st(taddr, 0, old_k, MemWidth::W8);
            b.st(taddr, 8, old_v, MemWidth::W8);
        });
        // dfence(); remove_log() — the restored KVS must be durable
        // before the log entry is discarded (Fig. 4 line 13).
        let touched = b.nei(armed, 0);
        b.if_then(touched, |b| {
            match opts.model {
                ModelKind::Sbrp => b.dfence(),
                ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
            }
            let empty = b.movi(LOG_EMPTY);
            b.st(my_armed, 0, empty, MemWidth::W8);
        });

        Some(Launchable {
            kernel: b.build("gpkvs_recover"),
            launch: self.launch(),
        })
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        for (i, &key) in self.keys.iter().enumerate() {
            let slot = key;
            let k = gpu.read_nvm_u64(self.a_table + slot * 16);
            let v = gpu.read_nvm_u64(self.a_table + slot * 16 + 8);
            if k != key || v != new_value(key) {
                return Err(format!(
                    "thread {i}: slot {slot} holds ({k}, {v}), expected ({key}, {})",
                    new_value(key)
                ));
            }
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        for (i, &key) in self.keys.iter().enumerate() {
            let slot = key;
            let armed = image.read_u64(self.a_armed + i as u64 * 8);
            let committed = image.read_u64(self.a_commit + i as u64 * 8);
            let k = image.read_u64(self.a_table + slot * 16);
            let v = image.read_u64(self.a_table + slot * 16 + 8);
            let old = (slot, old_value(slot));
            let new = (key, new_value(key));
            if armed > 1 || committed > 1 {
                return Err(format!("thread {i}: torn marks ({armed},{committed})"));
            }
            if committed == 1 {
                // Commit is PMO-last: the pair and the armed mark must
                // both be durable.
                if (k, v) != new {
                    return Err(format!(
                        "thread {i}: committed but pair is ({k},{v}) — \
                         PMO violation (commit before pair)"
                    ));
                }
                if armed != 1 {
                    return Err(format!(
                        "thread {i}: committed without the armed mark — \
                         PMO violation (commit before armed)"
                    ));
                }
            } else if armed == 1 {
                // In doubt: the log fields must be valid enough to undo.
                let ls = image.read_u64(self.a_log + i as u64 * 24);
                let lk = image.read_u64(self.a_log + i as u64 * 24 + 8);
                let lv = image.read_u64(self.a_log + i as u64 * 24 + 16);
                if (ls, lk, lv) != (slot, old.0, old.1) {
                    return Err(format!(
                        "thread {i}: armed log is corrupt ({ls},{lk},{lv}) — \
                         PMO violation (armed before fields)"
                    ));
                }
                let k_ok = k == old.0 || k == new.0;
                let v_ok = v == old.1 || v == new.1;
                if !k_ok || !v_ok {
                    return Err(format!(
                        "thread {i}: pair ({k},{v}) is neither old nor new bytes"
                    ));
                }
            } else {
                // Not armed: the pair must be untouched.
                if (k, v) != old {
                    return Err(format!(
                        "thread {i}: pair modified ({k},{v}) with an empty log — \
                         PMO violation (pair before log)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_a_permutation() {
        let g = Gpkvs::new(512, 9);
        let mut sorted = g.keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.len()).collect::<Vec<_>>());
    }

    #[test]
    fn kernels_build() {
        let g = Gpkvs::new(256, 1);
        for model in ModelKind::ALL {
            let opts = BuildOpts::for_model(model);
            assert!(g.kernel(opts).kernel.static_len() > 10);
            assert!(g.recovery(opts).is_some());
        }
    }

    #[test]
    fn value_functions_differ() {
        for k in [0u64, 1, 77, 1_000_000] {
            assert_ne!(new_value(k), old_value(k));
        }
    }
}
