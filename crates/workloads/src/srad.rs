//! SRAD — speckle-reducing anisotropic diffusion (§7.1).
//!
//! Each thread denoises one pixel in two steps: it computes a noise
//! coefficient from the pixel's neighbourhood and persists it, then
//! computes and persists the output pixel. Recovery is *native*: for
//! consistency, a pixel may only be persisted after its noise
//! coefficient (intra-thread PMO via `oFence`), so a restarted kernel
//! resumes from whatever persisted.
//!
//! The arithmetic is an integer stand-in for the SRAD stencil: the same
//! neighbourhood dependence and two-phase persist pattern, with a
//! `sleep` modelling the floating-point work. The paper notes SRAD's
//! behaviour is dominated by its bursty persist phase, which this
//! preserves.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

/// Sentinel for "not persisted yet".
pub const EMPTY: u64 = u64::MAX;

/// Cycles of simulated stencil arithmetic per pixel.
const COMPUTE_CYCLES: u32 = 40;

/// The SRAD workload over a square image.
#[derive(Debug)]
pub struct Srad {
    pixels: u64,
    side: u64,
    tpb: u32,
    image: Vec<u64>,
    a_img: u64,
    a_c: u64,
    a_out: u64,
}

impl Srad {
    /// Creates an instance over roughly `scale` pixels (a square image,
    /// padded to whole blocks).
    #[must_use]
    pub fn new(scale: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let side = ((scale as f64).sqrt() as u64).max(16);
        let mut pixels = side * side;
        // Round up to whole blocks.
        let rem = pixels % u64::from(tpb);
        if rem != 0 {
            pixels += u64::from(tpb) - rem;
        }
        let image: Vec<u64> = (0..pixels)
            .map(|p| p.wrapping_mul(2_654_435_761) % 256)
            .collect();
        let mut l = Layout::new();
        let a_img = l.gddr(pixels * 8);
        let a_c = l.nvm(pixels * 8);
        let a_out = l.nvm(pixels * 8);
        Srad {
            pixels,
            side,
            tpb,
            image,
            a_img,
            a_c,
            a_out,
        }
    }

    /// Number of pixels.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.pixels
    }

    /// Never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pixels == 0
    }

    fn blocks(&self) -> u32 {
        (self.pixels / u64::from(self.tpb)) as u32
    }

    /// The expected noise coefficient of pixel `p` (wrap-around
    /// neighbourhood in the flattened image).
    fn expected_c(&self, p: u64) -> u64 {
        let n = self.pixels;
        let l = self.image[((p + n - 1) % n) as usize];
        let r = self.image[((p + 1) % n) as usize];
        let u = self.image[((p + n - self.side) % n) as usize];
        let d = self.image[((p + self.side) % n) as usize];
        l.wrapping_add(r).wrapping_add(u).wrapping_add(d) / 4
    }

    /// The expected output pixel.
    fn expected_out(&self, p: u64) -> u64 {
        self.image[p as usize].wrapping_add(self.expected_c(p) >> 1)
    }
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "SRAD"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        let empty = EMPTY.to_le_bytes().repeat(self.pixels as usize);
        gpu.load_nvm(self.a_c, &empty);
        gpu.load_nvm(self.a_out, &empty);
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let bytes: Vec<u8> = self.image.iter().flat_map(|v| v.to_le_bytes()).collect();
        gpu.load_gddr(self.a_img, &bytes);
    }

    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_img,
            self.a_c,
            self.a_out,
            self.side,
            self.pixels,
        ]);
        let img = b.param(0);
        let carr = b.param(1);
        let out = b.param(2);
        let side = b.param(3);
        let npix = b.param(4);

        let p = b.special(Special::GlobalTid);
        let poff = b.muli(p, 8);
        let my_out = b.add(out, poff);
        let done = b.ld(my_out, 0, MemWidth::W8);
        let not_done = b.eqi(done, EMPTY);
        b.if_then(not_done, |b| {
            let my_c = b.add(carr, poff);
            let c_prev = b.ld(my_c, 0, MemWidth::W8);
            let have_c = b.nei(c_prev, EMPTY);
            let c = b.reg();
            b.if_then_else(
                have_c,
                |b| b.mov_to(c, c_prev),
                |b| {
                    // Wrap-around neighbourhood (avoids boundary branches).
                    let left_i = b.add(p, npix);
                    let left_i = b.subi(left_i, 1);
                    let left_i = b.rem(left_i, npix);
                    let right_i = b.addi(p, 1);
                    let right_i = b.rem(right_i, npix);
                    let up_i = b.add(p, npix);
                    let up_i = b.sub(up_i, side);
                    let up_i = b.rem(up_i, npix);
                    let down_i = b.add(p, side);
                    let down_i = b.rem(down_i, npix);

                    let lo = b.muli(left_i, 8);
                    let la = b.add(img, lo);
                    let lv = b.ld(la, 0, MemWidth::W8);
                    let ro = b.muli(right_i, 8);
                    let ra = b.add(img, ro);
                    let rv = b.ld(ra, 0, MemWidth::W8);
                    let uo = b.muli(up_i, 8);
                    let ua = b.add(img, uo);
                    let uv = b.ld(ua, 0, MemWidth::W8);
                    let dof = b.muli(down_i, 8);
                    let da = b.add(img, dof);
                    let dv = b.ld(da, 0, MemWidth::W8);

                    b.sleep(COMPUTE_CYCLES); // the stencil math
                    let s = b.add(lv, rv);
                    let s = b.add(s, uv);
                    let s = b.add(s, dv);
                    let cv = b.divi(s, 4);
                    b.mov_to(c, cv);
                    b.st(my_c, 0, c, MemWidth::W8);
                },
            );
            // The pixel may persist only after its noise coefficient.
            match opts.model {
                ModelKind::Sbrp => b.ofence(),
                ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
            }
            let ia = b.add(img, poff);
            let iv = b.ld(ia, 0, MemWidth::W8);
            let half_c = b.shri(c, 1);
            let o = b.add(iv, half_c);
            b.st(my_out, 0, o, MemWidth::W8);
        });

        Launchable {
            kernel: b.build("srad"),
            launch: LaunchConfig::new(self.blocks(), self.tpb),
        }
    }

    fn recovery(&self, _opts: BuildOpts) -> Option<Launchable> {
        None // native: re-run the kernel
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        for p in 0..self.pixels {
            let o = gpu.read_nvm_u64(self.a_out + p * 8);
            if o != self.expected_out(p) {
                return Err(format!(
                    "pixel {p}: out = {o}, expected {}",
                    self.expected_out(p)
                ));
            }
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        for p in 0..self.pixels {
            let c = image.read_u64(self.a_c + p * 8);
            let o = image.read_u64(self.a_out + p * 8);
            if c != EMPTY && c != self.expected_c(p) {
                return Err(format!("pixel {p}: bad noise coefficient {c}"));
            }
            if o != EMPTY {
                if o != self.expected_out(p) {
                    return Err(format!("pixel {p}: bad output {o}"));
                }
                // Intra-thread PMO: the pixel may not be durable before
                // its noise coefficient.
                if c == EMPTY {
                    return Err(format!(
                        "pixel {p}: output persisted before its noise value — PMO violation"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_rounds_to_blocks() {
        let s = Srad::new(1000);
        assert_eq!(s.len() % 256, 0);
        assert!(s.len() >= 961);
    }

    #[test]
    fn expected_math_is_self_consistent() {
        let s = Srad::new(300);
        let p = 17;
        assert_eq!(
            s.expected_out(p),
            s.image[p as usize] + (s.expected_c(p) >> 1)
        );
    }

    #[test]
    fn kernels_build() {
        let s = Srad::new(256);
        for model in ModelKind::ALL {
            assert!(s.kernel(BuildOpts::for_model(model)).kernel.static_len() > 20);
            assert!(s.recovery(BuildOpts::for_model(model)).is_none());
        }
    }
}
