//! Address-space layout helper.

use sbrp_gpu_sim::config::PM_BASE;

/// Bump allocator over the simulated address spaces: volatile (GDDR)
/// regions below [`PM_BASE`], persistent (NVM) regions above it. Plays
/// the role of the paper's PM allocation API / persistent namespace
/// table (§3, "Software model") — region addresses are stable across
/// crashes, so recovery kernels find their data by construction.
#[derive(Debug)]
pub struct Layout {
    gddr_next: u64,
    nvm_next: u64,
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

impl Layout {
    /// Alignment of every region (one cache line).
    pub const ALIGN: u64 = 128;

    /// Creates a fresh layout.
    #[must_use]
    pub fn new() -> Self {
        Layout {
            // Leave page zero unused to catch stray null derefs.
            gddr_next: 0x1_0000,
            nvm_next: PM_BASE + 0x1_0000,
        }
    }

    fn bump(cursor: &mut u64, bytes: u64) -> u64 {
        let aligned = (*cursor + Self::ALIGN - 1) & !(Self::ALIGN - 1);
        *cursor = aligned + bytes;
        aligned
    }

    /// Allocates a volatile region of `bytes`.
    pub fn gddr(&mut self, bytes: u64) -> u64 {
        Self::bump(&mut self.gddr_next, bytes)
    }

    /// Allocates a persistent region of `bytes`.
    pub fn nvm(&mut self, bytes: u64) -> u64 {
        Self::bump(&mut self.nvm_next, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrp_gpu_sim::config::is_pm;

    #[test]
    fn regions_are_disjoint_aligned_and_in_the_right_space() {
        let mut l = Layout::new();
        let a = l.gddr(100);
        let b = l.gddr(1);
        let p = l.nvm(4096);
        let q = l.nvm(8);
        assert!(!is_pm(a) && !is_pm(b));
        assert!(is_pm(p) && is_pm(q));
        assert_eq!(a % Layout::ALIGN, 0);
        assert_eq!(b % Layout::ALIGN, 0);
        assert!(b >= a + 100);
        assert!(q >= p + 4096);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut l1 = Layout::new();
        let mut l2 = Layout::new();
        assert_eq!(l1.nvm(64), l2.nvm(64));
        assert_eq!(l1.gddr(64), l2.gddr(64));
    }
}
