//! Microbenchmark kernels: minimal probes of the persist machinery.
//!
//! The six applications exercise the persistency models in aggregate;
//! these kernels isolate one mechanism each, for the Criterion suite and
//! the `microbench` harness binary:
//!
//! * [`Micro::PersistStorm`] — every thread persists one line's worth of
//!   data, no ordering: pure persist-path bandwidth.
//! * [`Micro::FenceChain`] — each thread alternates persist/`oFence` N
//!   times: intra-thread ordering latency (the §6.1 same-line stall is
//!   deliberately avoided by striding).
//! * [`Micro::SameLineRewrite`] — each warp rewrites one line across
//!   fences: the §6.1 stall-until-durable path.
//! * [`Micro::AcquirePingPong`] — two warps bounce a block-scoped
//!   release/acquire flag: scoped synchronization latency.
//! * [`Micro::CoalesceStress`] — all threads of a warp hammer the same
//!   lines between fences: PB coalescing effectiveness.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable};
use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_isa::{BinOp, KernelBuilder, LaunchConfig, MemWidth, Special};

/// The microbenchmark kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Micro {
    /// Unordered persist bandwidth.
    PersistStorm,
    /// persist → oFence chains (distinct lines).
    FenceChain,
    /// persist → oFence → persist to the *same* line.
    SameLineRewrite,
    /// Block-scoped release/acquire round trips between two warps.
    AcquirePingPong,
    /// Same-line stores from all lanes between fences.
    CoalesceStress,
}

impl Micro {
    /// All microbenchmarks.
    pub const ALL: [Micro; 5] = [
        Micro::PersistStorm,
        Micro::FenceChain,
        Micro::SameLineRewrite,
        Micro::AcquirePingPong,
        Micro::CoalesceStress,
    ];

    /// Short display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Micro::PersistStorm => "persist-storm",
            Micro::FenceChain => "fence-chain",
            Micro::SameLineRewrite => "same-line-rewrite",
            Micro::AcquirePingPong => "acquire-pingpong",
            Micro::CoalesceStress => "coalesce-stress",
        }
    }

    /// Builds the kernel for a model. `iters` controls per-thread work.
    #[must_use]
    #[allow(clippy::too_many_lines)] // one arm per microbenchmark
    pub fn kernel(self, opts: BuildOpts, iters: u64) -> Launchable {
        let mut l = Layout::new();
        let fence = |b: &mut KernelBuilder| match opts.model {
            ModelKind::Sbrp => b.ofence(),
            ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
        };
        match self {
            Micro::PersistStorm => {
                let arr = l.nvm(64 * 1024 * 128);
                let mut b = KernelBuilder::new();
                b.set_params(vec![arr, iters]);
                let arr = b.param(0);
                let n = b.param(1);
                let gtid = b.special(Special::GlobalTid);
                let i = b.movi(0);
                b.while_loop(
                    |b| b.lt(i, n),
                    |b| {
                        // Stride by the grid so lines are written once.
                        let nthreads = b.special(Special::NCta);
                        let ntid = b.special(Special::Ntid);
                        let total = b.mul(nthreads, ntid);
                        let idx = b.mul(i, total);
                        let idx = b.add(idx, gtid);
                        let off = b.muli(idx, 8);
                        let addr = b.add(arr, off);
                        b.st(addr, 0, gtid, MemWidth::W8);
                        let one = b.movi(1);
                        b.bin_to(BinOp::Add, i, one);
                    },
                );
                Launchable {
                    kernel: b.build("micro_persist_storm"),
                    launch: LaunchConfig::new(4, 256),
                }
            }
            Micro::FenceChain => {
                let arr = l.nvm(64 * 1024 * 128);
                let mut b = KernelBuilder::new();
                b.set_params(vec![arr, iters]);
                let arr = b.param(0);
                let n = b.param(1);
                let gtid = b.special(Special::GlobalTid);
                let i = b.movi(0);
                b.while_loop(
                    |b| b.lt(i, n),
                    |b| {
                        let nthreads = b.special(Special::NCta);
                        let ntid = b.special(Special::Ntid);
                        let total = b.mul(nthreads, ntid);
                        let idx = b.mul(i, total);
                        let idx = b.add(idx, gtid);
                        let off = b.muli(idx, 8);
                        let addr = b.add(arr, off);
                        b.st(addr, 0, gtid, MemWidth::W8);
                        fence(b);
                        let one = b.movi(1);
                        b.bin_to(BinOp::Add, i, one);
                    },
                );
                Launchable {
                    kernel: b.build("micro_fence_chain"),
                    launch: LaunchConfig::new(4, 256),
                }
            }
            Micro::SameLineRewrite => {
                // One line per warp, rewritten `iters` times with fences
                // between: every rewrite hits §6.1's stall path.
                let arr = l.nvm(1024 * 128);
                let mut b = KernelBuilder::new();
                b.set_params(vec![arr, iters]);
                let arr = b.param(0);
                let n = b.param(1);
                let cta = b.special(Special::CtaId);
                let warp = b.special(Special::WarpId);
                let lane = b.special(Special::Lane);
                let nwarps = {
                    let ntid = b.special(Special::Ntid);
                    b.shri(ntid, 5)
                };
                let gw = b.mul(cta, nwarps);
                let gw = b.add(gw, warp);
                let line_off = b.muli(gw, 128);
                let lane_off = b.muli(lane, 4);
                let addr = b.add(arr, line_off);
                let addr = b.add(addr, lane_off);
                let i = b.movi(0);
                b.while_loop(
                    |b| b.lt(i, n),
                    |b| {
                        b.st(addr, 0, i, MemWidth::W4);
                        fence(b);
                        let one = b.movi(1);
                        b.bin_to(BinOp::Add, i, one);
                    },
                );
                Launchable {
                    kernel: b.build("micro_same_line"),
                    launch: LaunchConfig::new(2, 128),
                }
            }
            Micro::AcquirePingPong => {
                let arr = l.nvm(64 * 128);
                let flags = l.gddr(256);
                let mut b = KernelBuilder::new();
                b.set_params(vec![arr, flags, iters]);
                let arr = b.param(0);
                let flags = b.param(1);
                let n = b.param(2);
                let warp = b.special(Special::WarpId);
                let lane = b.special(Special::Lane);
                let is_lane0 = b.eqi(lane, 0);
                let is_w0 = b.eqi(warp, 0);
                let other = b.eqi(warp, 1);
                let f0 = flags; // warp 0 releases f0
                let f1 = b.addi(flags, 4); // warp 1 releases f1
                let woff = b.muli(warp, 128);
                let waddr = b.add(arr, woff);
                let i = b.movi(0);
                b.while_loop(
                    |b| b.lt(i, n),
                    |b| {
                        let target = b.addi(i, 1);
                        b.if_then(is_w0, |b| {
                            b.st(waddr, 0, i, MemWidth::W8); // persist
                            b.if_then(is_lane0, |b| {
                                if opts.model == ModelKind::Sbrp {
                                    b.prel(f0, target, Scope::Block);
                                } else {
                                    b.epoch_barrier();
                                    b.st(f0, 0, target, MemWidth::W4);
                                }
                            });
                            // Wait for the pong.
                            b.while_loop(
                                |b| {
                                    let v = match opts.model {
                                        ModelKind::Sbrp => b.pacq(f1, Scope::Block),
                                        _ => b.ld_volatile(f1, 0, MemWidth::W4),
                                    };
                                    b.lt(v, target)
                                },
                                |_| {},
                            );
                        });
                        b.if_then(other, |b| {
                            // Wait for the ping, persist, pong back.
                            b.while_loop(
                                |b| {
                                    let v = match opts.model {
                                        ModelKind::Sbrp => b.pacq(f0, Scope::Block),
                                        _ => b.ld_volatile(f0, 0, MemWidth::W4),
                                    };
                                    b.lt(v, target)
                                },
                                |_| {},
                            );
                            b.st(waddr, 0, i, MemWidth::W8);
                            b.if_then(is_lane0, |b| {
                                if opts.model == ModelKind::Sbrp {
                                    b.prel(f1, target, Scope::Block);
                                } else {
                                    b.epoch_barrier();
                                    b.st(f1, 0, target, MemWidth::W4);
                                }
                            });
                        });
                        let one = b.movi(1);
                        b.bin_to(BinOp::Add, i, one);
                    },
                );
                Launchable {
                    kernel: b.build("micro_pingpong"),
                    launch: LaunchConfig::new(1, 64),
                }
            }
            Micro::CoalesceStress => {
                // All 32 lanes write 4-byte slots of the same line, then
                // fence, repeatedly: one PB entry per iteration if
                // coalescing works.
                let arr = l.nvm(1024 * 128);
                let mut b = KernelBuilder::new();
                b.set_params(vec![arr, iters]);
                let arr = b.param(0);
                let n = b.param(1);
                let cta = b.special(Special::CtaId);
                let warp = b.special(Special::WarpId);
                let lane = b.special(Special::Lane);
                let nwarps = {
                    let ntid = b.special(Special::Ntid);
                    b.shri(ntid, 5)
                };
                let gw = b.mul(cta, nwarps);
                let gw = b.add(gw, warp);
                let i = b.movi(0);
                b.while_loop(
                    |b| b.lt(i, n),
                    |b| {
                        // A fresh line per iteration per warp.
                        let total = b.mul(gw, n);
                        let li = b.add(total, i);
                        let loff = b.muli(li, 128);
                        let laneoff = b.muli(lane, 4);
                        let addr = b.add(arr, loff);
                        let addr = b.add(addr, laneoff);
                        b.st(addr, 0, lane, MemWidth::W4);
                        fence(b);
                        let one = b.movi(1);
                        b.bin_to(BinOp::Add, i, one);
                    },
                );
                Launchable {
                    kernel: b.build("micro_coalesce"),
                    launch: LaunchConfig::new(2, 128),
                }
            }
        }
    }
}

impl std::fmt::Display for Micro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_micros_build_for_all_models() {
        for m in Micro::ALL {
            for model in ModelKind::ALL {
                let l = m.kernel(BuildOpts::for_model(model), 4);
                assert!(l.kernel.static_len() > 3, "{m}/{model}");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Micro::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Micro::ALL.len());
    }
}
