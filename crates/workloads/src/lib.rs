//! # sbrp-workloads
//!
//! The six PM-aware GPU applications of the paper's Table 2, expressed in
//! the `sbrp-isa` kernel builder, with per-model kernel variants,
//! recovery kernels, and host-side verifiers:
//!
//! | App | Scoped PMO | Recovery |
//! |-----|------------|----------|
//! | gpKVS | intra-thread | WAL undo logging |
//! | Hashmap (HM, cuckoo) | intra-thread | logging |
//! | SRAD | intra-thread | native |
//! | Reduction | block/device inter-thread | native |
//! | Multiqueue | intra-thread + intra-block | logging |
//! | Scan | block inter-thread | native |
//!
//! Each workload builds **two kernel flavours** from the same logic:
//! under [`ModelKind::Sbrp`] it uses `oFence`/`dFence` and scoped
//! `pAcq`/`pRel`; under the GPM/Epoch baselines every ordering point
//! becomes an epoch barrier and synchronization falls back to plain
//! volatile flags (exactly how GPM programs were written). The
//! [`BuildOpts::demote_scopes`] knob converts block-scoped operations to
//! device scope for the Figure 7 scope/buffer breakdown.

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions, clippy::missing_panics_doc)]
// Element counts and lane indices are bounded by launch geometry;
// usize↔u64 conversions in the builders cannot truncate.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss
)]
// Kernel-builder code names virtual registers after the values they
// hold (`poff8`/`pparr`, `b` for the builder): short and systematically
// similar names are the local idiom, not an accident.
#![allow(clippy::similar_names, clippy::many_single_char_names)]

mod gpkvs;
mod hashmap;
mod layout;
pub mod micro;
mod multiqueue;
mod reduction;
mod scan;
pub mod service;
mod srad;

pub use gpkvs::Gpkvs;
pub use hashmap::Hashmap;
pub use layout::Layout;
pub use micro::Micro;
pub use multiqueue::Multiqueue;
pub use reduction::Reduction;
pub use scan::Scan;
pub use service::ServiceStore;
pub use srad::Srad;

use sbrp_core::ModelKind;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{Kernel, LaunchConfig};

/// How to build a workload's kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildOpts {
    /// The persistency model the kernel must target.
    pub model: ModelKind,
    /// Convert block-scoped `pAcq`/`pRel` to device scope (Fig. 7's
    /// scope-contribution experiment). Ignored by the baselines.
    pub demote_scopes: bool,
}

impl BuildOpts {
    /// Standard build for a model.
    #[must_use]
    pub fn for_model(model: ModelKind) -> Self {
        BuildOpts {
            model,
            demote_scopes: false,
        }
    }
}

/// A kernel plus its launch geometry.
#[derive(Clone, Debug)]
pub struct Launchable {
    /// The kernel.
    pub kernel: Kernel,
    /// Grid/block dimensions.
    pub launch: LaunchConfig,
}

/// One of the paper's applications, instantiated at a concrete size.
pub trait Workload {
    /// Display name (Table 2).
    fn name(&self) -> &'static str;

    /// Writes the initial NVM and GDDR images.
    fn init(&self, gpu: &mut Gpu);

    /// Re-writes only the *volatile* inputs (what a host would reload
    /// after a crash — persistent state comes from the durable image).
    fn init_volatile(&self, gpu: &mut Gpu);

    /// The main kernel for a model.
    fn kernel(&self, opts: BuildOpts) -> Launchable;

    /// The recovery kernel, if the workload uses one (logging-based
    /// recovery); natively-recoverable workloads re-run
    /// [`Workload::kernel`] instead.
    fn recovery(&self, opts: BuildOpts) -> Option<Launchable>;

    /// Verifies the final state of a crash-free run.
    ///
    /// # Errors
    /// Describes the first inconsistency found.
    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String>;

    /// Verifies a *durable image* is consistent (recoverable) — called
    /// on crash states before recovery.
    ///
    /// # Errors
    /// Describes the first inconsistency found.
    fn verify_crash_consistent(&self, image: &sbrp_gpu_sim::mem::Backing) -> Result<(), String>;
}

/// The six applications, for harness enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// GPU-accelerated persistent key-value store.
    Gpkvs,
    /// Cuckoo hashmap with undo logging.
    Hashmap,
    /// SRAD image denoising.
    Srad,
    /// Tree reduction (the paper's running example).
    Reduction,
    /// Per-block persistent queues with transactional batches.
    Multiqueue,
    /// Per-block inclusive scan.
    Scan,
}

impl WorkloadKind {
    /// All six, in Table 2 order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Gpkvs,
        WorkloadKind::Hashmap,
        WorkloadKind::Srad,
        WorkloadKind::Reduction,
        WorkloadKind::Multiqueue,
        WorkloadKind::Scan,
    ];

    /// Instantiates the workload at a size of roughly `scale` elements.
    #[must_use]
    pub fn instantiate(self, scale: u64, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Gpkvs => Box::new(Gpkvs::new(scale, seed)),
            WorkloadKind::Hashmap => Box::new(Hashmap::new(scale, seed)),
            WorkloadKind::Srad => Box::new(Srad::new(scale)),
            WorkloadKind::Reduction => Box::new(Reduction::new(scale, seed)),
            WorkloadKind::Multiqueue => Box::new(Multiqueue::new(scale, seed)),
            WorkloadKind::Scan => Box::new(Scan::new(scale, seed)),
        }
    }

    /// Short name used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Gpkvs => "gpKVS",
            WorkloadKind::Hashmap => "HM",
            WorkloadKind::Srad => "SRAD",
            WorkloadKind::Reduction => "Red",
            WorkloadKind::Multiqueue => "MQ",
            WorkloadKind::Scan => "Scan",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_instantiate() {
        for kind in WorkloadKind::ALL {
            let w = kind.instantiate(256, 42);
            assert!(!w.name().is_empty());
            let l = w.kernel(BuildOpts::for_model(ModelKind::Sbrp));
            assert!(l.kernel.static_len() > 0);
        }
    }

    #[test]
    fn labels_match_table_2() {
        let labels: Vec<_> = WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["gpKVS", "HM", "SRAD", "Red", "MQ", "Scan"]);
    }
}
