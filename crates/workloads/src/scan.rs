//! Scan — per-block inclusive prefix sums (§7.1).
//!
//! A Hillis–Steele scan over each block's sub-array, with the working
//! buffers on PM so the computation resumes after a crash. Every round
//! `r` reads round `r-1`'s buffer: a thread consuming a value produced
//! by *another warp* performs a **block-scoped acquire** on that warp's
//! round flag, and each warp **releases** its flag after persisting its
//! round output — the paper's intra-threadblock inter-thread PMO. The
//! block leader persists a per-block round counter (`pIter`) ordered
//! after all of the round's persists, which is the native recovery
//! resume point.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{BinOp, KernelBuilder, LaunchConfig, MemWidth, Reg, Special};

/// The scan workload.
#[derive(Debug)]
pub struct Scan {
    n: u64,
    tpb: u32,
    input: Vec<u64>,
    a_input: u64,
    a_ping: u64,
    a_pong: u64,
    a_flags: u64,
    a_iter: u64,
}

impl Scan {
    /// Creates a scan over roughly `scale` elements.
    #[must_use]
    pub fn new(scale: u64, seed: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let blocks = (scale.max(u64::from(tpb)) / u64::from(tpb)).max(1);
        let n = blocks * u64::from(tpb);
        let mut rng = SmallRng::seed_from_u64(seed);
        let input: Vec<u64> = (0..n).map(|_| rng.random_range(0..100u64)).collect();
        let mut l = Layout::new();
        let a_input = l.gddr(n * 8);
        let a_flags = l.gddr(blocks * u64::from(tpb / 32) * 4);
        let a_ping = l.nvm(n * 8);
        let a_pong = l.nvm(n * 8);
        let a_iter = l.nvm(blocks * 8);
        Scan {
            n,
            tpb,
            input,
            a_input,
            a_ping,
            a_pong,
            a_flags,
            a_iter,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn blocks(&self) -> u32 {
        (self.n / u64::from(self.tpb)) as u32
    }

    fn warps(&self) -> u64 {
        u64::from(self.tpb / 32)
    }

    /// Total rounds: round 0 copies the input; rounds 1..=log2(tpb)
    /// apply strides 1, 2, ..., tpb/2.
    fn rounds(&self) -> u64 {
        1 + u64::from(self.tpb.trailing_zeros())
    }

    /// The buffer round `r` writes into.
    fn buf_of(&self, r: u64) -> u64 {
        if r.is_multiple_of(2) {
            self.a_ping
        } else {
            self.a_pong
        }
    }

    /// Host replay: the values round `r` must produce for block `blk`.
    fn expected_round(&self, blk: u64, r: u64) -> Vec<u64> {
        let t = self.tpb as usize;
        let base = (blk * u64::from(self.tpb)) as usize;
        let mut v: Vec<u64> = self.input[base..base + t].to_vec();
        for round in 1..=r {
            let stride = 1usize << (round - 1);
            let prev = v.clone();
            for i in 0..t {
                v[i] = prev[i].wrapping_add(if i >= stride { prev[i - stride] } else { 0 });
            }
        }
        v
    }

    /// The final prefix sums for a block.
    fn expected_final(&self, blk: u64) -> Vec<u64> {
        self.expected_round(blk, self.rounds() - 1)
    }

    fn emit_release_value(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, value: Reg) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            Scope::Block
        };
        match opts.model {
            ModelKind::Sbrp => b.prel(flag_addr, value, scope),
            ModelKind::Epoch | ModelKind::Gpm => {
                b.epoch_barrier();
                b.st(flag_addr, 0, value, MemWidth::W4);
            }
        }
    }

    fn emit_acquire_ge(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, target: Reg) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            Scope::Block
        };
        b.while_loop(
            |b| {
                let v = match opts.model {
                    ModelKind::Sbrp => b.pacq(flag_addr, scope),
                    // GPM-style spins must bypass the non-coherent L1.
                    ModelKind::Epoch | ModelKind::Gpm => b.ld_volatile(flag_addr, 0, MemWidth::W4),
                };
                b.lt(v, target)
            },
            |_| {},
        );
    }
}

impl Workload for Scan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        gpu.load_nvm(self.a_ping, &vec![0u8; (self.n * 8) as usize]);
        gpu.load_nvm(self.a_pong, &vec![0u8; (self.n * 8) as usize]);
        gpu.load_nvm(
            self.a_iter,
            &vec![0u8; (u64::from(self.blocks()) * 8) as usize],
        );
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let bytes: Vec<u8> = self.input.iter().flat_map(|v| v.to_le_bytes()).collect();
        gpu.load_gddr(self.a_input, &bytes);
        let n = u64::from(self.blocks()) * self.warps() * 4;
        gpu.load_gddr(self.a_flags, &vec![0u8; n as usize]);
    }

    #[allow(clippy::too_many_lines)] // all scan rounds built inline
    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let rounds = self.rounds();
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_input,
            self.a_ping,
            self.a_pong,
            self.a_flags,
            self.a_iter,
            rounds,
        ]);
        let input = b.param(0);
        let ping = b.param(1);
        let pong = b.param(2);
        let flags = b.param(3);
        let iter = b.param(4);
        let nrounds = b.param(5);

        let blk = b.special(Special::CtaId);
        let tid = b.special(Special::Tid);
        let gtid = b.special(Special::GlobalTid);
        let ntid = b.special(Special::Ntid);
        let warp = b.special(Special::WarpId);
        let lane = b.special(Special::Lane);
        let nwarps = b.shri(ntid, 5);

        let goff8 = b.muli(gtid, 8);
        let f_off = b.mul(blk, nwarps);
        let f_off4 = b.muli(f_off, 4);
        let fbase = b.add(flags, f_off4);
        let my_iter_off = b.muli(blk, 8);
        let my_iter = b.add(iter, my_iter_off);

        // Resume point: completed rounds.
        let done = b.ld(my_iter, 0, MemWidth::W8);
        let r = b.reg();
        b.mov_to(r, done);

        // x = V_{done-1}[tid], or undefined if done == 0 (round 0 loads
        // the input itself).
        let x = b.reg();
        let resumed = b.gti(done, 0);
        b.if_then(resumed, |b| {
            let prev_r = b.subi(done, 1);
            let parity = b.andi(prev_r, 1);
            let prev_ping = b.add(ping, goff8);
            let prev_pong = b.add(pong, goff8);
            let src = b.select(parity, prev_pong, prev_ping);
            let v = b.ld(src, 0, MemWidth::W8);
            b.mov_to(x, v);
            // Re-prime the volatile round flags the crash destroyed:
            // rounds below `done` are durable (pIter proves it), so a
            // plain store suffices — without it, round `done`'s acquires
            // of pre-crash rounds would spin forever.
            let is_lane0 = b.eqi(lane, 0);
            b.if_then(is_lane0, |b| {
                let woff = b.muli(warp, 4);
                let faddr = b.add(fbase, woff);
                b.st(faddr, 0, done, MemWidth::W4);
            });
        });

        b.while_loop(
            |b| b.lt(r, nrounds),
            |b| {
                let is_round0 = b.eqi(r, 0);
                b.if_then_else(
                    is_round0,
                    |b| {
                        let ia = b.add(input, goff8);
                        let v = b.ld(ia, 0, MemWidth::W8);
                        b.mov_to(x, v);
                    },
                    |b| {
                        // stride = 1 << (r-1); consume V_{r-1}[tid-stride].
                        let rm1 = b.subi(r, 1);
                        let one = b.movi(1);
                        let stride = b.reg();
                        b.mov_to(stride, one);
                        b.bin_to(BinOp::Shl, stride, rm1);
                        let takes = b.ge(tid, stride);
                        b.if_then(takes, |b| {
                            // Acquire the producing warp's flag for r-1.
                            let src_tid = b.sub(tid, stride);
                            let src_warp = b.shri(src_tid, 5);
                            let woff = b.muli(src_warp, 4);
                            let faddr = b.add(fbase, woff);
                            Self::emit_acquire_ge(b, opts, faddr, r);
                            // Read V_{r-1}[src] from the r-1 buffer.
                            let parity = b.andi(rm1, 1);
                            let src_g = b.sub(gtid, stride);
                            let soff = b.muli(src_g, 8);
                            let sping = b.add(ping, soff);
                            let spong = b.add(pong, soff);
                            let saddr = b.select(parity, spong, sping);
                            let v = b.ld(saddr, 0, MemWidth::W8);
                            b.bin_to(BinOp::Add, x, v);
                        });
                    },
                );
                // Persist V_r[tid] into buf(r).
                let parity = b.andi(r, 1);
                let dping = b.add(ping, goff8);
                let dpong = b.add(pong, goff8);
                let daddr = b.select(parity, dpong, dping);
                b.st(daddr, 0, x, MemWidth::W8);

                // Lane 0 releases the warp's round flag.
                let done_count = b.addi(r, 1);
                let is_lane0 = b.eqi(lane, 0);
                b.if_then(is_lane0, |b| {
                    let woff = b.muli(warp, 4);
                    let faddr = b.add(fbase, woff);
                    Self::emit_release_value(b, opts, faddr, done_count);
                });

                // The leader orders pIter after the whole round.
                let is_leader = b.eqi(tid, 0);
                b.if_then(is_leader, |b| {
                    let w = b.movi(0);
                    b.while_loop(
                        |b| b.lt(w, nwarps),
                        |b| {
                            let woff = b.muli(w, 4);
                            let faddr = b.add(fbase, woff);
                            Self::emit_acquire_ge(b, opts, faddr, done_count);
                            let one = b.movi(1);
                            b.bin_to(BinOp::Add, w, one);
                        },
                    );
                    b.st(my_iter, 0, done_count, MemWidth::W8);
                });
                b.sync_block();
                let one = b.movi(1);
                b.bin_to(BinOp::Add, r, one);
            },
        );

        Launchable {
            kernel: b.build("scan"),
            launch: LaunchConfig::new(self.blocks(), self.tpb),
        }
    }

    fn recovery(&self, _opts: BuildOpts) -> Option<Launchable> {
        None // native: re-run resumes from pIter
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        let last = self.rounds() - 1;
        let buf = self.buf_of(last);
        for blk in 0..u64::from(self.blocks()) {
            let expected = self.expected_final(blk);
            let iter = gpu.read_nvm_u64(self.a_iter + blk * 8);
            if iter != self.rounds() {
                return Err(format!("block {blk}: pIter {iter} != {}", self.rounds()));
            }
            for t in 0..u64::from(self.tpb) {
                let g = blk * u64::from(self.tpb) + t;
                let v = gpu.read_nvm_u64(buf + g * 8);
                if v != expected[t as usize] {
                    return Err(format!(
                        "block {blk} elem {t}: {v} != {}",
                        expected[t as usize]
                    ));
                }
            }
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        // If pIter == c is durable, round c-1's buffer must be fully
        // durable and correct for the block — pIter is ordered after the
        // round's persists via the acquire chain.
        for blk in 0..u64::from(self.blocks()) {
            let c = image.read_u64(self.a_iter + blk * 8);
            if c > self.rounds() {
                return Err(format!("block {blk}: impossible pIter {c}"));
            }
            if c == 0 {
                continue;
            }
            let expected = self.expected_round(blk, c - 1);
            let buf = self.buf_of(c - 1);
            for t in 0..u64::from(self.tpb) {
                let g = blk * u64::from(self.tpb) + t;
                let v = image.read_u64(buf + g * 8);
                if v != expected[t as usize] {
                    return Err(format!(
                        "block {blk}: pIter={c} but round {} elem {t} is {v}, expected {} — \
                         PMO violation (marker before data)",
                        c - 1,
                        expected[t as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_replay_produces_prefix_sums() {
        let s = Scan::new(64, 11);
        let f = s.expected_final(0);
        let mut acc = 0u64;
        for (i, &v) in f.iter().enumerate() {
            acc = acc.wrapping_add(s.input[i]);
            assert_eq!(v, acc, "element {i}");
        }
    }

    #[test]
    fn rounds_cover_the_block() {
        let s = Scan::new(256, 1);
        assert_eq!(s.rounds(), 9); // copy + strides 1..128
    }

    #[test]
    fn kernels_build() {
        let s = Scan::new(256, 1);
        for model in ModelKind::ALL {
            assert!(s.kernel(BuildOpts::for_model(model)).kernel.static_len() > 30);
        }
    }
}
