//! Online-serving gpKVS — the request-serving counterpart of the batch
//! [`crate::Gpkvs`] workload (§7.1), built for the open-loop serving
//! harness (`sbrp-harness::serve`).
//!
//! The store is a PM-resident table of 8-byte values, **sharded** the
//! way a real gpKVS partitions its key space: key `k` lives in shard
//! `k % shards`, and each shard owns a contiguous slot range, so a
//! batch that touches many shards spreads across the table instead of
//! converging on one region. The serving harness forms batches of
//! get/put/delete requests, encodes them one-request-per-lane into a
//! volatile ops buffer, and launches [`ServiceStore::batch_kernel`];
//! every write is protected by a per-lane write-ahead **undo log** on
//! PM, ordered purely intra-thread (`oFence`, the gpKVS contract).
//!
//! Unlike the offline gpKVS batch, there is **no per-lane commit
//! mark**: kernel completion on `sbrp-sim` means every buffered persist
//! drained (the durable ack), so the ack itself is the batch-level
//! commit point. Recovery therefore rolls back *every* armed lane —
//! un-acked writes are undone wholesale and re-served by the harness —
//! which saves one fence + one persist per write relative to the
//! Fig. 4 transaction. The cost is a host contract: armed marks must be
//! cleared (host-side, durably) after each acked batch, or a crash in
//! batch *n+1* would undo lane writes acked in batch *n* using stale
//! logs.
//!
//! This module also owns the **request codecs**: the deterministic,
//! seeded arrival processes (Poisson and bursty interarrivals, Zipfian
//! key popularity) that make a serving experiment a pure function of
//! its parameters.

use crate::layout::Layout;
use crate::Launchable;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

/// Lane encoding: no request mapped to this lane.
pub const OP_NONE: u64 = 0;
/// Lane encoding: read the key's value into the results buffer.
pub const OP_GET: u64 = 1;
/// Lane encoding: WAL-protected write of the value (puts and deletes).
pub const OP_WRITE: u64 = 2;

/// The stored value that encodes "no value" — deletes write it, gets on
/// absent keys return it. Value generators never produce it.
pub const TOMBSTONE: u64 = u64::MAX;

/// Values keep their top bit clear so no generated value collides with
/// [`TOMBSTONE`].
const VALUE_MASK: u64 = (1 << 63) - 1;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The value key `k` holds before any request touches it.
#[must_use]
pub fn initial_value(key: u64) -> u64 {
    splitmix64(key ^ 0xA5A5_0000_0001) & VALUE_MASK
}

/// The value a put request with sequence number `seq` writes.
#[must_use]
pub fn request_value(seq: u64) -> u64 {
    splitmix64(seq ^ 0xC3C3_0000_0002) & VALUE_MASK
}

// ---------------------------------------------------------------------
// Request codecs: deterministic arrival processes
// ---------------------------------------------------------------------

/// Seeded deterministic RNG for trace generation (splitmix64 — the
/// repo-standard generator; no external entropy ever enters a trace).
struct TraceRng(u64);

impl TraceRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }

    /// Uniform in `(0, 1]` — the open lower bound keeps `ln` finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// Shape of the arrival process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Memoryless: exponential interarrival gaps at the configured rate.
    Poisson,
    /// On/off bursts: gaps inside a burst run at 4× the configured rate,
    /// separated by off-phases sized so the long-run mean rate is
    /// unchanged — same offered load, far worse queueing.
    Bursty,
}

impl ArrivalKind {
    /// CLI / report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

/// A request operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqOp {
    /// Read the key's current value.
    Get,
    /// Store a new value under the key.
    Put,
    /// Remove the key (stores [`TOMBSTONE`]).
    Delete,
}

/// One request of a serving trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Service-clock cycle the request enters the host queue.
    pub arrival: u64,
    /// What the request does.
    pub op: ReqOp,
    /// The key it touches.
    pub key: u64,
    /// The value a put writes ([`TOMBSTONE`] for deletes, 0 for gets).
    pub value: u64,
}

/// Parameters of a generated request trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceParams {
    /// Arrival-process shape.
    pub arrival: ArrivalKind,
    /// Offered rate in milli-requests per kilocycle (fixed-point ×1000,
    /// so `2000` = 2 requests per 1000 cycles; the mean interarrival gap
    /// is `1_000_000 / rate_milli` cycles).
    pub rate_milli: u64,
    /// Zipf skew θ ×1000 (`0` = uniform, `990` ≈ the classic 0.99).
    pub zipf_milli: u64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Key-space size (ranks map to keys identically; rank 0 is the
    /// hottest key).
    pub keys: u64,
    /// Trace seed.
    pub seed: u64,
}

/// Generates the full request trace for one serving run: a pure
/// function of [`TraceParams`], so jobs-1 and jobs-N sweeps (and
/// crash/recovery replays) observe the identical stream. Arrivals are
/// strictly increasing (gaps are at least one cycle).
///
/// # Panics
/// Panics if `rate_milli` or `keys` is zero.
#[must_use]
pub fn generate_trace(p: &TraceParams) -> Vec<Request> {
    assert!(p.rate_milli > 0, "zero offered rate");
    assert!(p.keys > 0, "empty key space");
    let mean_gap = 1_000_000.0 / p.rate_milli as f64;
    let zipf = ZipfSampler::new(p.keys, p.zipf_milli as f64 / 1000.0);
    let mut rng = TraceRng(splitmix64(p.seed ^ 0x5E11_CE00));
    let mut now = 0u64;
    let mut burst_left = 0u64;
    let mut reqs = Vec::with_capacity(p.requests as usize);
    let gap = |u: f64, mean: f64| ((-u.ln() * mean).round() as u64).max(1);
    for seq in 0..p.requests {
        let g = match p.arrival {
            ArrivalKind::Poisson => gap(rng.next_unit(), mean_gap),
            ArrivalKind::Bursty => {
                // Bursts of 16–47 arrivals at 4× rate; the off-phase
                // before each burst restores the long-run mean (a burst
                // of n requests at mean_gap/4 plus an off-gap with mean
                // 3n/4·mean_gap spans n·mean_gap in expectation).
                if burst_left == 0 {
                    burst_left = 16 + rng.next_u64() % 32;
                    now += gap(rng.next_unit(), mean_gap * 0.75 * burst_left as f64);
                }
                burst_left -= 1;
                gap(rng.next_unit(), mean_gap * 0.25)
            }
        };
        now += g;
        let key = zipf.sample(rng.next_unit());
        let (op, value) = match rng.next_u64() % 10 {
            0..=4 => (ReqOp::Get, 0),
            5..=8 => (ReqOp::Put, request_value(seq)),
            _ => (ReqOp::Delete, TOMBSTONE),
        };
        reqs.push(Request {
            arrival: now,
            op,
            key,
            value,
        });
    }
    reqs
}

/// Zipfian key popularity: rank `r` (0 = hottest) is drawn with weight
/// `1/(r+1)^θ`, via a precomputed cumulative table and binary search —
/// exact, deterministic, and O(log keys) per sample.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(keys: u64, theta: f64) -> Self {
        let mut cumulative = Vec::with_capacity(keys as usize);
        let mut total = 0.0;
        for rank in 0..keys {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, unit: f64) -> u64 {
        let target = unit * self.cumulative[self.cumulative.len() - 1];
        // partition_point: first rank whose cumulative weight reaches
        // the target.
        self.cumulative.partition_point(|&c| c < target) as u64
    }
}

// ---------------------------------------------------------------------
// The sharded persistent store and its kernels
// ---------------------------------------------------------------------

/// One lane of an encoded batch: [`OP_NONE`], [`OP_GET`], or
/// [`OP_WRITE`] with its key and (for writes) value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneOp {
    /// [`OP_NONE`] / [`OP_GET`] / [`OP_WRITE`].
    pub op: u64,
    /// Key the lane touches (ignored for [`OP_NONE`]).
    pub key: u64,
    /// Value an [`OP_WRITE`] stores ([`TOMBSTONE`] encodes a delete).
    pub value: u64,
}

impl LaneOp {
    /// An idle lane.
    #[must_use]
    pub fn none() -> Self {
        LaneOp {
            op: OP_NONE,
            key: 0,
            value: 0,
        }
    }
}

/// The sharded persistent KVS the serving harness drives: table layout,
/// per-batch kernels, and host-side encode/inspect helpers.
#[derive(Debug)]
pub struct ServiceStore {
    keys: u64,
    shards: u64,
    lanes: u64,
    tpb: u32,
    a_ops: u64,
    a_results: u64,
    a_table: u64,
    a_log: u64,
    a_armed: u64,
}

impl ServiceStore {
    /// Creates a store of at least `scale` keys spread over `shards`
    /// shards, serving batches of up to `batch` requests. The key count
    /// is rounded up to a multiple of the shard count so every shard
    /// owns the same number of slots.
    ///
    /// # Panics
    /// Panics if `shards` or `batch` is zero.
    #[must_use]
    pub fn new(scale: u64, shards: u64, batch: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(batch > 0, "need at least one lane");
        let keys = scale.max(1).div_ceil(shards) * shards;
        let tpb: u32 = if batch <= 32 {
            32
        } else if batch <= 128 {
            64
        } else {
            256
        };
        let lanes = u64::from(batch).div_ceil(u64::from(tpb)) * u64::from(tpb);
        let mut l = Layout::new();
        let a_ops = l.gddr(lanes * 24); // (op, key, value) per lane
        let a_results = l.gddr(lanes * 8);
        let a_table = l.nvm(keys * 8);
        let a_log = l.nvm(lanes * 16); // (key, old value) per lane
        let a_armed = l.nvm(lanes * 8);
        ServiceStore {
            keys,
            shards,
            lanes,
            tpb,
            a_ops,
            a_results,
            a_table,
            a_log,
            a_armed,
        }
    }

    /// Key-space size (table slots).
    #[must_use]
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Lanes per batch launch (the batch limit padded to full warps).
    #[must_use]
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// The table slot of a key: shard `key % shards` owns the
    /// contiguous range `[shard·keys/shards, (shard+1)·keys/shards)`,
    /// and the key's position inside it is `key / shards`.
    #[must_use]
    pub fn slot_of(&self, key: u64) -> u64 {
        let kps = self.keys / self.shards;
        (key % self.shards) * kps + key / self.shards
    }

    /// Writes the initial durable image: every key holds
    /// [`initial_value`], the log is empty, no lane is armed.
    pub fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        let mut table = vec![0u8; (self.keys * 8) as usize];
        for key in 0..self.keys {
            let off = (self.slot_of(key) * 8) as usize;
            table[off..off + 8].copy_from_slice(&initial_value(key).to_le_bytes());
        }
        gpu.load_nvm(self.a_table, &table);
        gpu.load_nvm(self.a_log, &vec![0u8; (self.lanes * 16) as usize]);
        self.clear_marks(gpu);
    }

    /// Re-writes the volatile buffers (ops + results) — what the host
    /// reloads after a crash; the table/log/marks come from the durable
    /// image.
    pub fn init_volatile(&self, gpu: &mut Gpu) {
        gpu.load_gddr(self.a_ops, &vec![0u8; (self.lanes * 24) as usize]);
        gpu.load_gddr(self.a_results, &vec![0u8; (self.lanes * 8) as usize]);
    }

    /// Encodes one batch into the ops buffer (unused lanes become
    /// [`OP_NONE`]) and zeroes the results buffer.
    ///
    /// # Panics
    /// Panics if the batch exceeds the lane count.
    pub fn encode_batch(&self, gpu: &mut Gpu, batch: &[LaneOp]) {
        assert!(batch.len() as u64 <= self.lanes, "batch exceeds lanes");
        let mut ops = vec![0u8; (self.lanes * 24) as usize];
        for (i, lane) in batch.iter().enumerate() {
            let off = i * 24;
            ops[off..off + 8].copy_from_slice(&lane.op.to_le_bytes());
            ops[off + 8..off + 16].copy_from_slice(&lane.key.to_le_bytes());
            ops[off + 16..off + 24].copy_from_slice(&lane.value.to_le_bytes());
        }
        gpu.load_gddr(self.a_ops, &ops);
        gpu.load_gddr(self.a_results, &vec![0u8; (self.lanes * 8) as usize]);
    }

    /// Durably clears every armed mark — the host's obligation after
    /// each acked batch (see the module docs: recovery rolls back *all*
    /// armed lanes, so marks from an acked batch must not survive into
    /// the next one). Host NVM writes land in both the functional and
    /// durable images, so this models a CPU-side persistent store +
    /// flush at zero simulated cost.
    pub fn clear_marks(&self, gpu: &mut Gpu) {
        gpu.load_nvm(self.a_armed, &vec![0u8; (self.lanes * 8) as usize]);
    }

    /// Reads the get-result a lane produced in the last batch.
    #[must_use]
    pub fn read_result(&self, gpu: &Gpu, lane: u64) -> u64 {
        gpu.read_u64(self.a_results + lane * 8)
    }

    /// Reads a key's current (functional) stored value.
    #[must_use]
    pub fn read_value(&self, gpu: &Gpu, key: u64) -> u64 {
        gpu.read_nvm_u64(self.a_table + self.slot_of(key) * 8)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new((self.lanes / u64::from(self.tpb)) as u32, self.tpb)
    }

    fn emit_fence(b: &mut KernelBuilder, model: ModelKind) {
        match model {
            ModelKind::Sbrp => b.ofence(),
            ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
        }
    }

    /// Emits `slot_of(key) * 8 + table_base` in kernel registers.
    fn emit_slot_addr(
        &self,
        b: &mut KernelBuilder,
        table: sbrp_isa::Reg,
        key: sbrp_isa::Reg,
    ) -> sbrp_isa::Reg {
        let kps = self.keys / self.shards;
        let shard = b.remi(key, self.shards);
        let idx = b.divi(key, self.shards);
        let base = b.muli(shard, kps);
        let slot = b.add(base, idx);
        let toff = b.muli(slot, 8);
        b.add(table, toff)
    }

    /// The per-batch serving kernel: one lane per (coalesced) request.
    /// Gets read the table into the results buffer; writes run the WAL
    /// sequence *log fields → fence → armed → fence → table* (no commit
    /// mark — the durable ack at kernel completion is the commit; see
    /// the module docs). The ops buffer is re-written by the host
    /// between launches, so lanes read it with volatile loads (L1 keeps
    /// state across sequential launches on the same GPU).
    #[must_use]
    pub fn batch_kernel(&self, model: ModelKind) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_ops,
            self.a_results,
            self.a_table,
            self.a_log,
            self.a_armed,
        ]);
        let ops = b.param(0);
        let results = b.param(1);
        let table = b.param(2);
        let log = b.param(3);
        let armed_r = b.param(4);

        let gtid = b.special(Special::GlobalTid);
        let ooff = b.muli(gtid, 24);
        let oaddr = b.add(ops, ooff);
        let goff8 = b.muli(gtid, 8);
        let op = b.ld_volatile(oaddr, 0, MemWidth::W8);

        let is_get = b.eqi(op, OP_GET);
        b.if_then(is_get, |b| {
            let key = b.ld_volatile(oaddr, 8, MemWidth::W8);
            let taddr = self.emit_slot_addr(b, table, key);
            let v = b.ld(taddr, 0, MemWidth::W8);
            let raddr = b.add(results, goff8);
            b.st(raddr, 0, v, MemWidth::W8);
        });

        let is_write = b.eqi(op, OP_WRITE);
        b.if_then(is_write, |b| {
            let key = b.ld_volatile(oaddr, 8, MemWidth::W8);
            let taddr = self.emit_slot_addr(b, table, key);
            let old = b.ld(taddr, 0, MemWidth::W8);
            let loff = b.muli(gtid, 16);
            let laddr = b.add(log, loff);
            // WAL: undo record persists before the lane is armed, the
            // armed mark persists before the table is overwritten.
            b.st(laddr, 0, key, MemWidth::W8);
            b.st(laddr, 8, old, MemWidth::W8);
            Self::emit_fence(b, model);
            let one = b.movi(1);
            let my_armed = b.add(armed_r, goff8);
            b.st(my_armed, 0, one, MemWidth::W8);
            Self::emit_fence(b, model);
            let val = b.ld_volatile(oaddr, 16, MemWidth::W8);
            b.st(taddr, 0, val, MemWidth::W8);
        });

        Launchable {
            kernel: b.build("service_batch"),
            launch: self.launch(),
        }
    }

    /// The recovery kernel: every armed lane is rolled back from its
    /// undo log (the batch never acked, so *all* of its writes are
    /// undone and the harness re-serves them), the restored table is
    /// made durable (`dFence`), and the mark is cleared.
    #[must_use]
    pub fn recovery_kernel(&self, model: ModelKind) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![self.a_table, self.a_log, self.a_armed]);
        let table = b.param(0);
        let log = b.param(1);
        let armed_r = b.param(2);

        let gtid = b.special(Special::GlobalTid);
        let goff8 = b.muli(gtid, 8);
        let my_armed = b.add(armed_r, goff8);
        let armed = b.ld(my_armed, 0, MemWidth::W8);
        let in_doubt = b.nei(armed, 0);
        b.if_then(in_doubt, |b| {
            let loff = b.muli(gtid, 16);
            let laddr = b.add(log, loff);
            let key = b.ld(laddr, 0, MemWidth::W8);
            let old = b.ld(laddr, 8, MemWidth::W8);
            let taddr = self.emit_slot_addr(b, table, key);
            b.st(taddr, 0, old, MemWidth::W8);
            // The restored value must be durable before the mark is
            // discarded (Fig. 4 line 13).
            match model {
                ModelKind::Sbrp => b.dfence(),
                ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
            }
            let zero = b.movi(0);
            b.st(my_armed, 0, zero, MemWidth::W8);
        });

        Launchable {
            kernel: b.build("service_recover"),
            launch: self.launch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(arrival: ArrivalKind, seed: u64) -> TraceParams {
        TraceParams {
            arrival,
            rate_milli: 2000,
            zipf_milli: 990,
            requests: 2000,
            keys: 256,
            seed,
        }
    }

    #[test]
    fn traces_are_deterministic_and_seed_sensitive() {
        for arrival in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let a = generate_trace(&params(arrival, 7));
            let b = generate_trace(&params(arrival, 7));
            assert_eq!(a, b, "{arrival:?} trace must be a pure function");
            let c = generate_trace(&params(arrival, 8));
            assert_ne!(a, c, "{arrival:?} trace must depend on the seed");
        }
    }

    #[test]
    fn arrivals_increase_and_mean_rate_is_close() {
        for arrival in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let reqs = generate_trace(&params(arrival, 42));
            assert!(reqs.windows(2).all(|w| w[1].arrival > w[0].arrival));
            // 2000 requests at 2 req/kcycle should span ~1M cycles.
            let span = reqs.last().unwrap().arrival as f64;
            let expected = 2000.0 * 500.0;
            assert!(
                (span / expected - 1.0).abs() < 0.25,
                "{arrival:?}: span {span} vs expected {expected}"
            );
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let reqs = generate_trace(&params(ArrivalKind::Poisson, 1));
        let hot = reqs.iter().filter(|r| r.key < 8).count();
        let cold = reqs.iter().filter(|r| r.key >= 248).count();
        assert!(
            hot > 8 * cold.max(1),
            "hot ranks {hot} should dominate cold {cold}"
        );
        // θ = 0 is uniform: the hottest 8 keys draw about 8/256 of it.
        let uniform = generate_trace(&TraceParams {
            zipf_milli: 0,
            ..params(ArrivalKind::Poisson, 1)
        });
        let hot_u = uniform.iter().filter(|r| r.key < 8).count();
        assert!(hot_u < hot / 4, "uniform hot {hot_u} vs zipf hot {hot}");
    }

    #[test]
    fn values_never_collide_with_the_tombstone() {
        for i in 0..10_000 {
            assert_ne!(initial_value(i), TOMBSTONE);
            assert_ne!(request_value(i), TOMBSTONE);
        }
    }

    #[test]
    fn slots_are_a_bijection_grouped_by_shard() {
        let s = ServiceStore::new(250, 8, 64);
        assert_eq!(s.keys() % s.shards(), 0);
        let mut seen = vec![false; s.keys() as usize];
        for key in 0..s.keys() {
            let slot = s.slot_of(key);
            assert!(!seen[slot as usize], "slot {slot} mapped twice");
            seen[slot as usize] = true;
            let kps = s.keys() / s.shards();
            assert_eq!(slot / kps, key % s.shards(), "key stays in its shard");
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn kernels_build_for_all_models() {
        let s = ServiceStore::new(256, 8, 48);
        assert_eq!(s.lanes() % 64, 0, "lanes pad to full blocks");
        for model in ModelKind::ALL {
            assert!(s.batch_kernel(model).kernel.static_len() > 10);
            assert!(s.recovery_kernel(model).kernel.static_len() > 10);
        }
    }
}
