//! Multiqueue (MQ) — per-threadblock persistent queues (§7.1).
//!
//! Each threadblock owns one PM-resident queue and inserts a series of
//! batches transactionally: every thread persists one entry of the
//! batch, lane 0 of each warp performs a **block-scoped release** of the
//! warp's flag, and the block leader **acquires** all warp flags before
//! committing the batch by logging the old tail and bumping the tail
//! (intra-thread PMO via `oFence`). Recovery requires a batch to be
//! all-or-nothing: an in-doubt transaction (`txn == 1`) rolls the tail
//! back to the logged value.
//!
//! Queue metadata layout per block (one line): `tail`, `logTail`, `txn`.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{BinOp, KernelBuilder, LaunchConfig, MemWidth, Reg, Special};

/// Batches inserted per queue.
const BATCHES: u64 = 4;

/// The value stored at queue position `idx` of block `blk`.
#[must_use]
pub fn entry_value(blk: u64, idx: u64) -> u64 {
    ((blk << 32) | idx).wrapping_mul(2_654_435_761)
}

/// The multiqueue workload.
#[derive(Debug)]
pub struct Multiqueue {
    blocks: u32,
    tpb: u32,
    a_entries: u64,
    a_meta: u64,
    a_flags: u64,
}

impl Multiqueue {
    /// Creates an instance inserting roughly `scale` entries in total
    /// (across all queues and batches). The seed is unused — contents
    /// are a deterministic function of position — but kept for interface
    /// symmetry.
    #[must_use]
    pub fn new(scale: u64, _seed: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let per_block = u64::from(tpb) * BATCHES;
        let blocks = (scale.max(per_block) / per_block).max(1) as u32;
        let mut l = Layout::new();
        let cap = u64::from(blocks) * per_block;
        let a_entries = l.nvm(cap * 8);
        let a_meta = l.nvm(u64::from(blocks) * 128);
        let a_flags = l.gddr(u64::from(blocks) * u64::from(tpb / 32) * 4);
        Multiqueue {
            blocks,
            tpb,
            a_entries,
            a_meta,
            a_flags,
        }
    }

    /// Total entries inserted when complete.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.tpb) * BATCHES
    }

    fn per_block(&self) -> u64 {
        u64::from(self.tpb) * BATCHES
    }

    fn warps(&self) -> u64 {
        u64::from(self.tpb / 32)
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, self.tpb)
    }

    fn emit_fence(b: &mut KernelBuilder, model: ModelKind) {
        match model {
            ModelKind::Sbrp => b.ofence(),
            ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
        }
    }

    /// Release `flag_addr = value` in the model's idiom.
    fn emit_release_value(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, value: Reg) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            Scope::Block
        };
        match opts.model {
            ModelKind::Sbrp => b.prel(flag_addr, value, scope),
            ModelKind::Epoch | ModelKind::Gpm => {
                b.epoch_barrier();
                b.st(flag_addr, 0, value, MemWidth::W4);
            }
        }
    }

    /// Spin until `*flag_addr >= target`.
    fn emit_acquire_ge(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, target: Reg) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            Scope::Block
        };
        b.while_loop(
            |b| {
                let v = match opts.model {
                    ModelKind::Sbrp => b.pacq(flag_addr, scope),
                    // GPM-style spins must bypass the non-coherent L1.
                    ModelKind::Epoch | ModelKind::Gpm => b.ld_volatile(flag_addr, 0, MemWidth::W4),
                };
                b.lt(v, target)
            },
            |_| {},
        );
    }
}

impl Workload for Multiqueue {
    fn name(&self) -> &'static str {
        "Multiqueue"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        gpu.load_nvm(
            self.a_entries,
            &vec![0u8; (self.total_entries() * 8) as usize],
        );
        gpu.load_nvm(
            self.a_meta,
            &vec![0u8; (u64::from(self.blocks) * 128) as usize],
        );
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let n = u64::from(self.blocks) * self.warps() * 4;
        gpu.load_gddr(self.a_flags, &vec![0u8; n as usize]);
    }

    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![self.a_entries, self.a_meta, self.a_flags, BATCHES]);
        let entries = b.param(0);
        let meta = b.param(1);
        let flags = b.param(2);
        let batches = b.param(3);

        let blk = b.special(Special::CtaId);
        let tid = b.special(Special::Tid);
        let ntid = b.special(Special::Ntid);
        let warp = b.special(Special::WarpId);
        let lane = b.special(Special::Lane);
        let nwarps = b.shri(ntid, 5);

        let blk_cap = b.mul(ntid, batches);
        let e_off = b.mul(blk, blk_cap);
        let e_off8 = b.muli(e_off, 8);
        let base_e = b.add(entries, e_off8);
        let m_off = b.muli(blk, 128);
        let maddr = b.add(meta, m_off);
        let f_off = b.mul(blk, nwarps);
        let f_off4 = b.muli(f_off, 4);
        let fbase = b.add(flags, f_off4);

        // Resume from the committed tail (multiple of ntid).
        let tail0 = b.ld(maddr, 0, MemWidth::W8);
        let bi = b.div(tail0, ntid);

        b.while_loop(
            |b| b.lt(bi, batches),
            |b| {
                // Persist this thread's entry of the batch.
                let idx = b.mul(bi, ntid);
                let idx = b.add(idx, tid);
                let tag = b.shli(blk, 32);
                let tag = b.add(tag, idx);
                let val = b.muli(tag, 2_654_435_761);
                let ioff = b.muli(idx, 8);
                let eaddr = b.add(base_e, ioff);
                b.st(eaddr, 0, val, MemWidth::W8);

                // Lane 0 releases the warp's flag with the batch count.
                let done_count = b.addi(bi, 1);
                let is_lane0 = b.eqi(lane, 0);
                b.if_then(is_lane0, |b| {
                    let woff = b.muli(warp, 4);
                    let faddr = b.add(fbase, woff);
                    let dc32 = b.andi(done_count, 0xffff_ffff);
                    Self::emit_release_value(b, opts, faddr, dc32);
                });

                // The leader acquires every warp's flag, then commits.
                let is_leader = b.eqi(tid, 0);
                b.if_then(is_leader, |b| {
                    let w = b.movi(0);
                    b.while_loop(
                        |b| b.lt(w, nwarps),
                        |b| {
                            let woff = b.muli(w, 4);
                            let faddr = b.add(fbase, woff);
                            Self::emit_acquire_ge(b, opts, faddr, done_count);
                            let one = b.movi(1);
                            b.bin_to(BinOp::Add, w, one);
                        },
                    );
                    // Transactional tail bump with undo logging.
                    let old_tail = b.mul(bi, ntid);
                    let new_tail = b.mul(done_count, ntid);
                    b.st(maddr, 8, old_tail, MemWidth::W8); // logTail
                    Self::emit_fence(b, opts.model);
                    let one = b.movi(1);
                    b.st(maddr, 16, one, MemWidth::W8); // txn = 1
                    Self::emit_fence(b, opts.model);
                    b.st(maddr, 0, new_tail, MemWidth::W8); // tail
                    Self::emit_fence(b, opts.model);
                    let zero = b.movi(0);
                    b.st(maddr, 16, zero, MemWidth::W8); // txn = 0
                });
                b.sync_block();
                let one = b.movi(1);
                b.bin_to(BinOp::Add, bi, one);
            },
        );

        Launchable {
            kernel: b.build("multiqueue_insert"),
            launch: self.launch(),
        }
    }

    fn recovery(&self, opts: BuildOpts) -> Option<Launchable> {
        // One warp per block; lane/tid 0 repairs the metadata.
        let mut b = KernelBuilder::new();
        b.set_params(vec![self.a_meta]);
        let meta = b.param(0);
        let blk = b.special(Special::CtaId);
        let tid = b.special(Special::Tid);
        let is_t0 = b.eqi(tid, 0);
        b.if_then(is_t0, |b| {
            let m_off = b.muli(blk, 128);
            let maddr = b.add(meta, m_off);
            let txn = b.ld(maddr, 16, MemWidth::W8);
            let in_doubt = b.eqi(txn, 1);
            b.if_then(in_doubt, |b| {
                // Roll back to the logged tail.
                let log_tail = b.ld(maddr, 8, MemWidth::W8);
                b.st(maddr, 0, log_tail, MemWidth::W8);
                match opts.model {
                    ModelKind::Sbrp => b.dfence(),
                    ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
                }
                let zero = b.movi(0);
                b.st(maddr, 16, zero, MemWidth::W8);
            });
        });
        Some(Launchable {
            kernel: b.build("multiqueue_recover"),
            launch: LaunchConfig::new(self.blocks, 32),
        })
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        for blk in 0..u64::from(self.blocks) {
            let maddr = self.a_meta + blk * 128;
            let tail = gpu.read_nvm_u64(maddr);
            let txn = gpu.read_nvm_u64(maddr + 16);
            if tail != self.per_block() {
                return Err(format!("queue {blk}: tail {tail} != {}", self.per_block()));
            }
            if txn != 0 {
                return Err(format!("queue {blk}: transaction still open"));
            }
            let base = self.a_entries + blk * self.per_block() * 8;
            for idx in 0..self.per_block() {
                let v = gpu.read_nvm_u64(base + idx * 8);
                if v != entry_value(blk, idx) {
                    return Err(format!("queue {blk}: entry {idx} = {v}"));
                }
            }
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        let t = u64::from(self.tpb);
        for blk in 0..u64::from(self.blocks) {
            let maddr = self.a_meta + blk * 128;
            let tail = image.read_u64(maddr);
            let log_tail = image.read_u64(maddr + 8);
            let txn = image.read_u64(maddr + 16);
            if txn > 1 {
                return Err(format!("queue {blk}: impossible txn {txn}"));
            }
            if !tail.is_multiple_of(t) || tail > self.per_block() {
                return Err(format!("queue {blk}: torn tail {tail}"));
            }
            // The committed prefix: everything below the tail (or the
            // logged tail while a transaction is in doubt) must be
            // durable and correct — the intra-block PMO at work.
            let committed = if txn == 1 {
                if !log_tail.is_multiple_of(t) || log_tail > self.per_block() {
                    return Err(format!(
                        "queue {blk}: in-doubt txn with torn logTail {log_tail} — \
                         PMO violation (txn before log)"
                    ));
                }
                log_tail.min(tail)
            } else {
                tail
            };
            let base = self.a_entries + blk * self.per_block() * 8;
            for idx in 0..committed {
                let v = image.read_u64(base + idx * 8);
                if v != entry_value(blk, idx) {
                    return Err(format!(
                        "queue {blk}: committed entry {idx} = {v} not durable — \
                         PMO violation (tail before entries)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_determines_blocks() {
        let mq = Multiqueue::new(2048, 0);
        assert_eq!(mq.total_entries(), 2048);
        assert_eq!(mq.blocks, 2);
    }

    #[test]
    fn kernels_build() {
        let mq = Multiqueue::new(256, 0);
        for model in ModelKind::ALL {
            let opts = BuildOpts::for_model(model);
            assert!(mq.kernel(opts).kernel.static_len() > 25);
            assert!(mq.recovery(opts).is_some());
        }
    }

    #[test]
    fn entry_values_are_position_unique() {
        assert_ne!(entry_value(0, 1), entry_value(1, 0));
        assert_ne!(entry_value(2, 3), entry_value(2, 4));
    }
}
