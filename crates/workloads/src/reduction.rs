//! Reduction — the paper's running example (§4, Fig. 2/3).
//!
//! The input array lives in GDDR; the per-thread partial sums (`pArr`),
//! per-block sums, and the final result live on NVM so the computation
//! can resume after a crash. Iterations halve the active threads: the
//! retiring half persists its partial sums and *releases* per-thread
//! flags at **block scope**; the surviving half *acquires* its partner's
//! flag before consuming the partner's persisted sum. Once a block
//! finishes, its leader publishes the block sum with a **device-scoped**
//! release; the last block (elected with an atomic counter) acquires all
//! block flags and persists the grand total (Fig. 3 line 24 — using
//! block scope here would be the §5.3 scoped persistency bug).
//!
//! Recovery is *native*: the same kernel consults `pArr` (initialized to
//! `EMPTY`) and resumes from whatever persisted, re-releasing the
//! volatile flags that the crash destroyed.

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{BinOp, KernelBuilder, LaunchConfig, MemWidth, Reg, Special};

/// Sentinel for "not yet persisted".
pub const EMPTY: u64 = u64::MAX;

/// The reduction workload at a fixed size.
#[derive(Debug)]
pub struct Reduction {
    n: u64,
    tpb: u32,
    input: Vec<u64>,
    // Layout (fixed for a given construction, stable across crashes).
    a_input: u64,
    a_parr: u64,
    a_flags: u64,
    a_blocksum: u64,
    a_blkflag: u64,
    a_ctr: u64,
    a_final: u64,
    a_islast: u64,
    a_scratch: u64,
}

impl Reduction {
    /// Creates a reduction over roughly `scale` elements (rounded to a
    /// whole number of blocks) with pseudo-random small inputs.
    #[must_use]
    pub fn new(scale: u64, seed: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let blocks = (scale.max(u64::from(tpb)) / u64::from(tpb)).max(1);
        let n = blocks * u64::from(tpb);
        let mut rng = SmallRng::seed_from_u64(seed);
        let input: Vec<u64> = (0..n).map(|_| rng.random_range(0..1000u64)).collect();
        let mut l = Layout::new();
        let a_input = l.gddr(n * 8);
        let a_flags = l.gddr(n * 4);
        let a_blkflag = l.gddr(blocks * 4);
        let a_ctr = l.gddr(8);
        let a_islast = l.gddr(blocks * 4);
        let a_scratch = l.gddr(u64::from(tpb) * 8);
        let a_parr = l.nvm(n * 8);
        let a_blocksum = l.nvm(blocks * 8);
        let a_final = l.nvm(16);
        Reduction {
            n,
            tpb,
            input,
            a_input,
            a_parr,
            a_flags,
            a_blocksum,
            a_blkflag,
            a_ctr,
            a_final,
            a_islast,
            a_scratch,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the instance is empty (never true; blocks ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn blocks(&self) -> u32 {
        (self.n / u64::from(self.tpb)) as u32
    }

    /// The grand total the kernel must produce.
    #[must_use]
    pub fn expected_total(&self) -> u64 {
        self.input.iter().sum()
    }

    /// Expected exit value of every thread (host replay of the tree),
    /// and per-block totals.
    fn expected_partials(&self) -> (Vec<u64>, Vec<u64>) {
        let t = self.tpb as usize;
        let mut exit_vals = vec![0u64; self.n as usize];
        let mut block_totals = Vec::new();
        for b in 0..self.blocks() as usize {
            let base = b * t;
            let mut vals: Vec<u64> = self.input[base..base + t].to_vec();
            let mut stride = t / 2;
            while stride >= 1 {
                exit_vals[base + stride..base + 2 * stride]
                    .copy_from_slice(&vals[stride..2 * stride]);
                for i in 0..stride {
                    vals[i] = vals[i].wrapping_add(vals[i + stride]);
                }
                stride /= 2;
            }
            exit_vals[base] = vals[0]; // thread 0 never retires; unused
            block_totals.push(vals[0]);
        }
        (exit_vals, block_totals)
    }

    /// Emits "release `flag_addr_reg` (already computed) with value 1"
    /// in the model's idiom.
    fn emit_release(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, scope: Scope) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            scope
        };
        match opts.model {
            ModelKind::Sbrp => {
                let one = b.movi(1);
                b.prel(flag_addr, one, scope);
            }
            ModelKind::Epoch | ModelKind::Gpm => {
                b.epoch_barrier();
                let one = b.movi(1);
                b.st(flag_addr, 0, one, MemWidth::W4);
            }
        }
    }

    /// Emits "spin until flag becomes non-zero" in the model's idiom.
    fn emit_acquire_spin(b: &mut KernelBuilder, opts: BuildOpts, flag_addr: Reg, scope: Scope) {
        let scope = if opts.demote_scopes {
            Scope::Device
        } else {
            scope
        };
        b.while_loop(
            |b| {
                let v = match opts.model {
                    ModelKind::Sbrp => b.pacq(flag_addr, scope),
                    // GPM-style spins must bypass the non-coherent L1.
                    ModelKind::Epoch | ModelKind::Gpm => b.ld_volatile(flag_addr, 0, MemWidth::W4),
                };
                b.eqi(v, 0)
            },
            |_| {},
        );
    }
}

impl Workload for Reduction {
    fn name(&self) -> &'static str {
        "Reduction"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        let empty = EMPTY.to_le_bytes().repeat(self.n as usize);
        gpu.load_nvm(self.a_parr, &empty);
        let bempty = EMPTY.to_le_bytes().repeat(self.blocks() as usize);
        gpu.load_nvm(self.a_blocksum, &bempty);
        gpu.load_nvm(self.a_final, &[0u8; 16]);
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let bytes: Vec<u8> = self.input.iter().flat_map(|v| v.to_le_bytes()).collect();
        gpu.load_gddr(self.a_input, &bytes);
        gpu.load_gddr(self.a_flags, &vec![0u8; (self.n * 4) as usize]);
        gpu.load_gddr(self.a_blkflag, &vec![0u8; (self.blocks() * 4) as usize]);
        gpu.load_gddr(self.a_ctr, &[0u8; 8]);
        gpu.load_gddr(self.a_islast, &vec![0u8; (self.blocks() * 4) as usize]);
        gpu.load_gddr(
            self.a_scratch,
            &vec![0u8; (u64::from(self.tpb) * 8) as usize],
        );
    }

    #[allow(clippy::too_many_lines)] // the tree + device phases inline
    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_input,
            self.a_parr,
            self.a_flags,
            self.a_blocksum,
            self.a_blkflag,
            self.a_ctr,
            self.a_final,
            self.a_islast,
            self.a_scratch,
        ]);
        let input = b.param(0);
        let parr = b.param(1);
        let flags = b.param(2);
        let blocksum = b.param(3);
        let blkflag = b.param(4);
        let ctr = b.param(5);
        let finalp = b.param(6);
        let islast = b.param(7);
        let scratch = b.param(8);

        let tid = b.special(Special::Tid);
        let gtid = b.special(Special::GlobalTid);
        let ntid = b.special(Special::Ntid);
        let ncta = b.special(Special::NCta);
        let cta = b.special(Special::CtaId);

        let goff8 = b.muli(gtid, 8);
        let my_parr = b.add(parr, goff8);
        let goff4 = b.muli(gtid, 4);
        let my_flag = b.add(flags, goff4);

        // Native recovery: resume from a persisted partial sum.
        let persisted = b.ld(my_parr, 0, MemWidth::W8);
        let have = b.nei(persisted, EMPTY);
        let my_input_addr = b.add(input, goff8);
        let fresh = b.ld(my_input_addr, 0, MemWidth::W8);
        let sum = b.select(have, persisted, fresh);

        let stride = b.shri(ntid, 1);
        b.while_loop(
            |b| b.gei(stride, 1),
            |b| {
                let ge_s = b.ge(tid, stride);
                let two_s = b.shli(stride, 1);
                let lt_2s = b.lt(tid, two_s);
                let in_upper = b.mul(ge_s, lt_2s);
                b.if_then(in_upper, |b| {
                    let not_have = b.eqi(have, 0);
                    b.if_then(not_have, |b| {
                        b.st(my_parr, 0, sum, MemWidth::W8);
                    });
                    Self::emit_release(b, opts, my_flag, Scope::Block);
                });
                let in_lower = b.lt(tid, stride);
                b.if_then(in_lower, |b| {
                    let partner = b.add(gtid, stride);
                    let poff4 = b.muli(partner, 4);
                    let pflag = b.add(flags, poff4);
                    Self::emit_acquire_spin(b, opts, pflag, Scope::Block);
                    let poff8 = b.muli(partner, 8);
                    let pparr = b.add(parr, poff8);
                    let pv = b.ld(pparr, 0, MemWidth::W8);
                    b.bin_to(BinOp::Add, sum, pv);
                });
                let one = b.movi(1);
                b.bin_to(BinOp::Shr, stride, one);
            },
        );

        // Block leader publishes the block sum at device scope, then the
        // last block (elected via an atomic counter) reduces the block
        // sums cooperatively — every thread strides over the blocks.
        let is_t0 = b.eqi(tid, 0);
        b.if_then(is_t0, |b| {
            let boff8 = b.muli(cta, 8);
            let my_bsum = b.add(blocksum, boff8);
            let existing = b.ld(my_bsum, 0, MemWidth::W8);
            let missing = b.eqi(existing, EMPTY);
            b.if_then(missing, |b| {
                b.st(my_bsum, 0, sum, MemWidth::W8);
            });
            let boff4 = b.muli(cta, 4);
            let my_bflag = b.add(blkflag, boff4);
            Self::emit_release(b, opts, my_bflag, Scope::Device);

            // Elect the last block to finish.
            let one = b.movi(1);
            let old = b.atom_add(ctr, one, MemWidth::W8);
            let last_needed = b.subi(ncta, 1);
            let is_last = b.eq(old, last_needed);
            b.if_then(is_last, |b| {
                let lo4 = b.muli(cta, 4);
                let my_islast = b.add(islast, lo4);
                let one = b.movi(1);
                b.st(my_islast, 0, one, MemWidth::W4);
            });
        });
        b.sync_block();
        let lo4 = b.muli(cta, 4);
        let my_islast = b.add(islast, lo4);
        let we_are_last = b.ld(my_islast, 0, MemWidth::W4);
        b.if_then(we_are_last, |b| {
            // Each thread accumulates a strided subset of block sums.
            let total_t = b.movi(0);
            let i = b.reg();
            b.mov_to(i, tid);
            b.while_loop(
                |b| b.lt(i, ncta),
                |b| {
                    let ioff4 = b.muli(i, 4);
                    let iflag = b.add(blkflag, ioff4);
                    Self::emit_acquire_spin(b, opts, iflag, Scope::Device);
                    let ioff8 = b.muli(i, 8);
                    let ibsum = b.add(blocksum, ioff8);
                    let v = b.ld(ibsum, 0, MemWidth::W8);
                    b.bin_to(BinOp::Add, total_t, v);
                    b.bin_to(BinOp::Add, i, ntid);
                },
            );
            let soff = b.muli(tid, 8);
            let my_scratch = b.add(scratch, soff);
            b.st(my_scratch, 0, total_t, MemWidth::W8);
            b.sync_block();
            let is_t0b = b.eqi(tid, 0);
            b.if_then(is_t0b, |b| {
                let valid = b.ld(finalp, 8, MemWidth::W8);
                let not_done = b.eqi(valid, 0);
                b.if_then(not_done, |b| {
                    let total = b.movi(0);
                    let j = b.movi(0);
                    b.while_loop(
                        |b| b.lt(j, ntid),
                        |b| {
                            let joff = b.muli(j, 8);
                            let jaddr = b.add(scratch, joff);
                            let v = b.ld(jaddr, 0, MemWidth::W8);
                            b.bin_to(BinOp::Add, total, v);
                            let one = b.movi(1);
                            b.bin_to(BinOp::Add, j, one);
                        },
                    );
                    b.st(finalp, 0, total, MemWidth::W8);
                    match opts.model {
                        ModelKind::Sbrp => b.ofence(),
                        ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
                    }
                    let one = b.movi(1);
                    b.st(finalp, 8, one, MemWidth::W8);
                });
            });
        });

        Launchable {
            kernel: b.build("reduction"),
            launch: LaunchConfig::new(self.blocks(), self.tpb),
        }
    }

    fn recovery(&self, _opts: BuildOpts) -> Option<Launchable> {
        None // native: re-run the main kernel on the recovered image
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        let valid = gpu.read_nvm_u64(self.a_final + 8);
        if valid != 1 {
            return Err(format!("final valid flag is {valid}, expected 1"));
        }
        let total = gpu.read_nvm_u64(self.a_final);
        let expected = self.expected_total();
        if total != expected {
            return Err(format!("final sum {total} != expected {expected}"));
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        let (exit_vals, block_totals) = self.expected_partials();
        for g in 0..self.n {
            let v = image.read_u64(self.a_parr + g * 8);
            if v != EMPTY && v != exit_vals[g as usize] {
                return Err(format!(
                    "pArr[{g}] = {v} is neither EMPTY nor the expected partial {}",
                    exit_vals[g as usize]
                ));
            }
        }
        for bid in 0..u64::from(self.blocks()) {
            let v = image.read_u64(self.a_blocksum + bid * 8);
            if v != EMPTY && v != block_totals[bid as usize] {
                return Err(format!(
                    "blockSum[{bid}] = {v} != expected {}",
                    block_totals[bid as usize]
                ));
            }
        }
        let valid = image.read_u64(self.a_final + 8);
        if valid == 1 {
            let total = image.read_u64(self.a_final);
            let expected = self.expected_total();
            if total != expected {
                return Err(format!(
                    "final marked valid but sum {total} != expected {expected}"
                ));
            }
        } else if valid != 0 {
            return Err(format!("final valid flag is {valid}, expected 0 or 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_round_to_blocks() {
        let r = Reduction::new(1000, 1);
        assert_eq!(r.len() % 256, 0);
        let small = Reduction::new(10, 1);
        assert_eq!(small.len(), 64);
    }

    #[test]
    fn host_replay_partials_sum_up() {
        let r = Reduction::new(512, 7);
        let (_, blocks) = r.expected_partials();
        assert_eq!(blocks.iter().sum::<u64>(), r.expected_total());
    }

    #[test]
    fn kernels_build_for_all_models() {
        let r = Reduction::new(256, 3);
        for model in ModelKind::ALL {
            let l = r.kernel(BuildOpts::for_model(model));
            assert!(l.kernel.static_len() > 20);
            assert_eq!(l.launch.blocks, 1);
        }
    }

    #[test]
    fn demoted_build_differs() {
        let r = Reduction::new(256, 3);
        let normal = r.kernel(BuildOpts::for_model(ModelKind::Sbrp));
        let demoted = r.kernel(BuildOpts {
            model: ModelKind::Sbrp,
            demote_scopes: true,
        });
        assert_ne!(normal.kernel.program(), demoted.kernel.program());
    }
}
