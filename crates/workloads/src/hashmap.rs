//! Hashmap (HM) — cuckoo-hashing batch inserts with undo logging (§7.1).
//!
//! Each thread inserts one key whose primary slot (`h1`) is occupied,
//! displacing the resident entry to its alternate slot (`h2`) — the
//! single-displacement cuckoo path. Both writes are guarded by a
//! per-thread undo log with intra-thread PMO:
//!
//! ```text
//! log = {s1, victim, s2}; oFence; log.state = ARMED; oFence;
//! table[s2] = victim;  oFence;  table[s1] = new;  oFence;
//! log.state = COMMITTED
//! ```
//!
//! The host pre-computes a conflict-free assignment (distinct `s1`,
//! distinct empty `s2`), as GPU cuckoo implementations achieve with
//! cooperative batch construction [Alcantara et al.].

use crate::layout::Layout;
use crate::{BuildOpts, Launchable, Workload};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::mem::Backing;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LOG_EMPTY: u64 = 0;
const LOG_ARMED: u64 = 1;
/// Key marking an unoccupied table slot.
const SLOT_EMPTY: u64 = u64::MAX;

/// Value stored for an original (victim) key.
#[must_use]
pub fn victim_value(key: u64) -> u64 {
    key.wrapping_mul(11_400_714_819_323_198_485).wrapping_add(3)
}

/// Value stored for a newly inserted key.
#[must_use]
pub fn insert_value(key: u64) -> u64 {
    key.wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695)
}

/// The cuckoo-hashmap workload.
#[derive(Debug)]
pub struct Hashmap {
    inserts: u64,
    tpb: u32,
    /// Per thread: the new key; its primary slot is `perm[i]` and the
    /// displaced victim goes to `slots + perm[i]`.
    new_keys: Vec<u64>,
    /// Permutation assigning thread i its primary slot.
    perm: Vec<u64>,
    a_input: u64,
    a_table: u64,
    a_log: u64,
    a_armed: u64,
    a_commit: u64,
}

impl Hashmap {
    /// Creates a batch of roughly `scale` inserts into a `2×scale`-slot
    /// table.
    #[must_use]
    pub fn new(scale: u64, seed: u64) -> Self {
        let tpb: u32 = if scale >= 256 { 256 } else { 64 };
        let blocks = (scale.max(u64::from(tpb)) / u64::from(tpb)).max(1);
        let inserts = blocks * u64::from(tpb);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Block-partitioned assignment (hash-sharded batch): each block's
        // threads displace victims within the block's own slot range.
        let mut perm: Vec<u64> = (0..inserts).collect();
        for chunk in perm.chunks_mut(tpb as usize) {
            chunk.shuffle(&mut rng);
        }
        let new_keys: Vec<u64> = (0..inserts).map(|i| inserts + perm[i as usize]).collect();
        let mut l = Layout::new();
        // Per thread input record: (new_key, s1, s2) — 24 bytes.
        let a_input = l.gddr(inserts * 24);
        let a_table = l.nvm(inserts * 2 * 16);
        // Append-style log: fields, armed marks, and commit marks live in
        // separate regions so fence-separated writes never rewrite a line.
        let a_log = l.nvm(inserts * 32); // s1, vk, vv, s2
        let a_armed = l.nvm(inserts * 8);
        let a_commit = l.nvm(inserts * 8);
        Hashmap {
            inserts,
            tpb,
            new_keys,
            perm,
            a_input,
            a_table,
            a_log,
            a_armed,
            a_commit,
        }
    }

    /// Number of inserts.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.inserts
    }

    /// Never empty (at least one block).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts == 0
    }

    fn blocks(&self) -> u32 {
        (self.inserts / u64::from(self.tpb)) as u32
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks(), self.tpb)
    }

    fn s1(&self, i: usize) -> u64 {
        self.perm[i]
    }

    fn s2(&self, i: usize) -> u64 {
        self.inserts + self.perm[i]
    }

    fn emit_fence(b: &mut KernelBuilder, model: ModelKind) {
        match model {
            ModelKind::Sbrp => b.ofence(),
            ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
        }
    }
}

impl Workload for Hashmap {
    fn name(&self) -> &'static str {
        "Hashmap"
    }

    fn init(&self, gpu: &mut Gpu) {
        self.init_volatile(gpu);
        // Lower half of the table occupied by victims (key = slot index),
        // upper half empty.
        let mut table = Vec::with_capacity((self.inserts * 2 * 16) as usize);
        for slot in 0..self.inserts {
            table.extend_from_slice(&slot.to_le_bytes());
            table.extend_from_slice(&victim_value(slot).to_le_bytes());
        }
        for _ in 0..self.inserts {
            table.extend_from_slice(&SLOT_EMPTY.to_le_bytes());
            table.extend_from_slice(&0u64.to_le_bytes());
        }
        gpu.load_nvm(self.a_table, &table);
        gpu.load_nvm(self.a_log, &vec![0u8; (self.inserts * 32) as usize]);
        gpu.load_nvm(self.a_armed, &vec![0u8; (self.inserts * 8) as usize]);
        gpu.load_nvm(self.a_commit, &vec![0u8; (self.inserts * 8) as usize]);
    }

    fn init_volatile(&self, gpu: &mut Gpu) {
        let mut input = Vec::with_capacity((self.inserts * 24) as usize);
        for i in 0..self.inserts as usize {
            input.extend_from_slice(&self.new_keys[i].to_le_bytes());
            input.extend_from_slice(&self.s1(i).to_le_bytes());
            input.extend_from_slice(&self.s2(i).to_le_bytes());
        }
        gpu.load_gddr(self.a_input, &input);
    }

    fn kernel(&self, opts: BuildOpts) -> Launchable {
        let mut b = KernelBuilder::new();
        b.set_params(vec![
            self.a_input,
            self.a_table,
            self.a_log,
            self.a_armed,
            self.a_commit,
        ]);
        let input = b.param(0);
        let table = b.param(1);
        let log = b.param(2);
        let armed_r = b.param(3);
        let commit_r = b.param(4);

        let gtid = b.special(Special::GlobalTid);
        let ioff = b.muli(gtid, 24);
        let iaddr = b.add(input, ioff);
        let key = b.ld(iaddr, 0, MemWidth::W8);
        let s1 = b.ld(iaddr, 8, MemWidth::W8);
        let s2 = b.ld(iaddr, 16, MemWidth::W8);

        let goff8 = b.muli(gtid, 8);
        let loff = b.muli(gtid, 32);
        let laddr = b.add(log, loff);
        let my_armed = b.add(armed_r, goff8);
        let my_commit = b.add(commit_r, goff8);
        let committed = b.ld(my_commit, 0, MemWidth::W8);
        let not_committed = b.eqi(committed, 0);
        b.if_then(not_committed, |b| {
            let t1off = b.muli(s1, 16);
            let t1 = b.add(table, t1off);
            let t2off = b.muli(s2, 16);
            let t2 = b.add(table, t2off);
            let vk = b.ld(t1, 0, MemWidth::W8);
            let vv = b.ld(t1, 8, MemWidth::W8);
            // Idempotence on recovery re-runs: if the commit mark was
            // lost but the insert already landed, the "victim" read back
            // is the new key itself — re-displacing it would destroy the
            // real victim. (Cannot happen mid-run: the commit mark is
            // PMO-ordered after the pair.)
            let fresh = b.ne(vk, key);
            b.if_then(fresh, |b| {
                // Log the displacement.
                b.st(laddr, 0, s1, MemWidth::W8);
                b.st(laddr, 8, vk, MemWidth::W8);
                b.st(laddr, 16, vv, MemWidth::W8);
                b.st(laddr, 24, s2, MemWidth::W8);
                Self::emit_fence(b, opts.model);
                let armed = b.movi(LOG_ARMED);
                b.st(my_armed, 0, armed, MemWidth::W8);
                Self::emit_fence(b, opts.model);

                // Move the victim to its alternate slot.
                b.st(t2, 0, vk, MemWidth::W8);
                b.st(t2, 8, vv, MemWidth::W8);
                Self::emit_fence(b, opts.model);

                // Install the new pair in the primary slot.
                let nv = b.muli(key, 6_364_136_223_846_793_005);
                let nv = b.addi(nv, 1_442_695);
                b.st(t1, 0, key, MemWidth::W8);
                b.st(t1, 8, nv, MemWidth::W8);
                Self::emit_fence(b, opts.model);

                let cm = b.movi(1);
                b.st(my_commit, 0, cm, MemWidth::W8);
            });
        });

        Launchable {
            kernel: b.build("hashmap_insert"),
            launch: self.launch(),
        }
    }

    fn recovery(&self, opts: BuildOpts) -> Option<Launchable> {
        let mut b = KernelBuilder::new();
        b.set_params(vec![self.a_table, self.a_log, self.a_armed, self.a_commit]);
        let table = b.param(0);
        let log = b.param(1);
        let armed_r = b.param(2);
        let commit_r = b.param(3);
        let gtid = b.special(Special::GlobalTid);
        let goff8 = b.muli(gtid, 8);
        let loff = b.muli(gtid, 32);
        let laddr = b.add(log, loff);
        let my_armed = b.add(armed_r, goff8);
        let my_commit = b.add(commit_r, goff8);
        let armed_v = b.ld(my_armed, 0, MemWidth::W8);
        let commit_v = b.ld(my_commit, 0, MemWidth::W8);

        let is_armed = b.eqi(armed_v, LOG_ARMED);
        let not_committed = b.eqi(commit_v, 0);
        let armed = b.mul(is_armed, not_committed);
        b.if_then(armed, |b| {
            // Undo: restore the victim to s1, clear s2.
            let s1 = b.ld(laddr, 0, MemWidth::W8);
            let vk = b.ld(laddr, 8, MemWidth::W8);
            let vv = b.ld(laddr, 16, MemWidth::W8);
            let s2 = b.ld(laddr, 24, MemWidth::W8);
            let t1off = b.muli(s1, 16);
            let t1 = b.add(table, t1off);
            let t2off = b.muli(s2, 16);
            let t2 = b.add(table, t2off);
            b.st(t1, 0, vk, MemWidth::W8);
            b.st(t1, 8, vv, MemWidth::W8);
            let empty = b.movi(SLOT_EMPTY);
            let zero = b.movi(0);
            b.st(t2, 0, empty, MemWidth::W8);
            b.st(t2, 8, zero, MemWidth::W8);
        });
        let touched = b.nei(armed_v, LOG_EMPTY);
        b.if_then(touched, |b| {
            match opts.model {
                ModelKind::Sbrp => b.dfence(),
                ModelKind::Epoch | ModelKind::Gpm => b.epoch_barrier(),
            }
            let empty = b.movi(LOG_EMPTY);
            b.st(my_armed, 0, empty, MemWidth::W8);
        });

        Some(Launchable {
            kernel: b.build("hashmap_recover"),
            launch: self.launch(),
        })
    }

    fn verify_complete(&self, gpu: &Gpu) -> Result<(), String> {
        for i in 0..self.inserts as usize {
            let key = self.new_keys[i];
            let (s1, s2) = (self.s1(i), self.s2(i));
            let k1 = gpu.read_nvm_u64(self.a_table + s1 * 16);
            let v1 = gpu.read_nvm_u64(self.a_table + s1 * 16 + 8);
            if k1 != key || v1 != insert_value(key) {
                return Err(format!("insert {i}: slot {s1} holds ({k1},{v1})"));
            }
            let k2 = gpu.read_nvm_u64(self.a_table + s2 * 16);
            let v2 = gpu.read_nvm_u64(self.a_table + s2 * 16 + 8);
            if k2 != s1 || v2 != victim_value(s1) {
                return Err(format!("insert {i}: victim not at slot {s2}: ({k2},{v2})"));
            }
        }
        Ok(())
    }

    fn verify_crash_consistent(&self, image: &Backing) -> Result<(), String> {
        for i in 0..self.inserts as usize {
            let key = self.new_keys[i];
            let (s1, s2) = (self.s1(i), self.s2(i));
            let armed = image.read_u64(self.a_armed + i as u64 * 8);
            let committed = image.read_u64(self.a_commit + i as u64 * 8);
            let k1 = image.read_u64(self.a_table + s1 * 16);
            let v1 = image.read_u64(self.a_table + s1 * 16 + 8);
            let k2 = image.read_u64(self.a_table + s2 * 16);
            if armed > 1 || committed > 1 {
                return Err(format!("insert {i}: torn marks ({armed},{committed})"));
            }
            if committed == 1 {
                if (k1, v1) != (key, insert_value(key)) {
                    return Err(format!(
                        "insert {i}: committed but s1 holds ({k1},{v1}) — PMO violation"
                    ));
                }
                if k2 != s1 {
                    return Err(format!(
                        "insert {i}: committed but victim missing from s2 — PMO violation"
                    ));
                }
            } else if armed == 1 {
                let ls1 = image.read_u64(self.a_log + i as u64 * 32);
                let lvk = image.read_u64(self.a_log + i as u64 * 32 + 8);
                let ls2 = image.read_u64(self.a_log + i as u64 * 32 + 24);
                if (ls1, lvk, ls2) != (s1, s1, s2) {
                    return Err(format!("insert {i}: armed log corrupt — PMO violation"));
                }
                // Any intermediate table state is fine: the log can undo.
            } else {
                if (k1, v1) != (s1, victim_value(s1)) {
                    return Err(format!(
                        "insert {i}: s1 modified with empty log — PMO violation"
                    ));
                }
                if k2 != SLOT_EMPTY {
                    return Err(format!(
                        "insert {i}: s2 written with empty log — PMO violation"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint() {
        let h = Hashmap::new(300, 5);
        let mut all: Vec<u64> = (0..h.len() as usize)
            .flat_map(|i| [h.s1(i), h.s2(i)])
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, 2 * h.len());
    }

    #[test]
    fn kernels_build() {
        let h = Hashmap::new(64, 2);
        for model in ModelKind::ALL {
            let opts = BuildOpts::for_model(model);
            assert!(h.kernel(opts).kernel.static_len() > 15);
            assert!(h.recovery(opts).is_some());
        }
    }
}
