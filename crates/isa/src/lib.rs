//! # sbrp-isa
//!
//! A small, structured SIMT instruction set used to express the paper's
//! GPU kernels without a CUDA toolchain.
//!
//! The ISA is deliberately minimal but covers everything the six
//! workloads of the paper (Table 2) need:
//!
//! * 64-bit integer ALU operations over per-thread registers;
//! * special registers (`tid`, `ctaid`, `ntid`, `nctaid`, lane/warp ids);
//! * volatile and persistent loads/stores (persistence is an address
//!   range property, as in Intel's app-direct mode, §3);
//! * `atomAdd` (performed at the L2, volatile addresses only);
//! * block-wide `__syncthreads`;
//! * the persistency operations: `oFence`, `dFence`, scoped
//!   `pAcq`/`pRel`, and the GPM/Epoch `epochBarrier`.
//!
//! Control flow is *structured* (`if`/`while` statement trees rather than
//! a CFG), which lets the per-warp interpreter handle SIMT divergence
//! with nothing more than nested active masks — no immediate
//! post-dominator analysis.
//!
//! [`KernelBuilder`] is the ergonomic way to write kernels;
//! [`WarpInterp`] executes one warp in lockstep, yielding memory/fence
//! actions to the timing simulator and resuming when they complete.
//!
//! ```
//! use sbrp_isa::{KernelBuilder, MemWidth, Special};
//!
//! // out[tid] = a[tid] + 1
//! let mut b = KernelBuilder::new();
//! let a = b.param(0);
//! let out = b.param(1);
//! let tid = b.special(Special::GlobalTid);
//! let off = b.muli(tid, 8);
//! let pa = b.add(a, off);
//! let v = b.ld(pa, 0, MemWidth::W8);
//! let v1 = b.addi(v, 1);
//! let po = b.add(out, off);
//! b.st(po, 0, v1, MemWidth::W8);
//! let kernel = b.build("axpy1");
//! assert_eq!(kernel.name(), "axpy1");
//! ```

#![deny(missing_docs)]

pub mod affine;
mod builder;
pub mod geometry;
mod instr;
mod interp;
mod kernel;
mod reg;
mod stmt;

pub use affine::Affine;
pub use builder::KernelBuilder;
pub use geometry::{rep_pairs, sample_threads, RepThread, ScopeLevel};
pub use instr::{BinOp, Instr, MemWidth, Special};
pub use interp::{AccessKind, FenceAccess, LaneAccess, MemAccess, StepResult, WarpInterp};
pub use kernel::{BlockIndex, Kernel, LaunchConfig};
pub use reg::{Reg, NUM_REGS};
pub use stmt::Stmt;
