//! Kernels and launch configurations.

use crate::stmt::{block_len, Stmt};
use std::fmt;
use std::sync::Arc;

/// Grid geometry for a kernel launch (1-D, as in all the paper's
/// workloads).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Threadblocks in the grid.
    pub blocks: u32,
    /// Threads per block (must be a multiple of the warp size).
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    /// Panics if `threads_per_block` is zero, not a multiple of 32, or
    /// above 1024, or if `blocks` is zero.
    #[must_use]
    pub fn new(blocks: u32, threads_per_block: u32) -> Self {
        assert!(blocks > 0, "grid needs at least one block");
        assert!(
            threads_per_block > 0 && threads_per_block <= 1024,
            "threads/block must be in 1..=1024"
        );
        assert_eq!(
            threads_per_block % 32,
            0,
            "threads/block must be a multiple of the warp size"
        );
        LaunchConfig {
            blocks,
            threads_per_block,
        }
    }

    /// Warps per block.
    #[must_use]
    pub fn warps_per_block(self) -> u32 {
        self.threads_per_block / 32
    }

    /// Total threads in the grid.
    #[must_use]
    pub fn total_threads(self) -> u64 {
        u64::from(self.blocks) * u64::from(self.threads_per_block)
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.blocks, self.threads_per_block)
    }
}

/// A compiled kernel: a name, a statement tree, and parameters.
///
/// Parameters play the role of CUDA kernel arguments (typically base
/// addresses and sizes) and are read with [`Instr::Param`].
///
/// [`Instr::Param`]: crate::Instr::Param
#[derive(Clone)]
pub struct Kernel {
    name: String,
    program: Arc<[Stmt]>,
    params: Arc<Vec<u64>>,
}

impl Kernel {
    /// Creates a kernel from a finished statement block.
    #[must_use]
    pub fn new(name: impl Into<String>, program: Arc<[Stmt]>, params: Vec<u64>) -> Self {
        Kernel {
            name: name.into(),
            program,
            params: Arc::new(params),
        }
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The statement tree.
    #[must_use]
    pub fn program(&self) -> &Arc<[Stmt]> {
        &self.program
    }

    /// The parameter block.
    #[must_use]
    pub fn params(&self) -> &Arc<Vec<u64>> {
        &self.params
    }

    /// Returns a copy of the kernel with different parameters.
    #[must_use]
    pub fn with_params(&self, params: Vec<u64>) -> Kernel {
        Kernel {
            name: self.name.clone(),
            program: Arc::clone(&self.program),
            params: Arc::new(params),
        }
    }

    /// Static instruction count.
    #[must_use]
    pub fn static_len(&self) -> usize {
        block_len(&self.program)
    }

    /// Assigns a stable, process-independent id to every statement block
    /// in the program tree (the top-level block, `if` branches, `while`
    /// condition and body blocks), in deterministic pre-order.
    ///
    /// [`crate::WarpInterp::fingerprint_into`] uses these ids to name
    /// the blocks on the interpreter's frame stack, so two processes
    /// exploring the same kernel compute identical state fingerprints.
    #[must_use]
    pub fn block_index(&self) -> BlockIndex {
        let mut ids = std::collections::HashMap::new();
        let mut next = 0u32;
        let mut stack: Vec<&Arc<[Stmt]>> = vec![&self.program];
        while let Some(block) = stack.pop() {
            ids.entry(Arc::as_ptr(block) as *const Stmt as usize)
                .or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
            // Children pushed in reverse so pre-order ids read forward.
            for s in block.iter().rev() {
                match s {
                    Stmt::I(_) => {}
                    Stmt::If { then_b, else_b, .. } => {
                        stack.push(else_b);
                        stack.push(then_b);
                    }
                    Stmt::While { cond_b, body, .. } => {
                        stack.push(body);
                        stack.push(cond_b);
                    }
                }
            }
        }
        BlockIndex { ids }
    }

    /// Pretty-prints the kernel as indented pseudo-assembly — handy when
    /// debugging workload builders.
    #[must_use]
    pub fn disassemble(&self) -> String {
        fn walk(out: &mut String, block: &[Stmt], depth: usize) {
            let pad = "  ".repeat(depth);
            for s in block {
                match s {
                    Stmt::I(i) => {
                        out.push_str(&pad);
                        out.push_str(&i.to_string());
                        out.push('\n');
                    }
                    Stmt::If {
                        cond,
                        then_b,
                        else_b,
                    } => {
                        out.push_str(&format!("{pad}if {cond} {{\n"));
                        walk(out, then_b, depth + 1);
                        if !else_b.is_empty() {
                            out.push_str(&format!("{pad}}} else {{\n"));
                            walk(out, else_b, depth + 1);
                        }
                        out.push_str(&format!("{pad}}}\n"));
                    }
                    Stmt::While { cond_b, cond, body } => {
                        out.push_str(&format!("{pad}while {{\n"));
                        walk(out, cond_b, depth + 1);
                        out.push_str(&format!("{pad}}} {cond} {{\n"));
                        walk(out, body, depth + 1);
                        out.push_str(&format!("{pad}}}\n"));
                    }
                }
            }
        }
        let mut out = format!(".kernel {} (params: {:?})\n", self.name, self.params);
        walk(&mut out, &self.program, 1);
        out
    }
}

/// Stable ids for the statement blocks of one kernel's program tree,
/// built by [`Kernel::block_index`].
///
/// Ids are assigned by a deterministic pre-order walk, so they are equal
/// across processes for the same kernel — unlike the `Arc` pointers that
/// identify blocks in memory.
#[derive(Clone, Debug)]
pub struct BlockIndex {
    ids: std::collections::HashMap<usize, u32>,
}

impl BlockIndex {
    /// The stable id of `block`.
    ///
    /// # Panics
    /// Panics if `block` does not belong to the kernel this index was
    /// built from.
    #[must_use]
    pub fn id_of(&self, block: &Arc<[Stmt]>) -> u32 {
        *self
            .ids
            .get(&(Arc::as_ptr(block) as *const Stmt as usize))
            .expect("block not part of the indexed kernel")
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("static_len", &self.static_len())
            .field("params", &self.params.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn disassembly_shows_structure() {
        let mut b = crate::builder::KernelBuilder::new();
        let c = b.movi(1);
        b.if_then(c, |b| {
            b.ofence();
            b.while_loop(|b| b.movi(0), |b| b.dfence());
        });
        let asm = b.build("demo").disassemble();
        assert!(asm.contains(".kernel demo"));
        assert!(asm.contains("if r0 {"));
        assert!(asm.contains("oFence"));
        assert!(asm.contains("while {"));
        assert!(asm.lines().count() > 6);
    }

    #[test]
    fn launch_config_derived_values() {
        let lc = LaunchConfig::new(4, 128);
        assert_eq!(lc.warps_per_block(), 4);
        assert_eq!(lc.total_threads(), 512);
        assert_eq!(lc.to_string(), "<<<4, 128>>>");
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn launch_config_rejects_ragged_blocks() {
        let _ = LaunchConfig::new(1, 33);
    }

    #[test]
    fn kernel_with_params_shares_program() {
        let prog: Arc<[Stmt]> = vec![Stmt::I(Instr::OFence)].into();
        let k = Kernel::new("k", prog, vec![1, 2]);
        let k2 = k.with_params(vec![3]);
        assert_eq!(k2.params().as_slice(), &[3]);
        assert_eq!(k.params().as_slice(), &[1, 2]);
        assert_eq!(k2.static_len(), 1);
    }
}
