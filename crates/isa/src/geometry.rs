//! Thread-geometry abstraction for inter-thread analysis.
//!
//! A launch grid has too many thread pairs to check one by one, but the
//! scoped persistency rules only distinguish three *levels* of pair:
//! same warp, same block (different warp), different block. The
//! abstraction here samples a small set of representative threads from
//! the grid corners (`lane ∈ {0, 1, last}`, `warp ∈ {0, 1, last}`,
//! `cta ∈ {0, 1, last}`) and enumerates every unordered pair of them,
//! classified by level. Kernels whose behaviour is affine in the
//! thread coordinates (every kernel in this repository) behave
//! identically at the sampled pair and at any other pair of the same
//! level, which is what makes the sample representative; kernels that
//! branch on *specific* thread ids beyond `{0, 1, last}` are outside
//! the abstraction (documented soundness boundary).

use crate::kernel::LaunchConfig;
use sbrp_core::scope::{Scope, ThreadPos, WARP_SIZE};

/// How far apart the two threads of a pair sit in the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScopeLevel {
    /// Same warp (lockstep execution).
    IntraWarp,
    /// Same block, different warp.
    IntraBlock,
    /// Different blocks.
    CrossBlock,
}

impl ScopeLevel {
    /// The narrowest [`Scope`] whose instances contain both threads of
    /// a pair at this level.
    #[must_use]
    pub fn required_scope(self) -> Scope {
        match self {
            ScopeLevel::IntraWarp | ScopeLevel::IntraBlock => Scope::Block,
            ScopeLevel::CrossBlock => Scope::Device,
        }
    }

    /// Stable lower-case name (for diagnostics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScopeLevel::IntraWarp => "intra-warp",
            ScopeLevel::IntraBlock => "intra-block",
            ScopeLevel::CrossBlock => "cross-block",
        }
    }
}

/// A sampled concrete thread of the launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RepThread {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub tid: u32,
}

impl RepThread {
    /// As a [`ThreadPos`] for scope-inclusion tests.
    #[must_use]
    pub fn pos(self) -> ThreadPos {
        ThreadPos::new(self.block, self.tid)
    }

    /// Classifies the pair `(self, other)`, or `None` for the same
    /// thread.
    #[must_use]
    pub fn level_with(self, other: RepThread) -> Option<ScopeLevel> {
        if self == other {
            return None;
        }
        if self.block != other.block {
            return Some(ScopeLevel::CrossBlock);
        }
        let w = WARP_SIZE as u32;
        if self.tid / w == other.tid / w {
            Some(ScopeLevel::IntraWarp)
        } else {
            Some(ScopeLevel::IntraBlock)
        }
    }
}

/// `{0, 1, last}` clamped into `0..n`, deduplicated, ascending.
fn corners(n: u32) -> Vec<u32> {
    let mut out = vec![0];
    if n > 1 {
        out.push(1);
    }
    if n > 2 {
        out.push(n - 1);
    }
    out
}

/// The sampled representative threads of `launch` (at most 27).
#[must_use]
pub fn sample_threads(launch: LaunchConfig) -> Vec<RepThread> {
    let w = WARP_SIZE as u32;
    let warps = launch.threads_per_block / w;
    let mut out = Vec::new();
    for &cta in &corners(launch.blocks) {
        for &warp in &corners(warps) {
            for &lane in &corners(w) {
                out.push(RepThread {
                    block: cta,
                    tid: warp * w + lane,
                });
            }
        }
    }
    out
}

/// Every unordered pair of sampled threads, with its level. Ordered
/// pairs `(a, b)` are emitted once with `a < b`; analyses that care
/// about direction check both orientations of each entry.
#[must_use]
pub fn rep_pairs(launch: LaunchConfig) -> Vec<(RepThread, RepThread, ScopeLevel)> {
    let threads = sample_threads(launch);
    let mut out = Vec::new();
    for (i, &a) in threads.iter().enumerate() {
        for &b in &threads[i + 1..] {
            if let Some(level) = a.level_with(b) {
                out.push((a, b, level));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_classification() {
        let t = |block, tid| RepThread { block, tid };
        assert_eq!(t(0, 0).level_with(t(0, 1)), Some(ScopeLevel::IntraWarp));
        assert_eq!(t(0, 0).level_with(t(0, 32)), Some(ScopeLevel::IntraBlock));
        assert_eq!(t(0, 0).level_with(t(1, 0)), Some(ScopeLevel::CrossBlock));
        assert_eq!(t(0, 5).level_with(t(0, 5)), None);
    }

    #[test]
    fn required_scope_matches_the_hierarchy() {
        assert_eq!(ScopeLevel::IntraWarp.required_scope(), Scope::Block);
        assert_eq!(ScopeLevel::IntraBlock.required_scope(), Scope::Block);
        assert_eq!(ScopeLevel::CrossBlock.required_scope(), Scope::Device);
    }

    #[test]
    fn single_warp_single_block_has_only_intra_warp_pairs() {
        let pairs = rep_pairs(LaunchConfig::new(1, 32));
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|&(_, _, l)| l == ScopeLevel::IntraWarp));
    }

    #[test]
    fn full_grid_samples_all_levels() {
        let pairs = rep_pairs(LaunchConfig::new(4, 128));
        let has = |lvl| pairs.iter().any(|&(_, _, l)| l == lvl);
        assert!(has(ScopeLevel::IntraWarp));
        assert!(has(ScopeLevel::IntraBlock));
        assert!(has(ScopeLevel::CrossBlock));
        assert!(sample_threads(LaunchConfig::new(4, 128)).len() <= 27);
    }
}
