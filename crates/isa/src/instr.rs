//! Instruction definitions.

use crate::reg::Reg;
use sbrp_core::scope::Scope;
use std::fmt;

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 4 bytes (zero-extended on load, truncated on store).
    W4,
    /// 8 bytes.
    W8,
}

impl MemWidth {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }
}

/// Binary ALU operations. Comparison ops produce 0/1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division.
    Div,
    /// Unsigned remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
    /// `a < b` (unsigned).
    SetLt,
    /// `a <= b` (unsigned).
    SetLe,
    /// `a == b`.
    SetEq,
    /// `a != b`.
    SetNe,
    /// `a > b` (unsigned).
    SetGt,
    /// `a >= b` (unsigned).
    SetGe,
}

impl BinOp {
    /// Applies the operation.
    ///
    /// # Panics
    /// Panics on division or remainder by zero (a kernel bug).
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).expect("division by zero in kernel"),
            BinOp::Rem => a.checked_rem(b).expect("remainder by zero in kernel"),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::SetLt => u64::from(a < b),
            BinOp::SetLe => u64::from(a <= b),
            BinOp::SetEq => u64::from(a == b),
            BinOp::SetNe => u64::from(a != b),
            BinOp::SetGt => u64::from(a > b),
            BinOp::SetGe => u64::from(a >= b),
        }
    }
}

/// Special (read-only) registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within the block (`threadIdx.x`).
    Tid,
    /// Threads per block (`blockDim.x`).
    Ntid,
    /// Block index within the grid (`blockIdx.x`).
    CtaId,
    /// Blocks in the grid (`gridDim.x`).
    NCta,
    /// Lane index within the warp.
    Lane,
    /// Warp index within the block.
    WarpId,
    /// Global thread index (`blockIdx.x * blockDim.x + threadIdx.x`).
    GlobalTid,
}

/// A single instruction.
///
/// Loads and stores address *bytes*; whether an access is persistent is a
/// property of the address (the NVM range of the simulator's address
/// map), exactly as in the paper's software model (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `dst = imm`.
    MovI(Reg, u64),
    /// `dst = src`.
    Mov(Reg, Reg),
    /// `dst = op(a, b)`.
    Bin(BinOp, Reg, Reg, Reg),
    /// `dst = op(a, imm)`.
    BinI(BinOp, Reg, Reg, u64),
    /// `dst = special`.
    Spec(Reg, Special),
    /// `dst = params[idx]`.
    Param(Reg, u8),
    /// `dst = cond != 0 ? a : b`.
    Select(Reg, Reg, Reg, Reg),
    /// `dst = mem[addr + off]` (per lane).
    Ld(Reg, Reg, i64, MemWidth),
    /// `dst = mem[addr + off]` (per lane), bypassing the L1 (CUDA's
    /// `volatile`/`__ldcg`): required for flag spins on non-coherent
    /// L1s, as in GPM-style synchronization.
    LdVol(Reg, Reg, i64, MemWidth),
    /// `mem[addr + off] = src` (per lane).
    St(Reg, i64, Reg, MemWidth),
    /// `dst = atomicAdd(&mem[addr], val)` — performed at the L2;
    /// volatile addresses only.
    AtomAdd(Reg, Reg, Reg, MemWidth),
    /// Intra-thread persist ordering fence.
    OFence,
    /// Durability fence.
    DFence,
    /// `dst = pAcq_scope(addr)` — scoped persist acquire (32-bit load).
    PAcq(Reg, Reg, Scope),
    /// `pRel_scope(addr, val)` — scoped persist release (32-bit store).
    PRel(Reg, Reg, Scope),
    /// Block-wide barrier (`__syncthreads`).
    SyncBlock,
    /// Epoch barrier of the GPM/Epoch baselines.
    EpochBarrier,
    /// Consume `n` cycles of compute.
    Sleep(u32),
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovI(d, v) => write!(f, "{d} = {v}"),
            Instr::Mov(d, s) => write!(f, "{d} = {s}"),
            Instr::Bin(op, d, a, b) => write!(f, "{d} = {op:?}({a}, {b})"),
            Instr::BinI(op, d, a, i) => write!(f, "{d} = {op:?}({a}, {i})"),
            Instr::Spec(d, s) => write!(f, "{d} = %{s:?}"),
            Instr::Param(d, i) => write!(f, "{d} = param[{i}]"),
            Instr::Select(d, c, a, b) => write!(f, "{d} = {c} ? {a} : {b}"),
            Instr::Ld(d, a, o, w) => write!(f, "{d} = ld.{}[{a}{o:+}]", w.bytes()),
            Instr::LdVol(d, a, o, w) => write!(f, "{d} = ld.volatile.{}[{a}{o:+}]", w.bytes()),
            Instr::St(a, o, s, w) => write!(f, "st.{}[{a}{o:+}] = {s}", w.bytes()),
            Instr::AtomAdd(d, a, v, w) => write!(f, "{d} = atomAdd.{}[{a}], {v}", w.bytes()),
            Instr::OFence => f.write_str("oFence"),
            Instr::DFence => f.write_str("dFence"),
            Instr::PAcq(d, a, s) => write!(f, "{d} = pAcq_{s}[{a}]"),
            Instr::PRel(a, v, s) => write!(f, "pRel_{s}[{a}] = {v}"),
            Instr::SyncBlock => f.write_str("syncBlock"),
            Instr::EpochBarrier => f.write_str("epochBarrier"),
            Instr::Sleep(n) => write!(f, "sleep {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_arithmetic() {
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.apply(3, 5), u64::MAX - 1);
        assert_eq!(BinOp::Mul.apply(7, 6), 42);
        assert_eq!(BinOp::Div.apply(42, 6), 7);
        assert_eq!(BinOp::Rem.apply(43, 6), 1);
        assert_eq!(BinOp::Min.apply(3, 9), 3);
        assert_eq!(BinOp::Max.apply(3, 9), 9);
    }

    #[test]
    fn binop_comparisons_produce_bool() {
        assert_eq!(BinOp::SetLt.apply(1, 2), 1);
        assert_eq!(BinOp::SetLt.apply(2, 1), 0);
        assert_eq!(BinOp::SetEq.apply(5, 5), 1);
        assert_eq!(BinOp::SetNe.apply(5, 5), 0);
        assert_eq!(BinOp::SetGe.apply(5, 5), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BinOp::Div.apply(1, 0);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(MemWidth::W4.bytes(), 4);
        assert_eq!(MemWidth::W8.bytes(), 8);
    }

    #[test]
    fn instr_display_is_nonempty() {
        let i = Instr::Ld(Reg::new(1), Reg::new(2), 8, MemWidth::W4);
        assert!(!i.to_string().is_empty());
    }
}
