//! Affine-in-thread-id value forms for whole-kernel static analysis.
//!
//! The inter-thread linter needs to compare the address one thread
//! stores to against the address *another* thread stores to. Register
//! contents that matter for that question are almost always affine in
//! the thread coordinates — `base + 8 * gtid`, `flag + 4 * ctaid`, … —
//! so the abstract domain here is the linear form
//!
//! ```text
//! k + a·lane + b·warp + c·cta
//! ```
//!
//! over a *fixed* launch geometry (`tid = lane + 32·warp`,
//! `gtid = tid + threads_per_block·cta`), with `i128` coefficients so
//! `u64` address arithmetic can never overflow the form. Anything
//! non-affine (loaded values, data-dependent selects) simply has no
//! `Affine` and degrades the analysis to may-alias by base object.

use crate::instr::{BinOp, Special};
use crate::kernel::LaunchConfig;
use sbrp_core::scope::WARP_SIZE;

/// A linear form `k + lane·l + warp·w + cta·c` over the coordinates of
/// one thread in a fixed launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Constant term.
    pub k: i128,
    /// Coefficient of the lane index within the warp (`0..32`).
    pub lane: i128,
    /// Coefficient of the warp index within the block.
    pub warp: i128,
    /// Coefficient of the block index within the grid.
    pub cta: i128,
}

impl Affine {
    /// The constant form `k`.
    #[must_use]
    pub fn constant(k: u64) -> Affine {
        Affine {
            k: i128::from(k),
            lane: 0,
            warp: 0,
            cta: 0,
        }
    }

    /// The form a special register denotes under `launch`, or `None`
    /// for specials with no affine meaning.
    #[must_use]
    pub fn of_special(s: Special, launch: LaunchConfig) -> Option<Affine> {
        let w = WARP_SIZE as i128;
        let tpb = i128::from(launch.threads_per_block);
        Some(match s {
            Special::Lane => Affine {
                k: 0,
                lane: 1,
                warp: 0,
                cta: 0,
            },
            Special::WarpId => Affine {
                k: 0,
                lane: 0,
                warp: 1,
                cta: 0,
            },
            Special::Tid => Affine {
                k: 0,
                lane: 1,
                warp: w,
                cta: 0,
            },
            Special::CtaId => Affine {
                k: 0,
                lane: 0,
                warp: 0,
                cta: 1,
            },
            Special::GlobalTid => Affine {
                k: 0,
                lane: 1,
                warp: w,
                cta: tpb,
            },
            Special::Ntid => Affine::constant(u64::from(launch.threads_per_block)),
            Special::NCta => Affine::constant(u64::from(launch.blocks)),
        })
    }

    /// Whether the form is a constant (no thread dependence).
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.lane == 0 && self.warp == 0 && self.cta == 0
    }

    /// The constant value, if [`Affine::is_constant`].
    #[must_use]
    pub fn as_constant(self) -> Option<i128> {
        self.is_constant().then_some(self.k)
    }

    /// `self * c`.
    #[must_use]
    pub fn scale(self, c: i128) -> Affine {
        Affine {
            k: self.k * c,
            lane: self.lane * c,
            warp: self.warp * c,
            cta: self.cta * c,
        }
    }

    /// Applies a binary ALU op when the result stays affine: `Add`/`Sub`
    /// always, `Mul` when one side is constant, `Shl` by a constant.
    /// Everything else (and constant folding of the rest) returns `None`
    /// unless *both* sides are constant, in which case the op is
    /// evaluated on the `u64` values.
    #[must_use]
    pub fn bin(op: BinOp, a: Affine, b: Affine) -> Option<Affine> {
        match op {
            BinOp::Add => Some(a + b),
            BinOp::Sub => Some(a - b),
            BinOp::Mul => match (a.as_constant(), b.as_constant()) {
                (_, Some(c)) => Some(a.scale(c)),
                (Some(c), _) => Some(b.scale(c)),
                _ => None,
            },
            BinOp::Shl => match b.as_constant() {
                Some(c) if (0..64).contains(&c) => Some(a.scale(1i128 << c)),
                _ => None,
            },
            _ => {
                let (x, y) = (a.as_constant()?, b.as_constant()?);
                let (x, y) = (u64::try_from(x).ok()?, u64::try_from(y).ok()?);
                if matches!(op, BinOp::Div | BinOp::Rem) && y == 0 {
                    return None;
                }
                Some(Affine::constant(op.apply(x, y)))
            }
        }
    }

    /// Evaluates the form at a concrete thread (`tid` is the index
    /// within the block).
    #[must_use]
    pub fn eval(self, tid: u32, cta: u32) -> i128 {
        let lane = i128::from(tid % WARP_SIZE as u32);
        let warp = i128::from(tid / WARP_SIZE as u32);
        self.k + self.lane * lane + self.warp * warp + self.cta * i128::from(cta)
    }

    /// Evaluates at a thread and converts to an address, `None` when the
    /// value leaves `u64` range (an analysis artifact, not a real
    /// address).
    #[must_use]
    pub fn eval_addr(self, tid: u32, cta: u32) -> Option<u64> {
        u64::try_from(self.eval(tid, cta)).ok()
    }
}

impl std::ops::Add for Affine {
    type Output = Affine;

    fn add(self, other: Affine) -> Affine {
        Affine {
            k: self.k + other.k,
            lane: self.lane + other.lane,
            warp: self.warp + other.warp,
            cta: self.cta + other.cta,
        }
    }
}

impl std::ops::Sub for Affine {
    type Output = Affine;

    fn sub(self, other: Affine) -> Affine {
        Affine {
            k: self.k - other.k,
            lane: self.lane - other.lane,
            warp: self.warp - other.warp,
            cta: self.cta - other.cta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: fn() -> LaunchConfig = || LaunchConfig::new(4, 64);

    #[test]
    fn specials_evaluate_like_the_machine() {
        let l = L();
        let gtid = Affine::of_special(Special::GlobalTid, l).unwrap();
        assert_eq!(gtid.eval(5, 3), i128::from(3 * 64 + 5));
        let tid = Affine::of_special(Special::Tid, l).unwrap();
        assert_eq!(tid.eval(45, 3), 45);
        let lane = Affine::of_special(Special::Lane, l).unwrap();
        assert_eq!(lane.eval(45, 0), 13);
        let warp = Affine::of_special(Special::WarpId, l).unwrap();
        assert_eq!(warp.eval(45, 0), 1);
        let ntid = Affine::of_special(Special::Ntid, l).unwrap();
        assert_eq!(ntid.as_constant(), Some(64));
    }

    #[test]
    fn address_arithmetic_stays_affine() {
        let l = L();
        let gtid = Affine::of_special(Special::GlobalTid, l).unwrap();
        let off = Affine::bin(BinOp::Mul, gtid, Affine::constant(8)).unwrap();
        let base = Affine::constant(1 << 40);
        let addr = Affine::bin(BinOp::Add, base, off).unwrap();
        assert_eq!(addr.eval_addr(2, 1), Some((1 << 40) + 8 * 66));
    }

    #[test]
    fn shl_is_scaling_and_div_folds_constants() {
        let x = Affine::of_special(Special::Tid, L()).unwrap();
        let shifted = Affine::bin(BinOp::Shl, x, Affine::constant(3)).unwrap();
        assert_eq!(shifted.eval(7, 0), 56);
        let c = Affine::bin(BinOp::Div, Affine::constant(42), Affine::constant(6)).unwrap();
        assert_eq!(c.as_constant(), Some(7));
        assert!(Affine::bin(BinOp::Div, x, Affine::constant(2)).is_none());
        assert!(Affine::bin(BinOp::Div, Affine::constant(1), Affine::constant(0)).is_none());
    }

    #[test]
    fn non_affine_products_are_rejected() {
        let t = Affine::of_special(Special::Tid, L()).unwrap();
        assert!(Affine::bin(BinOp::Mul, t, t).is_none());
        assert!(Affine::bin(BinOp::And, t, Affine::constant(7)).is_none());
    }
}
