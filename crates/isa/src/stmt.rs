//! Structured control flow.

use crate::instr::Instr;
use crate::reg::Reg;
use std::sync::Arc;

/// A structured statement. Kernels are trees of statements, not CFGs;
/// SIMT divergence is modelled by narrowing the active lane mask inside
/// `If`/`While` bodies and restoring it on exit (reconvergence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// A straight-line instruction.
    I(Instr),
    /// `if (cond != 0) { then_b } else { else_b }`, tested per lane.
    If {
        /// Condition register (per-lane).
        cond: Reg,
        /// Taken branch.
        then_b: Arc<[Stmt]>,
        /// Not-taken branch (may be empty).
        else_b: Arc<[Stmt]>,
    },
    /// `while ({ cond_b; cond != 0 }) { body }`, tested per lane: lanes
    /// leave the loop individually and reconverge after it.
    While {
        /// Statements computing the condition, run before every test.
        cond_b: Arc<[Stmt]>,
        /// Condition register (per-lane).
        cond: Reg,
        /// Loop body.
        body: Arc<[Stmt]>,
    },
}

impl Stmt {
    /// Counts instructions in this statement tree (static size).
    #[must_use]
    pub fn static_len(&self) -> usize {
        match self {
            Stmt::I(_) => 1,
            Stmt::If { then_b, else_b, .. } => 1 + block_len(then_b) + block_len(else_b),
            Stmt::While { cond_b, body, .. } => 1 + block_len(cond_b) + block_len(body),
        }
    }
}

/// Total static instruction count of a block.
#[must_use]
pub fn block_len(block: &[Stmt]) -> usize {
    block.iter().map(Stmt::static_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn static_len_counts_nested_blocks() {
        let inner: Arc<[Stmt]> = vec![Stmt::I(Instr::OFence), Stmt::I(Instr::DFence)].into();
        let s = Stmt::If {
            cond: Reg::new(0),
            then_b: inner,
            else_b: Vec::new().into(),
        };
        assert_eq!(s.static_len(), 3);
        assert_eq!(block_len(&[s, Stmt::I(Instr::SyncBlock)]), 4);
    }
}
