//! The lockstep warp interpreter.
//!
//! A [`WarpInterp`] executes one warp of a kernel. Each [`WarpInterp::step`]
//! performs one instruction for all active lanes and returns what the
//! timing simulator must account for: a cycle of ALU work, a memory
//! access, or a fence. Memory and fence results are delivered back with
//! [`WarpInterp::complete_load`] / [`WarpInterp::complete`], after which
//! stepping resumes past the instruction.
//!
//! Divergence is handled structurally: `if`/`while` narrow the active
//! lane mask for their bodies and reconverge on exit.

use crate::instr::{Instr, MemWidth, Special};
use crate::kernel::{Kernel, LaunchConfig};
use crate::reg::{Reg, NUM_REGS};
use crate::stmt::Stmt;
use sbrp_core::fingerprint::Fingerprint;
use sbrp_core::scope::{Scope, WARP_SIZE};
use std::sync::Arc;

/// What kind of plain memory access a warp issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A load; complete with per-lane values.
    Load,
    /// An L1-bypassing (volatile) load; complete with per-lane values.
    LoadVolatile,
    /// A store; complete with [`WarpInterp::complete`].
    Store,
    /// An atomic add at the L2; complete with the per-lane old values.
    AtomAdd,
}

/// One lane's part of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneAccess {
    /// Lane index within the warp.
    pub lane: u8,
    /// Byte address.
    pub addr: u64,
    /// Store/atomic operand value (0 for loads).
    pub value: u64,
}

/// A warp-level memory access (the LSU coalesces its lanes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Access kind.
    pub kind: AccessKind,
    /// Access width per lane.
    pub width: MemWidth,
    /// Active lanes' addresses/values.
    pub lanes: Vec<LaneAccess>,
}

/// A warp-level fence/synchronization action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FenceAccess {
    /// Intra-thread persist ordering fence.
    OFence,
    /// Durability fence.
    DFence,
    /// GPM/Epoch epoch barrier.
    EpochBarrier,
    /// Block-wide `__syncthreads`.
    SyncBlock,
    /// Scoped persist acquire: per-lane 32-bit flag loads; complete with
    /// values.
    PAcq {
        /// The operation's scope.
        scope: Scope,
        /// Active lanes' flag addresses.
        lanes: Vec<LaneAccess>,
    },
    /// Scoped persist release: per-lane 32-bit flag writes, to be
    /// published per the engine's rules.
    PRel {
        /// The operation's scope.
        scope: Scope,
        /// Active lanes' flag addresses and values.
        lanes: Vec<LaneAccess>,
    },
}

/// Result of stepping a warp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepResult {
    /// One ALU/branch instruction executed (one issue slot).
    Alu,
    /// The warp sleeps for the given number of cycles, then is ready.
    Sleep(u32),
    /// A memory access is outstanding.
    Mem(MemAccess),
    /// A fence/synchronization action is outstanding.
    Fence(FenceAccess),
    /// The warp has finished the kernel.
    Done,
}

#[derive(Clone, Debug)]
enum Frame {
    Block {
        stmts: Arc<[Stmt]>,
        idx: usize,
        mask: u32,
    },
    Loop {
        cond_b: Arc<[Stmt]>,
        cond: Reg,
        body: Arc<[Stmt]>,
        mask: u32,
        in_body: bool,
    },
}

#[derive(Clone, Debug)]
enum Pending {
    /// Write completion values to `dst` for the recorded lanes.
    Values { dst: Reg, lanes: Vec<u8> },
    /// Just advance past the instruction.
    Plain,
}

/// Interpreter state for one warp.
///
/// # The step/complete protocol
///
/// The interpreter is a coroutine over externally visible actions. The
/// driver (an SM, or a test) obeys three invariants:
///
/// 1. **One action outstanding at a time.** After [`WarpInterp::step`]
///    returns [`StepResult::Mem`] or [`StepResult::Fence`], exactly one
///    of [`complete_load`](WarpInterp::complete_load) (value-producing:
///    loads, `pAcq`, `atomAdd`), [`complete`](WarpInterp::complete)
///    (stores, non-value fences), or [`retry`](WarpInterp::retry) must
///    be called before the next `step`. Both `step`-while-outstanding
///    and `complete`-while-idle panic — the protocol is checked, not
///    assumed.
/// 2. **Fences are actions, not hints.** Every `OFence` / `DFence` /
///    `EpochBarrier` / `PAcq` / `PRel` / `SyncBlock` surfaces as a
///    [`FenceAccess`] and blocks the warp until completed; the
///    interpreter itself imposes no persist ordering — that is entirely
///    the persist engine's job, which is what lets one ISA serve every
///    persistency model.
/// 3. **Lockstep divergence.** All 32 lanes share one program counter;
///    `if`/`while` run both sides under lane masks, so a `step` sequence
///    is deterministic for a given kernel and launch — any two drivers
///    observe the same action stream.
///
/// ```
/// use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth};
/// use sbrp_isa::{AccessKind, FenceAccess, StepResult, WarpInterp};
///
/// let mut b = KernelBuilder::new();
/// let addr = b.movi(0x100);
/// let v = b.movi(7);
/// b.st(addr, 0, v, MemWidth::W8);
/// b.ofence();
/// let kernel = b.build("doc");
///
/// let mut w = WarpInterp::new(&kernel, LaunchConfig::new(1, 32), 0, 0);
/// let mut actions = Vec::new();
/// loop {
///     match w.step() {
///         StepResult::Alu | StepResult::Sleep(_) => {}
///         StepResult::Mem(m) => {
///             actions.push("store");
///             assert_eq!(m.kind, AccessKind::Store);
///             w.complete(); // a store produces no values
///         }
///         StepResult::Fence(f) => {
///             actions.push("ofence");
///             assert_eq!(f, FenceAccess::OFence);
///             w.complete(); // the engine decides when; here: instantly
///         }
///         StepResult::Done => break,
///     }
/// }
/// assert_eq!(actions, ["store", "ofence"]);
/// assert!(w.is_done());
/// ```
///
/// # Branching executions
///
/// `WarpInterp` is `Clone`, and cloning is cheap relative to a kernel
/// run (registers and the frame stack copy; the program is shared via
/// `Arc`). A stateless model checker exploits this to branch an
/// execution at every scheduling point: clone the interpreter, complete
/// the outstanding action differently in each branch, and continue. The
/// companion [`WarpInterp::fingerprint_into`] provides a canonical
/// digest of the architectural state so converging branches can be
/// deduplicated.
#[derive(Clone)]
pub struct WarpInterp {
    params: Arc<Vec<u64>>,
    regs: Box<[[u64; WARP_SIZE]]>,
    frames: Vec<Frame>,
    pending: Option<Pending>,
    block_id: u32,
    warp_in_block: u32,
    launch: LaunchConfig,
    /// Dynamic instructions retired (stats).
    retired: u64,
}

impl std::fmt::Debug for WarpInterp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpInterp")
            .field("block", &self.block_id)
            .field("warp", &self.warp_in_block)
            .field("frames", &self.frames.len())
            .field("done", &self.is_done())
            .finish()
    }
}

impl WarpInterp {
    /// Creates the interpreter for warp `warp_in_block` of block
    /// `block_id` of a kernel launch.
    #[must_use]
    pub fn new(kernel: &Kernel, launch: LaunchConfig, block_id: u32, warp_in_block: u32) -> Self {
        assert!(warp_in_block < launch.warps_per_block());
        assert!(block_id < launch.blocks);
        WarpInterp {
            params: Arc::clone(kernel.params()),
            regs: vec![[0u64; WARP_SIZE]; NUM_REGS].into_boxed_slice(),
            frames: vec![Frame::Block {
                stmts: Arc::clone(kernel.program()),
                idx: 0,
                mask: u32::MAX,
            }],
            pending: None,
            block_id,
            warp_in_block,
            launch,
            retired: 0,
        }
    }

    /// Whether the warp has retired its last instruction.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.frames.is_empty() && self.pending.is_none()
    }

    /// Dynamic instruction count retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The warp's block.
    #[must_use]
    pub fn block_id(&self) -> u32 {
        self.block_id
    }

    /// The warp's index within its block.
    #[must_use]
    pub fn warp_in_block(&self) -> u32 {
        self.warp_in_block
    }

    /// Reads a register lane (tests/debug).
    #[must_use]
    pub fn reg(&self, r: Reg, lane: usize) -> u64 {
        self.regs[r.index()][lane]
    }

    fn special(&self, s: Special, lane: usize) -> u64 {
        let tid = u64::from(self.warp_in_block) * WARP_SIZE as u64 + lane as u64;
        match s {
            Special::Tid => tid,
            Special::Ntid => u64::from(self.launch.threads_per_block),
            Special::CtaId => u64::from(self.block_id),
            Special::NCta => u64::from(self.launch.blocks),
            Special::Lane => lane as u64,
            Special::WarpId => u64::from(self.warp_in_block),
            Special::GlobalTid => {
                u64::from(self.block_id) * u64::from(self.launch.threads_per_block) + tid
            }
        }
    }

    fn lanes_of(mask: u32) -> impl Iterator<Item = usize> {
        (0..WARP_SIZE).filter(move |l| mask & (1 << l) != 0)
    }

    /// Executes until an externally visible action occurs.
    ///
    /// ALU work is folded: each call retires at most one issue slot's
    /// worth of visible progress ([`StepResult::Alu`]), but a returned
    /// [`StepResult::Mem`]/[`StepResult::Fence`] leaves that action
    /// *outstanding* — the warp makes no further progress until the
    /// driver calls [`WarpInterp::complete_load`],
    /// [`WarpInterp::complete`], or [`WarpInterp::retry`]. Once
    /// [`StepResult::Done`] is returned, every later call returns
    /// `Done` again.
    ///
    /// # Panics
    /// Panics if called while a memory/fence action is outstanding.
    pub fn step(&mut self) -> StepResult {
        assert!(
            self.pending.is_none(),
            "step while an action is outstanding"
        );
        loop {
            let Some(top) = self.frames.last_mut() else {
                return StepResult::Done;
            };
            match top {
                Frame::Loop {
                    cond_b,
                    cond,
                    body,
                    mask,
                    in_body,
                } => {
                    if *in_body {
                        // Body finished: re-evaluate the condition.
                        *in_body = false;
                        let frame = Frame::Block {
                            stmts: Arc::clone(cond_b),
                            idx: 0,
                            mask: *mask,
                        };
                        self.frames.push(frame);
                        continue;
                    }
                    // Condition block finished: test per lane.
                    let cond_reg = *cond;
                    let live: u32 = Self::lanes_of(*mask)
                        .filter(|&l| self.regs[cond_reg.index()][l] != 0)
                        .fold(0, |m, l| m | (1 << l));
                    if live == 0 {
                        self.frames.pop();
                        continue;
                    }
                    let body_rc = Arc::clone(body);
                    *mask = live;
                    *in_body = true;
                    self.frames.push(Frame::Block {
                        stmts: body_rc,
                        idx: 0,
                        mask: live,
                    });
                    continue;
                }
                Frame::Block { stmts, idx, mask } => {
                    if *idx >= stmts.len() {
                        self.frames.pop();
                        continue;
                    }
                    let mask = *mask;
                    let stmt = &stmts[*idx];
                    match stmt {
                        Stmt::I(instr) => {
                            let instr = instr.clone();
                            return self.exec(instr, mask);
                        }
                        Stmt::If {
                            cond,
                            then_b,
                            else_b,
                        } => {
                            let cond = *cond;
                            let (then_b, else_b) = (Arc::clone(then_b), Arc::clone(else_b));
                            *idx += 1;
                            let taken: u32 = Self::lanes_of(mask)
                                .filter(|&l| self.regs[cond.index()][l] != 0)
                                .fold(0, |m, l| m | (1 << l));
                            let not_taken = mask & !taken;
                            // Push else first so the then-branch runs first.
                            if not_taken != 0 && !else_b.is_empty() {
                                self.frames.push(Frame::Block {
                                    stmts: else_b,
                                    idx: 0,
                                    mask: not_taken,
                                });
                            }
                            if taken != 0 && !then_b.is_empty() {
                                self.frames.push(Frame::Block {
                                    stmts: then_b,
                                    idx: 0,
                                    mask: taken,
                                });
                            }
                            self.retired += 1;
                            return StepResult::Alu;
                        }
                        Stmt::While { cond_b, cond, body } => {
                            let (cond_b, body) = (Arc::clone(cond_b), Arc::clone(body));
                            let cond = *cond;
                            *idx += 1;
                            self.frames.push(Frame::Loop {
                                cond_b: Arc::clone(&cond_b),
                                cond,
                                body,
                                mask,
                                in_body: false,
                            });
                            self.frames.push(Frame::Block {
                                stmts: cond_b,
                                idx: 0,
                                mask,
                            });
                            self.retired += 1;
                            return StepResult::Alu;
                        }
                    }
                }
            }
        }
    }

    fn advance(&mut self) {
        match self.frames.last_mut() {
            Some(Frame::Block { idx, .. }) => *idx += 1,
            other => panic!("advance with top frame {other:?}"),
        }
        self.retired += 1;
    }

    fn gather(&self, addr: Reg, off: i64, val: Option<Reg>, mask: u32) -> Vec<LaneAccess> {
        Self::lanes_of(mask)
            .map(|l| LaneAccess {
                lane: l as u8,
                addr: self.regs[addr.index()][l].wrapping_add_signed(off),
                value: val.map_or(0, |v| self.regs[v.index()][l]),
            })
            .collect()
    }

    fn exec(&mut self, instr: Instr, mask: u32) -> StepResult {
        match instr {
            Instr::MovI(d, v) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = v;
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Mov(d, s) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = self.regs[s.index()][l];
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Bin(op, d, a, b) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] =
                        op.apply(self.regs[a.index()][l], self.regs[b.index()][l]);
                }
                self.advance();
                StepResult::Alu
            }
            Instr::BinI(op, d, a, imm) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = op.apply(self.regs[a.index()][l], imm);
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Spec(d, s) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = self.special(s, l);
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Param(d, i) => {
                let v = *self
                    .params
                    .get(usize::from(i))
                    .unwrap_or_else(|| panic!("kernel param {i} missing"));
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = v;
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Select(d, c, a, b) => {
                for l in Self::lanes_of(mask) {
                    self.regs[d.index()][l] = if self.regs[c.index()][l] != 0 {
                        self.regs[a.index()][l]
                    } else {
                        self.regs[b.index()][l]
                    };
                }
                self.advance();
                StepResult::Alu
            }
            Instr::Sleep(n) => {
                self.advance();
                StepResult::Sleep(n)
            }
            Instr::Ld(d, a, off, w) => {
                let lanes = self.gather(a, off, None, mask);
                self.pending = Some(Pending::Values {
                    dst: d,
                    lanes: lanes.iter().map(|la| la.lane).collect(),
                });
                StepResult::Mem(MemAccess {
                    kind: AccessKind::Load,
                    width: w,
                    lanes,
                })
            }
            Instr::LdVol(d, a, off, w) => {
                let lanes = self.gather(a, off, None, mask);
                self.pending = Some(Pending::Values {
                    dst: d,
                    lanes: lanes.iter().map(|la| la.lane).collect(),
                });
                StepResult::Mem(MemAccess {
                    kind: AccessKind::LoadVolatile,
                    width: w,
                    lanes,
                })
            }
            Instr::St(a, off, s, w) => {
                let lanes = self.gather(a, off, Some(s), mask);
                self.pending = Some(Pending::Plain);
                StepResult::Mem(MemAccess {
                    kind: AccessKind::Store,
                    width: w,
                    lanes,
                })
            }
            Instr::AtomAdd(d, a, v, w) => {
                let lanes = self.gather(a, 0, Some(v), mask);
                self.pending = Some(Pending::Values {
                    dst: d,
                    lanes: lanes.iter().map(|la| la.lane).collect(),
                });
                StepResult::Mem(MemAccess {
                    kind: AccessKind::AtomAdd,
                    width: w,
                    lanes,
                })
            }
            Instr::PAcq(d, a, scope) => {
                let lanes = self.gather(a, 0, None, mask);
                self.pending = Some(Pending::Values {
                    dst: d,
                    lanes: lanes.iter().map(|la| la.lane).collect(),
                });
                StepResult::Fence(FenceAccess::PAcq { scope, lanes })
            }
            Instr::PRel(a, v, scope) => {
                let lanes = self.gather(a, 0, Some(v), mask);
                self.pending = Some(Pending::Plain);
                StepResult::Fence(FenceAccess::PRel { scope, lanes })
            }
            Instr::OFence => {
                self.pending = Some(Pending::Plain);
                StepResult::Fence(FenceAccess::OFence)
            }
            Instr::DFence => {
                self.pending = Some(Pending::Plain);
                StepResult::Fence(FenceAccess::DFence)
            }
            Instr::SyncBlock => {
                self.pending = Some(Pending::Plain);
                StepResult::Fence(FenceAccess::SyncBlock)
            }
            Instr::EpochBarrier => {
                self.pending = Some(Pending::Plain);
                StepResult::Fence(FenceAccess::EpochBarrier)
            }
        }
    }

    /// Completes a value-producing action (load, `pAcq`, `atomAdd`);
    /// `values[i]` pairs with the i-th lane of the issued access.
    ///
    /// # Panics
    /// Panics if the outstanding action does not produce values or the
    /// value count mismatches.
    pub fn complete_load(&mut self, values: &[u64]) {
        match self.pending.take() {
            Some(Pending::Values { dst, lanes }) => {
                assert_eq!(lanes.len(), values.len(), "lane/value count mismatch");
                for (&lane, &v) in lanes.iter().zip(values) {
                    self.regs[dst.index()][usize::from(lane)] = v;
                }
                self.advance();
            }
            other => panic!("complete_load with pending {other:?}"),
        }
    }

    /// Completes a store or a non-value fence.
    ///
    /// # Panics
    /// Panics if the outstanding action produces values.
    pub fn complete(&mut self) {
        match self.pending.take() {
            Some(Pending::Plain) => self.advance(),
            other => panic!("complete with pending {other:?}"),
        }
    }

    /// Abandons the outstanding action so the instruction is re-issued by
    /// the next [`WarpInterp::step`] (used when the persist engine asks
    /// the warp to retry a store or fence).
    ///
    /// # Panics
    /// Panics if nothing is outstanding.
    pub fn retry(&mut self) {
        assert!(
            self.pending.take().is_some(),
            "retry with nothing outstanding"
        );
    }

    /// Hashes the warp's architectural state into `fp`, canonically.
    ///
    /// Two interpreters with equal fingerprint inputs behave identically
    /// for every future `step`/`complete` sequence: the digest covers
    /// registers (sparsely: only non-zero lanes), the frame stack
    /// (blocks identified by their stable [`crate::BlockIndex`] id, so
    /// the digest is reproducible across processes), and the pending
    /// action. The `retired` statistic is deliberately excluded — a
    /// spin-loop iteration that changes nothing architectural must not
    /// change the fingerprint, or a model checker could never prune
    /// repeated spins.
    ///
    /// # Panics
    /// Panics if `blocks` was built from a different kernel than this
    /// interpreter runs.
    pub fn fingerprint_into(&self, blocks: &crate::kernel::BlockIndex, fp: &mut Fingerprint) {
        fp.write_u64(u64::from(self.block_id));
        fp.write_u64(u64::from(self.warp_in_block));
        for (r, lanes) in self.regs.iter().enumerate() {
            for (l, &v) in lanes.iter().enumerate() {
                if v != 0 {
                    fp.write_u64(((r as u64) << 8) | l as u64);
                    fp.write_u64(v);
                }
            }
        }
        fp.write_u64(self.frames.len() as u64);
        for f in &self.frames {
            match f {
                Frame::Block { stmts, idx, mask } => {
                    fp.write_u64(1);
                    fp.write_u64(u64::from(blocks.id_of(stmts)));
                    fp.write_u64(*idx as u64);
                    fp.write_u64(u64::from(*mask));
                }
                Frame::Loop {
                    cond_b,
                    cond,
                    body,
                    mask,
                    in_body,
                } => {
                    fp.write_u64(2);
                    fp.write_u64(u64::from(blocks.id_of(cond_b)));
                    fp.write_u64(u64::from(blocks.id_of(body)));
                    fp.write_u64(cond.index() as u64);
                    fp.write_u64(u64::from(*mask));
                    fp.write_u64(u64::from(*in_body));
                }
            }
        }
        match &self.pending {
            None => fp.write_u64(0),
            Some(Pending::Plain) => fp.write_u64(1),
            Some(Pending::Values { dst, lanes }) => {
                fp.write_u64(2);
                fp.write_u64(dst.index() as u64);
                fp.write_u64(lanes.len() as u64);
                for &l in lanes {
                    fp.write_u64(u64::from(l));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use std::collections::HashMap;

    fn lc() -> LaunchConfig {
        LaunchConfig::new(2, 64)
    }

    /// Runs a warp against a flat memory model, returning the memory.
    fn run(kernel: &Kernel, block: u32, warp: u32) -> (WarpInterp, HashMap<u64, u64>) {
        let mut mem: HashMap<u64, u64> = HashMap::new();
        let mut w = WarpInterp::new(kernel, lc(), block, warp);
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 1_000_000, "runaway kernel");
            match w.step() {
                StepResult::Done => break,
                StepResult::Alu | StepResult::Sleep(_) => {}
                StepResult::Mem(acc) => match acc.kind {
                    AccessKind::Load | AccessKind::LoadVolatile => {
                        let vals: Vec<u64> = acc
                            .lanes
                            .iter()
                            .map(|l| *mem.get(&l.addr).unwrap_or(&0))
                            .collect();
                        w.complete_load(&vals);
                    }
                    AccessKind::Store => {
                        for l in &acc.lanes {
                            mem.insert(l.addr, l.value);
                        }
                        w.complete();
                    }
                    AccessKind::AtomAdd => {
                        let vals: Vec<u64> = acc
                            .lanes
                            .iter()
                            .map(|l| {
                                let old = *mem.get(&l.addr).unwrap_or(&0);
                                mem.insert(l.addr, old.wrapping_add(l.value));
                                old
                            })
                            .collect();
                        w.complete_load(&vals);
                    }
                },
                StepResult::Fence(f) => match f {
                    FenceAccess::PAcq { lanes, .. } => {
                        let vals: Vec<u64> = lanes
                            .iter()
                            .map(|l| *mem.get(&l.addr).unwrap_or(&0))
                            .collect();
                        w.complete_load(&vals);
                    }
                    FenceAccess::PRel { lanes, .. } => {
                        for l in &lanes {
                            mem.insert(l.addr, l.value);
                        }
                        w.complete();
                    }
                    _ => w.complete(),
                },
            }
        }
        (w, mem)
    }

    #[test]
    fn straight_line_stores_per_lane() {
        // mem[0x1000 + tid*8] = tid * 3
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let v = b.muli(tid, 3);
        let off = b.muli(tid, 8);
        let base = b.movi(0x1000);
        let addr = b.add(base, off);
        b.st(addr, 0, v, MemWidth::W8);
        let k = b.build("k");
        let (_, mem) = run(&k, 0, 0);
        for lane in 0..32u64 {
            assert_eq!(mem[&(0x1000 + lane * 8)], lane * 3);
        }
    }

    #[test]
    fn warp_one_sees_shifted_tids() {
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let off = b.muli(tid, 8);
        let base = b.movi(0);
        let addr = b.add(base, off);
        b.st(addr, 0, tid, MemWidth::W8);
        let k = b.build("k");
        let (_, mem) = run(&k, 0, 1);
        assert_eq!(mem[&(32 * 8)], 32);
        assert_eq!(mem[&(63 * 8)], 63);
        assert!(!mem.contains_key(&0));
    }

    #[test]
    fn global_tid_accounts_for_block() {
        let mut b = KernelBuilder::new();
        let g = b.special(Special::GlobalTid);
        let addr = b.movi(0x100);
        b.st(addr, 0, g, MemWidth::W8);
        let k = b.build("k");
        let (w, _) = run(&k, 1, 0);
        // block 1, 64 threads/block: lane 0's global tid is 64.
        assert_eq!(w.reg(Reg::new(0), 0), 64);
    }

    #[test]
    fn divergent_if_executes_both_paths() {
        // if (tid < 16) r = 1 else r = 2
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let c = b.lti(tid, 16);
        let out = b.reg();
        b.if_then_else(c, |b| b.movi_to(out, 1), |b| b.movi_to(out, 2));
        let k = b.build("k");
        let (w, _) = run(&k, 0, 0);
        assert_eq!(w.reg(out, 3), 1);
        assert_eq!(w.reg(out, 20), 2);
    }

    #[test]
    fn while_loop_iterates_per_lane() {
        // r = 0; while (r < tid) r += 1  — each lane loops tid times.
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let r = b.movi(0);
        b.while_loop(
            |b| b.lt(r, tid),
            |b| {
                let one = b.movi(1);
                b.bin_to(BinOp::Add, r, one);
            },
        );
        let k = b.build("k");
        let (w, _) = run(&k, 0, 0);
        for lane in 0..32 {
            assert_eq!(w.reg(r, lane), lane as u64, "lane {lane}");
        }
    }

    #[test]
    fn nested_divergence_reconverges() {
        // if (tid < 8) { if (tid < 4) r=1 else r=2 } else r=3; s = 9
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let c8 = b.lti(tid, 8);
        let c4 = b.lti(tid, 4);
        let r = b.reg();
        b.if_then_else(
            c8,
            |b| b.if_then_else(c4, |b| b.movi_to(r, 1), |b| b.movi_to(r, 2)),
            |b| b.movi_to(r, 3),
        );
        let s = b.movi(9);
        let k = b.build("k");
        let (w, _) = run(&k, 0, 0);
        assert_eq!(w.reg(r, 2), 1);
        assert_eq!(w.reg(r, 6), 2);
        assert_eq!(w.reg(r, 30), 3);
        for lane in 0..32 {
            assert_eq!(w.reg(s, lane), 9, "all lanes reconverge");
        }
    }

    #[test]
    fn loads_return_lane_values() {
        let mut b = KernelBuilder::new();
        let base = b.movi(0x2000);
        let tid = b.special(Special::Tid);
        let off = b.muli(tid, 8);
        let addr = b.add(base, off);
        b.st(addr, 0, tid, MemWidth::W8);
        let doubled = b.ld(addr, 0, MemWidth::W8);
        let sum = b.add(doubled, doubled);
        let out = b.addi(addr, 0x1000);
        b.st(out, 0, sum, MemWidth::W8);
        let k = b.build("k");
        let (_, mem) = run(&k, 0, 0);
        assert_eq!(mem[&(0x3000 + 5 * 8)], 10);
    }

    #[test]
    fn atom_add_returns_old_value() {
        let mut b = KernelBuilder::new();
        let addr = b.movi(0x4000);
        let one = b.movi(1);
        let old = b.atom_add(addr, one, MemWidth::W8);
        let tid = b.special(Special::Tid);
        let off = b.muli(tid, 8);
        let out = b.movi(0x5000);
        let oaddr = b.add(out, off);
        b.st(oaddr, 0, old, MemWidth::W8);
        let k = b.build("k");
        let (_, mem) = run(&k, 0, 0);
        // The mock applies lane order, so lane i sees old value i.
        assert_eq!(mem[&(0x4000)], 32);
        assert_eq!(mem[&(0x5000 + 31 * 8)], 31);
    }

    #[test]
    fn fences_yield_and_resume() {
        let mut b = KernelBuilder::new();
        b.ofence();
        b.dfence();
        b.sync_block();
        b.epoch_barrier();
        let k = b.build("k");
        let mut w = WarpInterp::new(&k, lc(), 0, 0);
        assert_eq!(w.step(), StepResult::Fence(FenceAccess::OFence));
        w.complete();
        assert_eq!(w.step(), StepResult::Fence(FenceAccess::DFence));
        w.complete();
        assert_eq!(w.step(), StepResult::Fence(FenceAccess::SyncBlock));
        w.complete();
        assert_eq!(w.step(), StepResult::Fence(FenceAccess::EpochBarrier));
        w.complete();
        assert_eq!(w.step(), StepResult::Done);
        assert!(w.is_done());
    }

    #[test]
    fn retry_reissues_the_same_instruction() {
        let mut b = KernelBuilder::new();
        let a = b.movi(0x100);
        let v = b.movi(7);
        b.st(a, 0, v, MemWidth::W8);
        let k = b.build("k");
        let mut w = WarpInterp::new(&k, lc(), 0, 0);
        assert_eq!(w.step(), StepResult::Alu);
        assert_eq!(w.step(), StepResult::Alu);
        let first = w.step();
        w.retry();
        let second = w.step();
        assert_eq!(first, second, "retried instruction is identical");
    }

    #[test]
    fn prel_carries_lane_flags() {
        let mut b = KernelBuilder::new();
        let tid = b.special(Special::Tid);
        let base = b.movi(0x100);
        let off = b.muli(tid, 4);
        let addr = b.add(base, off);
        let one = b.movi(1);
        b.prel(addr, one, Scope::Block);
        let k = b.build("k");
        let mut w = WarpInterp::new(&k, lc(), 0, 0);
        loop {
            match w.step() {
                StepResult::Fence(FenceAccess::PRel { scope, lanes }) => {
                    assert_eq!(scope, Scope::Block);
                    assert_eq!(lanes.len(), 32);
                    assert_eq!(lanes[3].addr, 0x100 + 12);
                    assert_eq!(lanes[3].value, 1);
                    break;
                }
                StepResult::Alu => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn sleep_advances() {
        let mut b = KernelBuilder::new();
        b.sleep(10);
        let k = b.build("k");
        let mut w = WarpInterp::new(&k, lc(), 0, 0);
        assert_eq!(w.step(), StepResult::Sleep(10));
        assert_eq!(w.step(), StepResult::Done);
    }

    #[test]
    fn empty_while_body_terminates() {
        let mut b = KernelBuilder::new();
        b.while_loop(|b| b.movi(0), |_| {});
        let k = b.build("k");
        let (w, _) = run(&k, 0, 0);
        assert!(w.is_done());
    }

    #[test]
    fn retired_counts_dynamic_instructions() {
        let mut b = KernelBuilder::new();
        let x = b.movi(1);
        let _y = b.addi(x, 1);
        let k = b.build("k");
        let (w, _) = run(&k, 0, 0);
        assert_eq!(w.retired(), 2);
    }

    use crate::instr::BinOp;
}
