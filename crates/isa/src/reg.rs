//! Thread registers.

use std::fmt;

/// Number of 64-bit registers per thread.
pub const NUM_REGS: usize = 128;

/// A per-thread 64-bit register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_REGS`.
    #[must_use]
    pub fn new(idx: usize) -> Self {
        assert!(idx < NUM_REGS, "register r{idx} out of range");
        Reg(idx as u8)
    }

    /// The register index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let r = Reg::new(5);
        assert_eq!(r.index(), 5);
        assert_eq!(r.to_string(), "r5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Reg::new(NUM_REGS);
    }
}
