//! Ergonomic kernel construction.

use crate::instr::{BinOp, Instr, MemWidth, Special};
use crate::kernel::Kernel;
use crate::reg::{Reg, NUM_REGS};
use crate::stmt::Stmt;
use sbrp_core::scope::Scope;
use std::sync::Arc;

/// Builds a [`Kernel`] as a tree of structured statements.
///
/// Value-producing methods allocate a fresh destination register and
/// return it, so kernels read like three-address code. Control flow takes
/// closures:
///
/// ```
/// use sbrp_isa::{KernelBuilder, MemWidth, Special};
///
/// let mut b = KernelBuilder::new();
/// let tid = b.special(Special::Tid);
/// let is_low = b.lti(tid, 4);
/// b.if_then(is_low, |b| {
///     b.ofence();
/// });
/// let k = b.build("demo");
/// assert_eq!(k.static_len(), 4); // spec, lti, if, ofence
/// ```
pub struct KernelBuilder {
    stack: Vec<Vec<Stmt>>,
    next_reg: usize,
    params: Vec<u64>,
}

impl Default for KernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        KernelBuilder {
            stack: vec![Vec::new()],
            next_reg: 0,
            params: Vec::new(),
        }
    }

    fn emit(&mut self, s: Stmt) {
        self.stack.last_mut().expect("block stack").push(s);
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    /// Panics when the register file is exhausted.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < NUM_REGS, "out of registers");
        let r = Reg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    // ---------------- values ----------------

    /// `dst = imm`.
    pub fn movi(&mut self, imm: u64) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::MovI(d, imm)));
        d
    }

    /// Copies `src` into an existing register `dst`.
    pub fn mov_to(&mut self, dst: Reg, src: Reg) {
        self.emit(Stmt::I(Instr::Mov(dst, src)));
    }

    /// Writes `imm` into an existing register `dst`.
    pub fn movi_to(&mut self, dst: Reg, imm: u64) {
        self.emit(Stmt::I(Instr::MovI(dst, imm)));
    }

    /// `dst = special`.
    pub fn special(&mut self, s: Special) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::Spec(d, s)));
        d
    }

    /// `dst = params[idx]` — registers the parameter slot.
    pub fn param(&mut self, idx: usize) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::Param(
            d,
            u8::try_from(idx).expect("param index"),
        )));
        d
    }

    /// `dst = cond != 0 ? a : b`.
    pub fn select(&mut self, cond: Reg, a: Reg, b: Reg) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::Select(d, cond, a, b)));
        d
    }

    fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::Bin(op, d, a, b)));
        d
    }

    fn bini(&mut self, op: BinOp, a: Reg, imm: u64) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::BinI(op, d, a, imm)));
        d
    }

    /// In-place `dst = op(dst, src)` without allocating.
    pub fn bin_to(&mut self, op: BinOp, dst: Reg, src: Reg) {
        self.emit(Stmt::I(Instr::Bin(op, dst, dst, src)));
    }

    /// `dst = a + b`.
    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Add, a, b)
    }
    /// `dst = a + imm`.
    pub fn addi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Add, a, imm)
    }
    /// `dst = a - b`.
    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `dst = a - imm`.
    pub fn subi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Sub, a, imm)
    }
    /// `dst = a * b`.
    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }
    /// `dst = a * imm`.
    pub fn muli(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Mul, a, imm)
    }
    /// `dst = a / b`.
    pub fn div(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Div, a, b)
    }
    /// `dst = a / imm`.
    pub fn divi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Div, a, imm)
    }
    /// `dst = a % b`.
    pub fn rem(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Rem, a, b)
    }
    /// `dst = a % imm`.
    pub fn remi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Rem, a, imm)
    }
    /// `dst = a & imm`.
    pub fn andi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::And, a, imm)
    }
    /// `dst = a << imm`.
    pub fn shli(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Shl, a, imm)
    }
    /// `dst = a >> imm`.
    pub fn shri(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::Shr, a, imm)
    }
    /// `dst = a < b`.
    pub fn lt(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::SetLt, a, b)
    }
    /// `dst = a < imm`.
    pub fn lti(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::SetLt, a, imm)
    }
    /// `dst = a >= b`.
    pub fn ge(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::SetGe, a, b)
    }
    /// `dst = a >= imm`.
    pub fn gei(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::SetGe, a, imm)
    }
    /// `dst = a == b`.
    pub fn eq(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::SetEq, a, b)
    }
    /// `dst = a == imm`.
    pub fn eqi(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::SetEq, a, imm)
    }
    /// `dst = a != b`.
    pub fn ne(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::SetNe, a, b)
    }
    /// `dst = a != imm`.
    pub fn nei(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::SetNe, a, imm)
    }
    /// `dst = a > imm`.
    pub fn gti(&mut self, a: Reg, imm: u64) -> Reg {
        self.bini(BinOp::SetGt, a, imm)
    }

    // ---------------- memory ----------------

    /// `dst = mem[addr + off]`.
    pub fn ld(&mut self, addr: Reg, off: i64, w: MemWidth) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::Ld(d, addr, off, w)));
        d
    }

    /// `dst = volatile mem[addr + off]` — bypasses the L1 (for flag
    /// spins under the non-coherent baselines).
    pub fn ld_volatile(&mut self, addr: Reg, off: i64, w: MemWidth) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::LdVol(d, addr, off, w)));
        d
    }

    /// `mem[addr + off] = val`.
    pub fn st(&mut self, addr: Reg, off: i64, val: Reg, w: MemWidth) {
        self.emit(Stmt::I(Instr::St(addr, off, val, w)));
    }

    /// `dst = atomicAdd(&mem[addr], val)`.
    pub fn atom_add(&mut self, addr: Reg, val: Reg, w: MemWidth) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::AtomAdd(d, addr, val, w)));
        d
    }

    // ---------------- persistency & sync ----------------

    /// Emits an `oFence`.
    pub fn ofence(&mut self) {
        self.emit(Stmt::I(Instr::OFence));
    }

    /// Emits a `dFence`.
    pub fn dfence(&mut self) {
        self.emit(Stmt::I(Instr::DFence));
    }

    /// `dst = pAcq_scope(addr)`.
    pub fn pacq(&mut self, addr: Reg, scope: Scope) -> Reg {
        let d = self.reg();
        self.emit(Stmt::I(Instr::PAcq(d, addr, scope)));
        d
    }

    /// `pRel_scope(addr, val)`.
    pub fn prel(&mut self, addr: Reg, val: Reg, scope: Scope) {
        self.emit(Stmt::I(Instr::PRel(addr, val, scope)));
    }

    /// Emits a `__syncthreads`.
    pub fn sync_block(&mut self) {
        self.emit(Stmt::I(Instr::SyncBlock));
    }

    /// Emits a GPM/Epoch epoch barrier.
    pub fn epoch_barrier(&mut self) {
        self.emit(Stmt::I(Instr::EpochBarrier));
    }

    /// Consumes `n` compute cycles.
    pub fn sleep(&mut self, n: u32) {
        self.emit(Stmt::I(Instr::Sleep(n)));
    }

    // ---------------- control flow ----------------

    /// `if (cond != 0) { f }`.
    pub fn if_then(&mut self, cond: Reg, f: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        f(self);
        let then_b: Arc<[Stmt]> = self.stack.pop().expect("then block").into();
        self.emit(Stmt::If {
            cond,
            then_b,
            else_b: Vec::new().into(),
        });
    }

    /// `if (cond != 0) { f } else { g }`.
    pub fn if_then_else(
        &mut self,
        cond: Reg,
        f: impl FnOnce(&mut Self),
        g: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        f(self);
        let then_b: Arc<[Stmt]> = self.stack.pop().expect("then block").into();
        self.stack.push(Vec::new());
        g(self);
        let else_b: Arc<[Stmt]> = self.stack.pop().expect("else block").into();
        self.emit(Stmt::If {
            cond,
            then_b,
            else_b,
        });
    }

    /// `while ({cond_f} != 0) { body }` — `cond_f` returns the condition
    /// register and is re-evaluated before every iteration.
    pub fn while_loop(
        &mut self,
        cond_f: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        let cond = cond_f(self);
        let cond_b: Arc<[Stmt]> = self.stack.pop().expect("cond block").into();
        self.stack.push(Vec::new());
        body(self);
        let body_b: Arc<[Stmt]> = self.stack.pop().expect("body block").into();
        self.emit(Stmt::While {
            cond_b,
            cond,
            body: body_b,
        });
    }

    // ---------------- finalization ----------------

    /// Sets the kernel parameter block (addresses, sizes, …).
    pub fn set_params(&mut self, params: Vec<u64>) {
        self.params = params;
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    /// Panics if called inside an unfinished control-flow block.
    #[must_use]
    pub fn build(mut self, name: impl Into<String>) -> Kernel {
        assert_eq!(self.stack.len(), 1, "unbalanced control-flow blocks");
        let top = self.stack.pop().expect("top block");
        Kernel::new(name, top.into(), self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_building() {
        let mut b = KernelBuilder::new();
        let x = b.movi(4);
        let y = b.addi(x, 3);
        let p = b.param(0);
        let a = b.add(p, y);
        b.st(a, 0, y, MemWidth::W8);
        let k = b.build("k");
        assert_eq!(k.static_len(), 5);
        assert_eq!(k.name(), "k");
    }

    #[test]
    fn nested_control_flow() {
        let mut b = KernelBuilder::new();
        let c = b.movi(1);
        b.if_then_else(
            c,
            |b| {
                b.while_loop(
                    |b| b.movi(0),
                    |b| {
                        b.ofence();
                    },
                );
            },
            |b| {
                b.dfence();
            },
        );
        let k = b.build("cf");
        // movi + if + (while + movi + ofence) + dfence
        assert_eq!(k.static_len(), 6);
    }

    #[test]
    fn params_are_preserved() {
        let mut b = KernelBuilder::new();
        b.set_params(vec![0x1000, 42]);
        let k = b.build("p");
        assert_eq!(k.params().as_slice(), &[0x1000, 42]);
    }

    #[test]
    #[should_panic(expected = "out of registers")]
    fn register_exhaustion_panics() {
        let mut b = KernelBuilder::new();
        for _ in 0..=NUM_REGS {
            let _ = b.reg();
        }
    }
}
