//! Property tests for the warp interpreter: random ALU programs agree
//! with a scalar reference evaluation per lane, and structured
//! divergence reconverges correctly.

use proptest::prelude::*;
use sbrp_isa::{BinOp, KernelBuilder, LaunchConfig, MemWidth, Reg, StepResult, WarpInterp};

/// Ops safe for random operands (no divide-by-zero panics).
const SAFE_OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Min,
    BinOp::Max,
    BinOp::SetLt,
    BinOp::SetLe,
    BinOp::SetEq,
    BinOp::SetNe,
];

#[derive(Clone, Debug)]
enum AluOp {
    MovI(u64),
    /// dst = op(regs[a % live], regs[b % live])
    Bin(usize, usize, usize),
    /// dst = op(regs[a % live], imm)
    BinI(usize, usize, u64),
    /// dst = cond ? a : b (all indices mod live)
    Select(usize, usize, usize),
}

fn alu_strategy() -> impl Strategy<Value = Vec<AluOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(AluOp::MovI),
            (0..SAFE_OPS.len(), any::<usize>(), any::<usize>())
                .prop_map(|(o, a, b)| AluOp::Bin(o, a, b)),
            (0..SAFE_OPS.len(), any::<usize>(), any::<u64>())
                .prop_map(|(o, a, i)| AluOp::BinI(o, a, i)),
            (any::<usize>(), any::<usize>(), any::<usize>())
                .prop_map(|(c, a, b)| AluOp::Select(c, a, b)),
        ],
        1..40,
    )
}

/// Runs a warp to completion with a trivial zero-memory model.
fn run_warp(interp: &mut WarpInterp) {
    let mut steps = 0;
    loop {
        steps += 1;
        assert!(steps < 1_000_000, "runaway warp");
        match interp.step() {
            StepResult::Done => return,
            StepResult::Alu | StepResult::Sleep(_) => {}
            StepResult::Mem(acc) => match acc.kind {
                sbrp_isa::AccessKind::Store => interp.complete(),
                _ => {
                    let zeros = vec![0u64; acc.lanes.len()];
                    interp.complete_load(&zeros);
                }
            },
            StepResult::Fence(f) => match f {
                sbrp_isa::FenceAccess::PAcq { lanes, .. } => {
                    let zeros = vec![0u64; lanes.len()];
                    interp.complete_load(&zeros);
                }
                _ => interp.complete(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random straight-line ALU programs: the lockstep interpreter agrees
    /// with a per-lane scalar reference.
    #[test]
    fn alu_matches_scalar_reference(ops in alu_strategy()) {
        let mut b = KernelBuilder::new();
        // Seed register: lane id, so lanes differ.
        let lane = b.special(sbrp_isa::Special::Lane);
        let mut regs = vec![lane];
        for op in &ops {
            let live = regs.len();
            let r = match op {
                AluOp::MovI(v) => b.movi(*v),
                AluOp::Bin(o, a, c) => {
                    let (ra, rc) = (regs[a % live], regs[c % live]);
                    let d = b.reg();
                    b.mov_to(d, ra);
                    b.bin_to(SAFE_OPS[o % SAFE_OPS.len()], d, rc);
                    d
                }
                AluOp::BinI(o, a, i) => {
                    // Express as bin over a materialized immediate so the
                    // reference stays uniform.
                    let imm = b.movi(*i);
                    let ra = regs[a % live];
                    let d = b.reg();
                    b.mov_to(d, ra);
                    b.bin_to(SAFE_OPS[o % SAFE_OPS.len()], d, imm);
                    regs.push(imm);
                    d
                }
                AluOp::Select(c, x, y) => {
                    let (rc, rx, ry) = (regs[c % live], regs[x % live], regs[y % live]);
                    b.select(rc, rx, ry)
                }
            };
            regs.push(r);
        }
        let out: Vec<Reg> = regs.clone();
        let kernel = b.build("prop_alu");

        // Scalar reference per lane.
        let mut expected: Vec<Vec<u64>> = Vec::new();
        for lane_idx in 0..32u64 {
            let mut vals = vec![lane_idx];
            for op in &ops {
                let live_before_imm = vals.len();
                let v = match op {
                    AluOp::MovI(v) => *v,
                    AluOp::Bin(o, a, c) => SAFE_OPS[o % SAFE_OPS.len()]
                        .apply(vals[a % live_before_imm], vals[c % live_before_imm]),
                    AluOp::BinI(o, a, i) => {
                        let r = SAFE_OPS[o % SAFE_OPS.len()].apply(vals[a % live_before_imm], *i);
                        vals.push(*i); // the materialized immediate
                        r
                    }
                    AluOp::Select(c, x, y) => {
                        if vals[c % live_before_imm] != 0 {
                            vals[x % live_before_imm]
                        } else {
                            vals[y % live_before_imm]
                        }
                    }
                };
                vals.push(v);
            }
            expected.push(vals);
        }

        let mut interp = WarpInterp::new(&kernel, LaunchConfig::new(1, 32), 0, 0);
        run_warp(&mut interp);
        for (ri, reg) in out.iter().enumerate() {
            for (lane_idx, lane_expected) in expected.iter().enumerate() {
                prop_assert_eq!(
                    interp.reg(*reg, lane_idx),
                    lane_expected[ri],
                    "reg {} lane {}", ri, lane_idx
                );
            }
        }
    }

    /// Divergent if/else with random thresholds: every lane takes exactly
    /// its own path and all lanes reconverge.
    #[test]
    fn divergence_reconverges(t1 in 0u64..33, t2 in 0u64..33, after in any::<u64>()) {
        let mut b = KernelBuilder::new();
        let lane = b.special(sbrp_isa::Special::Lane);
        let c1 = b.lti(lane, t1);
        let c2 = b.lti(lane, t2);
        let r = b.movi(0);
        b.if_then_else(
            c1,
            |b| {
                b.if_then_else(c2, |b| b.movi_to(r, 1), |b| b.movi_to(r, 2));
            },
            |b| {
                b.if_then_else(c2, |b| b.movi_to(r, 3), |b| b.movi_to(r, 4));
            },
        );
        let s = b.movi(after);
        let kernel = b.build("prop_div");
        let mut interp = WarpInterp::new(&kernel, LaunchConfig::new(1, 32), 0, 0);
        run_warp(&mut interp);
        for lane_idx in 0..32u64 {
            let expect = match (lane_idx < t1, lane_idx < t2) {
                (true, true) => 1,
                (true, false) => 2,
                (false, true) => 3,
                (false, false) => 4,
            };
            prop_assert_eq!(interp.reg(r, lane_idx as usize), expect);
            prop_assert_eq!(interp.reg(s, lane_idx as usize), after, "reconvergence");
        }
    }

    /// `while` loops with per-lane trip counts terminate with each lane
    /// having iterated exactly its own count.
    #[test]
    fn while_trip_counts_are_per_lane(cap in 0u64..50) {
        let mut b = KernelBuilder::new();
        let lane = b.special(sbrp_isa::Special::Lane);
        let limit = b.movi(cap);
        let bound = b.bin_to_new_min(lane, limit);
        let n = b.movi(0);
        b.while_loop(
            |b| b.lt(n, bound),
            |b| {
                let one = b.movi(1);
                b.bin_to(BinOp::Add, n, one);
            },
        );
        let kernel = b.build("prop_while");
        let mut interp = WarpInterp::new(&kernel, LaunchConfig::new(1, 32), 0, 0);
        run_warp(&mut interp);
        for lane_idx in 0..32u64 {
            prop_assert_eq!(interp.reg(n, lane_idx as usize), lane_idx.min(cap));
        }
    }
}

/// Helper extension used by the tests (kept here to avoid widening the
/// public builder API for a test-only need).
trait MinExt {
    fn bin_to_new_min(&mut self, a: Reg, b: Reg) -> Reg;
}

impl MinExt for KernelBuilder {
    fn bin_to_new_min(&mut self, a: Reg, b: Reg) -> Reg {
        let d = self.reg();
        self.mov_to(d, a);
        self.bin_to(BinOp::Min, d, b);
        d
    }
}

#[test]
fn memory_round_trip_widths() {
    // W4 stores truncate and W4 loads zero-extend (via the memory model).
    let mut b = KernelBuilder::new();
    let addr = b.movi(0x1000);
    let v = b.movi(0xdead_beef_cafe_f00d);
    b.st(addr, 0, v, MemWidth::W4);
    let k = b.build("w4");
    let mut interp = WarpInterp::new(&k, LaunchConfig::new(1, 32), 0, 0);
    let mut stored = None;
    loop {
        match interp.step() {
            StepResult::Mem(acc) => {
                assert_eq!(acc.width.bytes(), 4);
                stored = Some(acc.lanes[0].value);
                interp.complete();
            }
            StepResult::Done => break,
            _ => {}
        }
    }
    // The interpreter hands the full value; the memory model truncates by
    // width (verified in the sim crate); the access advertises W4.
    assert_eq!(stored, Some(0xdead_beef_cafe_f00d));
}
