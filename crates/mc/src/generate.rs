//! Seeded generator of scoped message-passing kernels, for pinning the
//! static linter's false-negative rate at zero.
//!
//! Each seed deterministically picks a point in a small combinatorial
//! space of producer→consumer handoff kernels: launch geometry
//! (cross-block or two warps of one block), how the producer publishes
//! (`pRel` at block or device scope, a volatile flag store, or not at
//! all), whether it drains before publishing, and how the consumer
//! synchronizes (an acquire spin at either scope, a volatile spin, a
//! single non-spinning `pAcq`, or nothing). The consumer always reads
//! the data and republishes it to a persistent `sink`, so every kernel
//! carries the same recovery invariant: *durable(sink) ⇒
//! durable(data)*.
//!
//! The harness (`tests/generative_mc.rs`) lints each kernel with
//! [`sbrp_lint::lint_all`] and model-checks it with [`crate::explore`]
//! under that invariant, and asserts the soundness direction: **no
//! kernel is lint-error-clean yet has a model-checked violation**. The
//! linter may be conservative (flag a kernel the model proves safe —
//! e.g. a device-scope release that must drain before publishing), but
//! it must never be silent on a kernel with a real violating execution.

use crate::spec::{Invariant, PersistDomain, Program, Spec};
use sbrp_core::ops::ModelKind;
use sbrp_core::scope::Scope;
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};

/// How the producer publishes its flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Publish {
    /// `pRel` at block scope.
    RelBlock,
    /// `pRel` at device scope.
    RelDevice,
    /// Plain (volatile) store to a non-persistent flag word.
    VolStore,
    /// No publication at all.
    None,
}

/// How the consumer synchronizes before reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsumerSync {
    /// Acquire-spin at block scope.
    SpinAcqBlock,
    /// Acquire-spin at device scope.
    SpinAcqDevice,
    /// Volatile-load spin on the flag word.
    SpinVolatile,
    /// A single non-spinning `pAcq` (proceeds regardless of the value).
    BareAcq,
    /// No synchronization.
    None,
}

/// One generated case: the kernel, its geometry, and the addresses the
/// recovery invariant *durable(sink) ⇒ durable(data)* is about.
pub struct GenCase {
    /// The generated kernel, parameters baked in.
    pub kernel: Kernel,
    /// Launch geometry the kernel was generated for.
    pub launch: LaunchConfig,
    /// Producer-persisted address the invariant requires.
    pub data: u64,
    /// Consumer-republished address the invariant guards.
    pub sink: u64,
    /// Human-readable knob assignment, for failure messages.
    pub describe: String,
}

impl GenCase {
    /// The model-checking program and spec for this case.
    #[must_use]
    pub fn program_and_spec(&self, pm_base: u64) -> (Program, Spec) {
        let prog = Program {
            kernel: self.kernel.clone(),
            launch: self.launch,
            model: ModelKind::Sbrp,
            domain: PersistDomain::Adr,
            pm_base,
        };
        let spec = Spec {
            invariants: vec![Invariant::AddrImplies {
                if_durable: self.sink,
                then_durable: self.data,
            }],
            ..Spec::default()
        };
        (prog, spec)
    }
}

/// `splitmix64` — tiny, deterministic, and well-distributed; the same
/// generator the sweep engine's seeding uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Deterministically generates the kernel for `seed`.
#[must_use]
#[allow(clippy::too_many_lines)]
#[allow(clippy::similar_names)] // prod_ofence/prod_dfence are the knobs
pub fn generate(seed: u64, pm_base: u64) -> GenCase {
    const W8: MemWidth = MemWidth::W8;
    let mut rng = Rng(seed);

    let cross_block = rng.flag();
    let publish = match rng.pick(4) {
        0 => Publish::RelBlock,
        1 => Publish::RelDevice,
        2 => Publish::VolStore,
        _ => Publish::None,
    };
    let sync = match rng.pick(5) {
        0 => ConsumerSync::SpinAcqBlock,
        1 => ConsumerSync::SpinAcqDevice,
        2 => ConsumerSync::SpinVolatile,
        3 => ConsumerSync::BareAcq,
        _ => ConsumerSync::None,
    };
    let second_store = rng.flag();
    let prod_ofence = rng.flag();
    let prod_dfence = rng.flag();
    let cons_dfence = rng.flag();
    let value = 1 + rng.pick(250);

    let launch = if cross_block {
        LaunchConfig::new(2, 32)
    } else {
        LaunchConfig::new(1, 64)
    };

    let mut b = KernelBuilder::new();
    let data = b.param(0);
    let flag = b.param(1);
    let sink = b.param(2);
    let is_prod = if cross_block {
        let cta = b.special(Special::CtaId);
        b.eqi(cta, 0)
    } else {
        let t = b.special(Special::Tid);
        b.lti(t, 32)
    };
    b.if_then_else(
        is_prod,
        |b| {
            let v = b.movi(value);
            b.st(data, 0, v, W8);
            if second_store {
                b.st(data, 8, v, W8);
            }
            if prod_ofence {
                b.ofence();
            }
            if prod_dfence {
                b.dfence();
            }
            match publish {
                Publish::RelBlock => {
                    let one = b.movi(1);
                    b.prel(flag, one, Scope::Block);
                }
                Publish::RelDevice => {
                    let one = b.movi(1);
                    b.prel(flag, one, Scope::Device);
                }
                Publish::VolStore => {
                    let one = b.movi(1);
                    b.st(flag, 0, one, W8);
                }
                Publish::None => {}
            }
        },
        |b| {
            match sync {
                ConsumerSync::SpinAcqBlock | ConsumerSync::SpinAcqDevice => {
                    let sc = if sync == ConsumerSync::SpinAcqBlock {
                        Scope::Block
                    } else {
                        Scope::Device
                    };
                    b.while_loop(
                        |b| {
                            let a = b.pacq(flag, sc);
                            b.eqi(a, 0)
                        },
                        |b| b.sleep(16),
                    );
                }
                ConsumerSync::SpinVolatile => {
                    b.while_loop(
                        |b| {
                            let a = b.ld_volatile(flag, 0, W8);
                            b.eqi(a, 0)
                        },
                        |b| b.sleep(16),
                    );
                }
                ConsumerSync::BareAcq => {
                    b.pacq(flag, Scope::Block);
                }
                ConsumerSync::None => {}
            }
            let v = b.ld(data, 0, W8);
            b.st(sink, 0, v, W8);
            if cons_dfence {
                b.dfence();
            }
        },
    );
    b.set_params(vec![pm_base, 0x8000, pm_base + 0x2000]);
    let kernel = b.build(format!("gen_{seed}"));

    GenCase {
        kernel,
        launch,
        data: pm_base,
        sink: pm_base + 0x2000,
        describe: format!(
            "cross_block={cross_block} publish={publish:?} sync={sync:?} \
             second_store={second_store} prod_ofence={prod_ofence} \
             prod_dfence={prod_dfence} cons_dfence={cons_dfence}"
        ),
    }
}
