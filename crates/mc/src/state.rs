//! The canonical machine state and its transition relation.
//!
//! A [`State`] bundles every warp's architectural state (a cloned
//! [`WarpInterp`] parked at its next visible action), shared memory, the
//! model's persist-engine abstraction (pending per-line buffer entries
//! with drain dependencies), and the formal trace accumulated so far.
//! [`State::choices`] enumerates the enabled transitions and
//! [`State::apply`] fires one, running the built-in checks as side
//! effects.
//!
//! # The persist-engine abstraction
//!
//! The checker does not drive `core/src/pbuffer` cycle-by-cycle; it
//! models the *architectural* persist-buffer contract the paper's §6
//! hardware implements, at warp granularity:
//!
//! * a persistent store allocates (or coalesces into) a single-owner
//!   entry for its 128-byte line; a store that hits a sealed or foreign
//!   entry is simply not enabled until that entry drains (the hardware
//!   would stall the warp the same way);
//! * `oFence`/`dFence`/`pAcq`/`pRel` are *ordering points*: they seal
//!   the warp's open entries and record them as the warp's current
//!   drain dependencies — entries allocated later depend on them;
//! * an entry may drain only once its dependencies have drained;
//! * `dFence` completes only when the warp has no pending entry, and
//!   its completion is *verified*: every persist the warp issued must be
//!   durable, or the checker reports a model-soundness violation;
//! * a block-scoped `pRel` publishes its flag immediately (the buffer
//!   orders the drains in the background); device/system releases wait
//!   until the covered persists are durable, as the simulator does;
//! * a `pAcq` that observes a released value inherits the release's
//!   drain dependencies iff the pattern's effective scope includes both
//!   threads — precisely the rule whose absence is the §5.3 bug;
//! * under `Epoch`/`Gpm`, entries carry no dependencies and the epoch
//!   barrier is enabled only when the block's warps have drained;
//! * under the eADR domain no entry is ever allocated — stores are
//!   durable at acceptance.
//!
//! Granularity caveats (see DESIGN.md): interleaving is enumerated at
//! warp-action level (a 32-lane store is one atomic transition) and
//! warp-wide fences are recorded for every lane's thread.

use crate::spec::{Choice, Evidence, PersistDomain, Program, Violation, ViolationKind};
use sbrp_core::fingerprint::Fingerprint;
use sbrp_core::formal::{EventId, PmoGraph, TraceBuilder};
use sbrp_core::ops::{ModelKind, PersistOpKind};
use sbrp_core::scope::{Scope, ThreadPos, WARP_SIZE};
use sbrp_isa::{AccessKind, BlockIndex, FenceAccess, LaneAccess, StepResult, WarpInterp};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Cache-line size of the persist buffer (matches the simulator).
pub const LINE_BYTES: u64 = 128;

/// `(block, tid_in_block, nth)` — a schedule-independent persist name.
pub(crate) type Mark = (u32, u32, u32);

fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

fn tkey(t: ThreadPos) -> (u32, u32) {
    (t.block.0, t.tid_in_block)
}

/// The `ThreadPos` of `lane` of global warp `widx`.
fn lane_thread(program: &Program, widx: u32, lane: u8) -> ThreadPos {
    let wpb = program.launch.warps_per_block();
    ThreadPos::new(
        widx / wpb,
        (widx % wpb) * WARP_SIZE as u32 + u32::from(lane),
    )
}

/// One warp of the subject program, parked at its next visible action.
#[derive(Clone)]
pub(crate) struct WarpState {
    pub interp: WarpInterp,
    /// The outstanding `Mem`/`Fence` action (`None` once done).
    pub parked: Option<StepResult>,
    /// Arrived at a `__syncthreads` and waiting for the block.
    pub arrived: bool,
    pub done: bool,
    /// Persists issued so far, per lane — the `nth` of the next mark.
    pub persist_counts: [u32; WARP_SIZE],
    pub ofences_fired: u32,
    pub dfences_fired: u32,
}

impl WarpState {
    fn park(&mut self) {
        if self.done || self.parked.is_some() {
            return;
        }
        loop {
            match self.interp.step() {
                StepResult::Alu | StepResult::Sleep(_) => {}
                StepResult::Done => {
                    self.done = true;
                    return;
                }
                action => {
                    self.parked = Some(action);
                    return;
                }
            }
        }
    }
}

/// A pending persist-buffer entry (one per 128-byte line).
#[derive(Clone)]
pub(crate) struct Entry {
    /// Global index of the owning warp.
    pub owner: u32,
    /// Sealed by an ordering point: no further coalescing.
    pub sealed: bool,
    /// Writes held by the entry (`addr -> value`).
    pub writes: BTreeMap<u64, u64>,
    /// Persist events buffered in the entry.
    pub events: Vec<(EventId, Mark)>,
    /// Lines that must drain before this entry may.
    pub deps: BTreeSet<u64>,
}

/// The published value of a release flag, with the drain dependencies an
/// observing acquire inherits.
#[derive(Clone)]
pub(crate) struct RelRecord {
    pub ev: EventId,
    pub thread: ThreadPos,
    pub scope: Scope,
    pub value: u64,
    pub deps: BTreeSet<u64>,
}

/// One state of the exploration. Cloning is the branching primitive.
#[derive(Clone)]
pub struct State {
    pub(crate) warps: Vec<WarpState>,
    /// Volatile-visible memory (stores become visible here immediately).
    pub(crate) mem: BTreeMap<u64, u64>,
    /// Pending persist-buffer entries, keyed by line address.
    pub(crate) pending: BTreeMap<u64, Entry>,
    /// Per-warp drain dependencies accumulated at ordering points.
    pub(crate) warp_deps: Vec<BTreeSet<u64>>,
    /// Last published release per flag address.
    pub(crate) flags: BTreeMap<u64, RelRecord>,
    /// The formal trace of this execution path.
    pub(crate) tb: TraceBuilder,
    /// Durable persists, as this path's trace event ids.
    pub(crate) durable_ids: HashSet<EventId>,
    /// Durable persists, as canonical marks.
    pub(crate) durable_marks: BTreeSet<Mark>,
    /// Addresses with at least one durable write.
    pub(crate) durable_addrs: BTreeSet<u64>,
    /// Mark -> event id, for resolving [`crate::spec::PRef`]s.
    pub(crate) marks: BTreeMap<Mark, EventId>,
    /// Acquire-observes-release count along this path.
    pub(crate) observations: u32,
    /// §5.3 scope-bug observations along this path.
    pub(crate) scope_bugs: u32,
    /// The schedule from the initial state (counterexample material).
    pub(crate) schedule: Vec<Choice>,
}

impl State {
    /// The initial state of `program`: every warp parked at its first
    /// visible action, memory zero, no pending entries.
    #[must_use]
    pub fn initial(program: &Program) -> State {
        let wpb = program.launch.warps_per_block();
        let total = (program.launch.blocks * wpb) as usize;
        let mut warps = Vec::with_capacity(total);
        for b in 0..program.launch.blocks {
            for w in 0..wpb {
                let mut ws = WarpState {
                    interp: WarpInterp::new(&program.kernel, program.launch, b, w),
                    parked: None,
                    arrived: false,
                    done: false,
                    persist_counts: [0; WARP_SIZE],
                    ofences_fired: 0,
                    dfences_fired: 0,
                };
                ws.park();
                warps.push(ws);
            }
        }
        State {
            warp_deps: vec![BTreeSet::new(); warps.len()],
            warps,
            mem: BTreeMap::new(),
            pending: BTreeMap::new(),
            flags: BTreeMap::new(),
            tb: TraceBuilder::new(),
            durable_ids: HashSet::new(),
            durable_marks: BTreeSet::new(),
            durable_addrs: BTreeSet::new(),
            marks: BTreeMap::new(),
            observations: 0,
            scope_bugs: 0,
            schedule: Vec::new(),
        }
    }

    /// Whether every warp has retired the kernel.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.done)
    }

    /// Whether the execution is complete: all warps done and every
    /// buffered persist drained.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.all_done() && self.pending.is_empty()
    }

    /// Addresses with a durable write.
    #[must_use]
    pub fn durable_addrs(&self) -> &BTreeSet<u64> {
        &self.durable_addrs
    }

    /// Whether the persist named by `(block, tid_in_block, nth)` —
    /// the thread's `nth` program-order persist — has drained. The
    /// mark naming matches the static linter's hazards, so a lint
    /// claim "`blkB:tT#N` durable while … lost" is directly checkable
    /// against a reachable state.
    #[must_use]
    pub fn mark_durable(&self, mark: (u32, u32, u32)) -> bool {
        self.durable_marks.contains(&mark)
    }

    /// The schedule that produced this state.
    #[must_use]
    pub fn schedule(&self) -> &[Choice] {
        &self.schedule
    }

    /// Number of acquire-observes-release events along this path.
    #[must_use]
    pub fn observations(&self) -> u32 {
        self.observations
    }

    /// Number of §5.3 scope-bug observations along this path.
    #[must_use]
    pub fn scope_bugs(&self) -> u32 {
        self.scope_bugs
    }

    /// Finalizes (a clone of) this path's trace into a [`PmoGraph`].
    #[must_use]
    pub fn graph(&self) -> PmoGraph {
        self.tb.clone().finish()
    }

    /// The event id of the `nth` persist `thread` issued along this path
    /// (program order, zero-based), if it was issued.
    #[must_use]
    pub fn persist_event(&self, thread: ThreadPos, nth: u32) -> Option<EventId> {
        self.marks
            .get(&(thread.block.0, thread.tid_in_block, nth))
            .copied()
    }

    fn own_pending(&self, widx: u32) -> bool {
        self.pending.values().any(|e| e.owner == widx)
    }

    fn block_pending(&self, program: &Program, widx: u32) -> bool {
        let wpb = program.launch.warps_per_block();
        let block = widx / wpb;
        self.pending.values().any(|e| e.owner / wpb == block)
    }

    /// Whether the parked action of warp `widx` may fire now.
    fn warp_enabled(&self, program: &Program, widx: u32) -> bool {
        let w = &self.warps[widx as usize];
        if w.done || w.arrived {
            return false;
        }
        let Some(action) = &w.parked else {
            return false;
        };
        match action {
            StepResult::Mem(acc) => match acc.kind {
                AccessKind::Load | AccessKind::LoadVolatile | AccessKind::AtomAdd => true,
                AccessKind::Store => {
                    if program.domain == PersistDomain::Eadr {
                        return true;
                    }
                    acc.lanes
                        .iter()
                        .filter(|l| l.addr >= program.pm_base)
                        .all(|l| match self.pending.get(&line_of(l.addr)) {
                            None => true,
                            Some(e) => e.owner == widx && !e.sealed,
                        })
                }
            },
            StepResult::Fence(f) => match f {
                FenceAccess::OFence | FenceAccess::PAcq { .. } | FenceAccess::SyncBlock => true,
                FenceAccess::DFence => !self.own_pending(widx),
                FenceAccess::PRel { scope, .. } => {
                    *scope == Scope::Block
                        || (self.warp_deps[widx as usize].is_empty() && !self.own_pending(widx))
                }
                FenceAccess::EpochBarrier => !self.block_pending(program, widx),
            },
            StepResult::Alu | StepResult::Sleep(_) | StepResult::Done => {
                unreachable!("park() never leaves an invisible action outstanding")
            }
        }
    }

    /// Enumerates the enabled transitions, in deterministic order (warps
    /// ascending, then drainable lines ascending).
    #[must_use]
    pub fn choices(&self, program: &Program) -> Vec<Choice> {
        let mut out = Vec::new();
        for widx in 0..self.warps.len() as u32 {
            if self.warp_enabled(program, widx) {
                out.push(Choice::Warp(widx));
            }
        }
        for (&line, e) in &self.pending {
            if e.deps.is_empty() {
                out.push(Choice::Drain(line));
            }
        }
        out
    }

    /// Seals warp `widx`'s open entries and records them as its drain
    /// dependencies (`oFence`/`dFence`/`pAcq`/`pRel` all do this).
    fn ordering_point(&mut self, widx: u32) -> u32 {
        let mut sealed_now = 0;
        let mut own_lines = Vec::new();
        for (&line, e) in &mut self.pending {
            if e.owner == widx {
                if !e.sealed {
                    e.sealed = true;
                    sealed_now += 1;
                }
                own_lines.push(line);
            }
        }
        self.warp_deps[widx as usize].extend(own_lines);
        sealed_now
    }

    fn record_persist(
        &mut self,
        program: &Program,
        widx: u32,
        lane: u8,
        addr: u64,
    ) -> (EventId, Mark) {
        let t = lane_thread(program, widx, lane);
        let ev = self.tb.persist(t, addr);
        let n = &mut self.warps[widx as usize].persist_counts[usize::from(lane)];
        let mark = (t.block.0, t.tid_in_block, *n);
        *n += 1;
        self.marks.insert(mark, ev);
        (ev, mark)
    }

    /// Records a warp-wide fence op for every lane's thread.
    fn record_warp_op(&mut self, program: &Program, widx: u32, op: PersistOpKind) {
        for lane in 0..WARP_SIZE as u8 {
            let t = lane_thread(program, widx, lane);
            self.tb.op(t, op, None);
        }
    }

    fn make_durable(&mut self, ev: EventId, mark: Mark, addr: u64) {
        self.durable_ids.insert(ev);
        self.durable_marks.insert(mark);
        self.durable_addrs.insert(addr);
    }

    /// Removes a drained (or never-buffered) line from every dependency
    /// set.
    fn prune_line(&mut self, line: u64) {
        for e in self.pending.values_mut() {
            e.deps.remove(&line);
        }
        for d in &mut self.warp_deps {
            d.remove(&line);
        }
        for r in self.flags.values_mut() {
            r.deps.remove(&line);
        }
    }

    /// Verifies the durable set is still downward-closed under the PMO of
    /// the trace so far — every reachable state is a crash cut.
    fn check_crash_cut(&self, out: &mut Vec<Violation>) {
        if let Err(v) = self.tb.clone().finish().check_crash_cut(&self.durable_ids) {
            out.push(Violation {
                kind: ViolationKind::CrashCut,
                message: v.to_string(),
                schedule: self.schedule.clone(),
            });
        }
    }

    fn fire_store(
        &mut self,
        program: &Program,
        widx: u32,
        acc: &sbrp_isa::MemAccess,
        out: &mut Vec<Violation>,
    ) {
        let mut touched_durable = false;
        let lanes = acc.lanes.clone();
        for l in &lanes {
            self.mem.insert(l.addr, l.value);
            if l.addr < program.pm_base {
                continue;
            }
            let (ev, mark) = self.record_persist(program, widx, l.lane, l.addr);
            if program.domain == PersistDomain::Eadr {
                // eADR: durable at acceptance — nothing is ever buffered.
                self.make_durable(ev, mark, l.addr);
                touched_durable = true;
                continue;
            }
            let line = line_of(l.addr);
            if let Some(e) = self.pending.get_mut(&line) {
                debug_assert!(e.owner == widx && !e.sealed, "store fired while stalled");
                e.writes.insert(l.addr, l.value);
                e.events.push((ev, mark));
            } else {
                let deps = if program.model.is_buffered() {
                    self.warp_deps[widx as usize].clone()
                } else {
                    BTreeSet::new()
                };
                let mut writes = BTreeMap::new();
                writes.insert(l.addr, l.value);
                self.pending.insert(
                    line,
                    Entry {
                        owner: widx,
                        sealed: false,
                        writes,
                        events: vec![(ev, mark)],
                        deps,
                    },
                );
            }
        }
        if touched_durable {
            self.check_crash_cut(out);
        }
        self.warps[widx as usize].interp.complete();
    }

    fn fire_fence(
        &mut self,
        program: &Program,
        widx: u32,
        fence: FenceAccess,
        evidence: &mut Evidence,
        out: &mut Vec<Violation>,
    ) {
        let sbrp = program.model == ModelKind::Sbrp;
        match fence {
            FenceAccess::OFence => {
                assert!(
                    sbrp,
                    "oFence under {:?}: the model does not order it",
                    program.model
                );
                let sealed_now = self.ordering_point(widx);
                let idx = self.warps[widx as usize].ofences_fired;
                self.warps[widx as usize].ofences_fired += 1;
                let site = evidence.ofence_sites.entry(widx).or_insert(0);
                *site = (*site).max(idx + 1);
                if sealed_now > 0 {
                    evidence.nonvacuous_ofences.insert((widx, idx));
                }
                self.record_warp_op(program, widx, PersistOpKind::OFence);
                self.warps[widx as usize].interp.complete();
            }
            FenceAccess::DFence => {
                assert!(
                    sbrp,
                    "dFence under {:?}: the model does not drain it",
                    program.model
                );
                self.ordering_point(widx);
                self.warps[widx as usize].dfences_fired += 1;
                self.record_warp_op(program, widx, PersistOpKind::DFence);
                // Immediate durability: every persist this warp issued
                // must be durable when the dFence completes.
                let w = &self.warps[widx as usize];
                for lane in 0..WARP_SIZE {
                    let t = lane_thread(program, widx, lane as u8);
                    for n in 0..w.persist_counts[lane] {
                        let mark = (t.block.0, t.tid_in_block, n);
                        if !self.durable_marks.contains(&mark) {
                            out.push(Violation {
                                kind: ViolationKind::DFenceIncomplete,
                                message: format!(
                                    "dFence of warp {widx} completed while persist #{n} of \
                                     thread {t} was not durable"
                                ),
                                schedule: self.schedule.clone(),
                            });
                        }
                    }
                }
                self.warps[widx as usize].interp.complete();
            }
            FenceAccess::EpochBarrier => {
                assert!(
                    !sbrp,
                    "epochBarrier under Sbrp: kernels choose one model's operations"
                );
                self.record_warp_op(program, widx, PersistOpKind::EpochBarrier);
                self.warps[widx as usize].interp.complete();
            }
            FenceAccess::SyncBlock => {
                self.warps[widx as usize].arrived = true;
                let wpb = program.launch.warps_per_block();
                let block = widx / wpb;
                let members: Vec<u32> = (block * wpb..(block + 1) * wpb).collect();
                if members
                    .iter()
                    .all(|&m| self.warps[m as usize].done || self.warps[m as usize].arrived)
                {
                    for &m in &members {
                        let w = &mut self.warps[m as usize];
                        if w.arrived {
                            w.arrived = false;
                            w.interp.complete();
                            w.parked = None;
                            w.park();
                        }
                    }
                }
                // The arriving warp's completion is handled above with
                // the rest of its block (or deferred until the last
                // arrival): nothing more to do for this arm.
            }
            FenceAccess::PAcq { scope, lanes } => {
                assert!(sbrp, "pAcq under {:?}", program.model);
                self.fire_pacq(program, widx, scope, &lanes, evidence);
            }
            FenceAccess::PRel { scope, lanes } => {
                assert!(sbrp, "pRel under {:?}", program.model);
                self.fire_prel(program, widx, scope, &lanes);
            }
        }
    }

    /// The `pAcq` arm of [`Self::fire_fence`]: acts as an ordering
    /// point, loads each lane's flag, and on observing a matching
    /// release inherits its persist dependencies — unless the effective
    /// scope excludes the acquirer, which is the §5.3 scoped
    /// persistency bug (value flows, order does not).
    fn fire_pacq(
        &mut self,
        program: &Program,
        widx: u32,
        scope: Scope,
        lanes: &[LaneAccess],
        evidence: &mut Evidence,
    ) {
        self.ordering_point(widx);
        let mut values = Vec::with_capacity(lanes.len());
        for l in lanes {
            let t = lane_thread(program, widx, l.lane);
            let value = self.mem.get(&l.addr).copied().unwrap_or(0);
            values.push(value);
            let acq = self.tb.op(t, PersistOpKind::PAcq(scope), Some(l.addr));
            let Some(rec) = self.flags.get(&l.addr) else {
                continue;
            };
            if rec.value != value {
                continue;
            }
            let (rec_ev, rec_thread, rec_scope) = (rec.ev, rec.thread, rec.scope);
            let inherited = rec.deps.clone();
            self.observations += 1;
            evidence.any_observation = true;
            self.tb.observe(acq, rec_ev);
            let effective = rec_scope.min(scope);
            if rec_thread.shares_scope(t, effective) {
                self.warp_deps[widx as usize].extend(inherited);
            } else {
                // §5.3: the value flowed but no persist order
                // was created — faithfully inherit nothing.
                self.scope_bugs += 1;
                evidence.any_scope_bug = true;
            }
        }
        self.warps[widx as usize].interp.complete_load(&values);
    }

    /// The `pRel` arm of [`Self::fire_fence`]: acts as an ordering
    /// point, then publishes each lane's flag value together with the
    /// warp's accumulated persist dependencies for a later `pAcq` to
    /// inherit.
    fn fire_prel(&mut self, program: &Program, widx: u32, scope: Scope, lanes: &[LaneAccess]) {
        self.ordering_point(widx);
        let covered = self.warp_deps[widx as usize].clone();
        for l in lanes {
            let t = lane_thread(program, widx, l.lane);
            let ev = self.tb.op(t, PersistOpKind::PRel(scope), Some(l.addr));
            self.mem.insert(l.addr, l.value);
            self.flags.insert(
                l.addr,
                RelRecord {
                    ev,
                    thread: t,
                    scope,
                    value: l.value,
                    deps: covered.clone(),
                },
            );
        }
        self.warps[widx as usize].interp.complete();
    }

    /// Fires `choice`, which must be enabled, appending any violations
    /// the built-in checks detect (crash-cut closure after durability
    /// changes, dFence completion durability) and evidence facts.
    pub(crate) fn apply(
        &mut self,
        program: &Program,
        choice: Choice,
        evidence: &mut Evidence,
        out: &mut Vec<Violation>,
    ) {
        self.schedule.push(choice);
        match choice {
            Choice::Warp(widx) => {
                let action = self.warps[widx as usize]
                    .parked
                    .take()
                    .expect("firing a warp with no parked action");
                match action {
                    StepResult::Mem(acc) => match acc.kind {
                        AccessKind::Store => self.fire_store(program, widx, &acc, out),
                        AccessKind::Load | AccessKind::LoadVolatile => {
                            let values: Vec<u64> = acc
                                .lanes
                                .iter()
                                .map(|l| self.mem.get(&l.addr).copied().unwrap_or(0))
                                .collect();
                            self.warps[widx as usize].interp.complete_load(&values);
                        }
                        AccessKind::AtomAdd => {
                            let values: Vec<u64> = acc
                                .lanes
                                .iter()
                                .map(|l| {
                                    let old = self.mem.get(&l.addr).copied().unwrap_or(0);
                                    self.mem.insert(l.addr, old.wrapping_add(l.value));
                                    old
                                })
                                .collect();
                            self.warps[widx as usize].interp.complete_load(&values);
                        }
                    },
                    StepResult::Fence(f) => {
                        self.fire_fence(program, widx, f, evidence, out);
                        if self.warps[widx as usize].arrived {
                            return; // still waiting at the barrier
                        }
                    }
                    other => unreachable!("parked invisible action {other:?}"),
                }
                self.warps[widx as usize].park();
            }
            Choice::Drain(line) => {
                let entry = self
                    .pending
                    .remove(&line)
                    .expect("draining a line with no entry");
                debug_assert!(entry.deps.is_empty(), "drained an ineligible entry");
                for (ev, mark) in &entry.events {
                    self.durable_ids.insert(*ev);
                    self.durable_marks.insert(*mark);
                }
                for &addr in entry.writes.keys() {
                    self.durable_addrs.insert(addr);
                }
                self.prune_line(line);
                self.check_crash_cut(out);
            }
        }
    }

    /// Canonical fingerprint of the state: equal fingerprints mean equal
    /// future behaviour for every check the explorer performs.
    ///
    /// The accumulated trace, event ids, and schedule are deliberately
    /// excluded: two states that agree on everything else differ only in
    /// pmo-transparent event history (e.g. extra failed spin acquires),
    /// so their futures verify identically — this exclusion is what lets
    /// spin loops terminate the exploration. See DESIGN.md for the
    /// soundness argument.
    #[must_use]
    pub fn fingerprint(&self, program: &Program, blocks: &BlockIndex) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(match program.model {
            ModelKind::Gpm => 0,
            ModelKind::Epoch => 1,
            ModelKind::Sbrp => 2,
        });
        fp.write_u64(match program.domain {
            PersistDomain::Adr => 0,
            PersistDomain::Eadr => 1,
        });
        for w in &self.warps {
            fp.write_str("warp");
            w.interp.fingerprint_into(blocks, &mut fp);
            fp.write_u64(u64::from(w.done));
            fp.write_u64(u64::from(w.arrived));
            for &c in &w.persist_counts {
                fp.write_u64(u64::from(c));
            }
            fp.write_u64(u64::from(w.ofences_fired));
            fp.write_u64(u64::from(w.dfences_fired));
        }
        fp.write_str("mem");
        for (&a, &v) in &self.mem {
            fp.write_u64(a);
            fp.write_u64(v);
        }
        fp.write_str("pb");
        for (&line, e) in &self.pending {
            fp.write_u64(line);
            fp.write_u64(u64::from(e.owner));
            fp.write_u64(u64::from(e.sealed));
            for (&a, &v) in &e.writes {
                fp.write_u64(a);
                fp.write_u64(v);
            }
            fp.write_u64(u64::MAX); // section guard
            for (_, (b, t, n)) in &e.events {
                fp.write_u64(u64::from(*b));
                fp.write_u64(u64::from(*t));
                fp.write_u64(u64::from(*n));
            }
            fp.write_u64(u64::MAX);
            for &d in &e.deps {
                fp.write_u64(d);
            }
        }
        fp.write_str("deps");
        for d in &self.warp_deps {
            fp.write_u64(u64::MAX);
            for &line in d {
                fp.write_u64(line);
            }
        }
        fp.write_str("flags");
        for (&a, r) in &self.flags {
            fp.write_u64(a);
            let (b, t) = tkey(r.thread);
            fp.write_u64(u64::from(b));
            fp.write_u64(u64::from(t));
            fp.write_u64(r.scope as u64);
            fp.write_u64(r.value);
            for &d in &r.deps {
                fp.write_u64(d);
            }
            fp.write_u64(u64::MAX);
        }
        fp.write_str("durable");
        for &(b, t, n) in &self.durable_marks {
            fp.write_u64(u64::from(b));
            fp.write_u64(u64::from(t));
            fp.write_u64(u64::from(n));
        }
        for &a in &self.durable_addrs {
            fp.write_u64(a);
        }
        fp.write_u64(u64::from(self.observations));
        fp.write_u64(u64::from(self.scope_bugs));
        fp.finish()
    }
}
