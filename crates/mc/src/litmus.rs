//! Kernel-backed litmus shapes, model-checked exhaustively.
//!
//! Each shape here is a *program* — an [`sbrp_isa`] kernel plus launch
//! geometry — rather than a hand-written trace. The hand-written traces
//! that used to live in `sbrp_core::formal::litmus` are now *derived*
//! artifacts: [`McLitmus::derive`] interprets the kernel under the
//! canonical schedule and hands back a [`Litmus`] whose graph was
//! produced by execution, not by hand. Deriving kills the classic
//! hand-trace failure mode (the trace drifting from what any real
//! execution can produce) and, because the same program feeds
//! [`crate::explore`], upgrades each shape from "this one interleaving
//! behaves as required" to "*every* interleaving, drain order, and
//! crash cut behaves as required".
//!
//! Writer sides predicate persists on lane 0 so each `W(x)` of the
//! paper's shapes is exactly one persist event, keeping derived graphs
//! as close to the original hand traces as warp semantics allow.
//! Message-passing consumers *spin* on the flag, so every complete
//! execution observes the release — which is what lets shapes state
//! their expectation under [`ObsCond::Observed`] without vacuity.

use crate::explore::canonical_run;
use crate::spec::{Invariant, McExpectation, ObsCond, PRef, PersistDomain, Program, Reach, Spec};
use sbrp_core::formal::litmus::{Expectation, Litmus};
use sbrp_core::ops::ModelKind;
use sbrp_core::scope::{Scope, ThreadPos};
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

/// PM boundary for litmus programs: the shapes persist to `0x1000` and
/// up, and use sub-`0x1000` addresses (e.g. `0x80`) as volatile flags.
pub const LITMUS_PM_BASE: u64 = 0x1000;

/// A litmus shape as a checkable program.
pub struct McLitmus {
    /// Short name, matching the paper's shape (e.g. `"MP+block"`).
    pub name: &'static str,
    /// One-line description of what the shape exercises.
    pub description: &'static str,
    /// The kernel, geometry, model, and persist domain.
    pub program: Program,
    /// What every execution must satisfy.
    pub spec: Spec,
}

impl std::fmt::Debug for McLitmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McLitmus")
            .field("name", &self.name)
            .field("model", &self.program.model)
            .finish_non_exhaustive()
    }
}

impl McLitmus {
    /// Derives the classic trace-level [`Litmus`] by running the kernel
    /// under the canonical schedule and resolving each persist
    /// reference against the resulting trace. Only expectations whose
    /// [`ObsCond`] matches the canonical execution (e.g. `Observed`
    /// when the canonical run's consumer saw the flag) are carried
    /// over.
    ///
    /// # Panics
    /// Panics if an applicable expectation references a persist the
    /// canonical execution never issued — a malformed shape.
    #[must_use]
    pub fn derive(&self) -> Litmus {
        let st = canonical_run(&self.program);
        let expectations = self
            .spec
            .expectations
            .iter()
            .filter(|e| match e.when {
                ObsCond::Always => true,
                ObsCond::Observed => st.observations() > 0,
                ObsCond::Unobserved => st.observations() == 0,
            })
            .map(|e| Expectation {
                before: resolve(&st, self.name, e.before),
                after: resolve(&st, self.name, e.after),
                ordered: e.ordered,
            })
            .collect();
        Litmus {
            name: self.name,
            description: self.description,
            graph: st.graph(),
            expectations,
        }
    }
}

fn resolve(st: &crate::state::State, name: &str, p: PRef) -> sbrp_core::formal::EventId {
    st.persist_event(p.thread, p.nth).unwrap_or_else(|| {
        panic!(
            "{name}: canonical run never issued persist #{} of {}",
            p.nth, p.thread
        )
    })
}

fn sbrp_program(kernel: sbrp_isa::Kernel, launch: LaunchConfig) -> Program {
    Program {
        kernel,
        launch,
        model: ModelKind::Sbrp,
        domain: PersistDomain::Adr,
        pm_base: LITMUS_PM_BASE,
    }
}

fn pref(block: u32, tid: u32, nth: u32) -> PRef {
    PRef {
        thread: ThreadPos::new(block, tid),
        nth,
    }
}

fn exp(before: PRef, after: PRef, ordered: bool, when: ObsCond) -> McExpectation {
    McExpectation {
        before,
        after,
        ordered,
        when,
    }
}

/// Emits `if (lane == 0) { *addr = val; }` — one persist event.
fn store_lane0(b: &mut KernelBuilder, addr: u64, val: u64) {
    let lane = b.special(Special::Lane);
    let is0 = b.eqi(lane, 0);
    b.if_then(is0, |b| {
        let a = b.movi(addr);
        let v = b.movi(val);
        b.st(a, 0, v, MemWidth::W8);
    });
}

/// Emits `if (lane == 0) { pRel_scope(flag, 1); }`.
fn release_lane0(b: &mut KernelBuilder, flag: u64, scope: Scope) {
    let lane = b.special(Special::Lane);
    let is0 = b.eqi(lane, 0);
    b.if_then(is0, |b| {
        let f = b.movi(flag);
        let one = b.movi(1);
        b.prel(f, one, scope);
    });
}

/// Emits `if (lane == 0) { while (pAcq_scope(flag) == 0) sleep; *data = 7; }`
/// — the spinning consumer. Every complete execution observes the
/// release.
fn spin_consume_lane0(b: &mut KernelBuilder, flag: u64, data: u64, scope: Scope) {
    let lane = b.special(Special::Lane);
    let is0 = b.eqi(lane, 0);
    b.if_then(is0, |b| {
        let f = b.movi(flag);
        b.while_loop(
            |b| {
                let v = b.pacq(f, scope);
                b.eqi(v, 0)
            },
            |b| b.sleep(1),
        );
        let a = b.movi(data);
        let v = b.movi(7);
        b.st(a, 0, v, MemWidth::W8);
    });
}

/// The standard two-warp message-passing kernel: the first role is the
/// producer (`W(data); pRel(flag)`), the second the spinning consumer
/// (`spin pAcq(flag); W(data2)`). `by_block` selects roles by block
/// (launch `2×32`) instead of by warp (launch `1×64`).
fn mp_kernel(
    name: &str,
    rel_scope: Scope,
    acq_scope: Scope,
    by_block: bool,
) -> (sbrp_isa::Kernel, LaunchConfig) {
    let mut b = KernelBuilder::new();
    let role = if by_block {
        b.special(Special::CtaId)
    } else {
        b.special(Special::WarpId)
    };
    let is_producer = b.eqi(role, 0);
    b.if_then_else(
        is_producer,
        |b| {
            store_lane0(b, 0x1000, 42);
            release_lane0(b, 0x80, rel_scope);
        },
        |b| {
            spin_consume_lane0(b, 0x80, 0x2000, acq_scope);
        },
    );
    let launch = if by_block {
        LaunchConfig::new(2, 32)
    } else {
        LaunchConfig::new(1, 64)
    };
    (b.build(name), launch)
}

/// `W(x); oFence; W(y)` — the gpKVS logging idiom (Fig. 4): the log
/// entry must persist before the pair it guards.
#[must_use]
pub fn intra_thread_ofence() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    b.ofence();
    store_lane0(&mut b, 0x2000, 2);
    McLitmus {
        name: "oFence",
        description: "oFence orders a thread's earlier persists before its later ones",
        program: sbrp_program(b.build("litmus-ofence"), LaunchConfig::new(1, 32)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 0, 1), true, ObsCond::Always),
                exp(pref(0, 0, 1), pref(0, 0, 0), false, ObsCond::Always),
            ],
            ..Spec::default()
        },
    }
}

/// Two persists with no intervening fence are unordered — epochs may
/// reorder freely within themselves.
#[must_use]
pub fn unfenced_persists() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    store_lane0(&mut b, 0x2000, 2);
    McLitmus {
        name: "no-fence",
        description: "persists without an intervening fence are unordered",
        program: sbrp_program(b.build("litmus-no-fence"), LaunchConfig::new(1, 32)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 0, 1), false, ObsCond::Always),
                exp(pref(0, 0, 1), pref(0, 0, 0), false, ObsCond::Always),
            ],
            ..Spec::default()
        },
    }
}

/// Message passing with block-scoped `pRel`/`pAcq` inside one
/// threadblock — the reduction idiom of Fig. 3 lines 12/18.
#[must_use]
pub fn message_passing_block() -> McLitmus {
    let (kernel, launch) = mp_kernel("litmus-mp-block", Scope::Block, Scope::Block, false);
    McLitmus {
        name: "MP+block",
        description: "block-scoped release/acquire orders persists within a threadblock",
        program: sbrp_program(kernel, launch),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 32, 0), true, ObsCond::Observed),
                exp(pref(0, 32, 0), pref(0, 0, 0), false, ObsCond::Observed),
            ],
            ..Spec::default()
        },
    }
}

/// The scoped persistency bug of §5.3: block-scoped operations used
/// *across* threadblocks create no inter-thread PMO.
#[must_use]
pub fn scoped_bug_block_across_blocks() -> McLitmus {
    let (kernel, launch) = mp_kernel("litmus-mp-block-x", Scope::Block, Scope::Block, true);
    McLitmus {
        name: "MP+block-across-blocks (bug)",
        description: "narrower-than-needed scope yields no PMO — the §5.3 persistency bug",
        program: sbrp_program(kernel, launch),
        spec: Spec {
            expectations: vec![exp(pref(0, 0, 0), pref(1, 0, 0), false, ObsCond::Observed)],
            // The bug is *reachable*, not just permitted: some crash cut
            // has the consumer's persist durable and the producer's lost.
            reach: vec![Reach {
                durable: 0x2000,
                not_durable: 0x1000,
            }],
            ..Spec::default()
        },
    }
}

/// Message passing with device scope across threadblocks — the
/// corrected version of Fig. 3 line 24.
#[must_use]
pub fn message_passing_device() -> McLitmus {
    let (kernel, launch) = mp_kernel("litmus-mp-device", Scope::Device, Scope::Device, true);
    McLitmus {
        name: "MP+device",
        description: "device-scoped release/acquire orders persists across threadblocks",
        program: sbrp_program(kernel, launch),
        spec: Spec {
            expectations: vec![exp(pref(0, 0, 0), pref(1, 0, 0), true, ObsCond::Observed)],
            ..Spec::default()
        },
    }
}

/// Three-warp transitive chain (`W1 → rel/acq → W2 → rel/acq → W3`).
#[must_use]
pub fn transitive_chain() -> McLitmus {
    let mut b = KernelBuilder::new();
    let wid = b.special(Special::WarpId);
    let is0 = b.eqi(wid, 0);
    let is1 = b.eqi(wid, 1);
    b.if_then_else(
        is0,
        |b| {
            store_lane0(b, 0x1000, 1);
            release_lane0(b, 0x80, Scope::Block);
        },
        |b| {
            b.if_then_else(
                is1,
                |b| {
                    spin_consume_lane0(b, 0x80, 0x2000, Scope::Block);
                    release_lane0(b, 0x88, Scope::Block);
                },
                |b| {
                    spin_consume_lane0(b, 0x88, 0x3000, Scope::Block);
                },
            );
        },
    );
    McLitmus {
        name: "ISA2-like chain",
        description: "PMO is transitive across release/acquire chains",
        program: sbrp_program(b.build("litmus-isa2"), LaunchConfig::new(1, 96)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 64, 0), true, ObsCond::Observed),
                exp(pref(0, 64, 0), pref(0, 0, 0), false, ObsCond::Observed),
            ],
            ..Spec::default()
        },
    }
}

/// dFence behaves at least as an ordering fence.
#[must_use]
pub fn dfence_orders() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    b.dfence();
    store_lane0(&mut b, 0x2000, 2);
    McLitmus {
        name: "dFence",
        description: "dFence provides the ordering guarantees of oFence",
        program: sbrp_program(b.build("litmus-dfence"), LaunchConfig::new(1, 32)),
        spec: Spec {
            expectations: vec![exp(pref(0, 0, 0), pref(0, 0, 1), true, ObsCond::Always)],
            ..Spec::default()
        },
    }
}

/// dFence is a *durability* fence, not just an ordering fence: in every
/// reachable state where the post-fence persist is durable, the
/// pre-fence persist already is, and the built-in completion check
/// proves the fence cannot retire before its prefix is crash-safe.
#[must_use]
pub fn dfence_immediate_durability() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    b.dfence();
    store_lane0(&mut b, 0x2000, 2);
    McLitmus {
        name: "dFence-immediate",
        description: "dFence completion implies the durability of every prior persist, \
                      in every crash cut",
        program: sbrp_program(b.build("litmus-dfence-imm"), LaunchConfig::new(1, 32)),
        spec: Spec {
            invariants: vec![Invariant::AddrImplies {
                if_durable: 0x2000,
                then_durable: 0x1000,
            }],
            expectations: vec![exp(pref(0, 0, 0), pref(0, 0, 1), true, ObsCond::Always)],
            ..Spec::default()
        },
    }
}

/// The epoch-model shape under either baseline model: barriers order
/// persists across epochs, not within them.
fn epoch_shape(model: ModelKind, name: &'static str, kname: &str) -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    b.epoch_barrier();
    store_lane0(&mut b, 0x2000, 2);
    b.epoch_barrier();
    store_lane0(&mut b, 0x3000, 3);
    McLitmus {
        name,
        description: "epoch barriers order persists across epochs, not within them",
        program: Program {
            kernel: b.build(kname),
            launch: LaunchConfig::new(1, 32),
            model,
            domain: PersistDomain::Adr,
            pm_base: LITMUS_PM_BASE,
        },
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 0, 1), true, ObsCond::Always),
                exp(pref(0, 0, 1), pref(0, 0, 2), true, ObsCond::Always),
                exp(pref(0, 0, 0), pref(0, 0, 2), true, ObsCond::Always),
                exp(pref(0, 0, 2), pref(0, 0, 0), false, ObsCond::Always),
            ],
            ..Spec::default()
        },
    }
}

/// The baselines' epoch barrier under the epoch model.
#[must_use]
pub fn epoch_barrier_orders() -> McLitmus {
    epoch_shape(ModelKind::Epoch, "epoch", "litmus-epoch")
}

/// The same epoch shape under GPM (whose barrier also flushes volatile
/// traffic; the persist ordering obligations are identical).
#[must_use]
pub fn epoch_barrier_orders_gpm() -> McLitmus {
    epoch_shape(ModelKind::Gpm, "epoch (GPM)", "litmus-epoch-gpm")
}

/// Acquire without a matching release observation creates no edge. The
/// consumer runs *first* in the canonical schedule (it is warp 0) and
/// does not spin, so the canonical execution reads the flag's initial
/// value; exploration additionally proves the observed interleavings
/// *are* ordered.
#[must_use]
pub fn acquire_of_initial_value() -> McLitmus {
    let mut b = KernelBuilder::new();
    let wid = b.special(Special::WarpId);
    let is_consumer = b.eqi(wid, 0);
    b.if_then_else(
        is_consumer,
        |b| {
            let lane = b.special(Special::Lane);
            let is0 = b.eqi(lane, 0);
            b.if_then(is0, |b| {
                let f = b.movi(0x80);
                let _ = b.pacq(f, Scope::Block);
                let a = b.movi(0x2000);
                let v = b.movi(7);
                b.st(a, 0, v, MemWidth::W8);
            });
        },
        |b| {
            store_lane0(b, 0x1000, 42);
            release_lane0(b, 0x80, Scope::Block);
        },
    );
    McLitmus {
        name: "MP+unobserved",
        description: "an acquire that did not read the release's value orders nothing",
        program: sbrp_program(b.build("litmus-mp-unobserved"), LaunchConfig::new(1, 64)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 32, 0), pref(0, 0, 0), false, ObsCond::Unobserved),
                exp(pref(0, 32, 0), pref(0, 0, 0), true, ObsCond::Observed),
            ],
            ..Spec::default()
        },
    }
}

/// A block-scoped release observed by a *device*-scoped acquire in
/// another block: the pattern's effective scope is the narrowest
/// constituent (§2), so widening only the acquire does not repair the
/// §5.3 bug.
#[must_use]
pub fn block_release_observed_device_wide() -> McLitmus {
    let (kernel, launch) = mp_kernel("litmus-mp-bd", Scope::Block, Scope::Device, true);
    McLitmus {
        name: "MP+block-rel+device-acq (bug)",
        description: "a block-scoped release observed device-wide still takes the \
                      narrowest scope — widening one side does not create PMO",
        program: sbrp_program(kernel, launch),
        spec: Spec {
            expectations: vec![exp(pref(0, 0, 0), pref(1, 0, 0), false, ObsCond::Observed)],
            reach: vec![Reach {
                durable: 0x2000,
                not_durable: 0x1000,
            }],
            ..Spec::default()
        },
    }
}

/// The symmetric widening: a *system*-scoped acquire reading a
/// device-scoped release across blocks. Device already includes both
/// threads, so here the narrowest constituent suffices and PMO holds.
#[must_use]
pub fn device_release_observed_system_wide() -> McLitmus {
    let (kernel, launch) = mp_kernel("litmus-mp-ds", Scope::Device, Scope::System, true);
    McLitmus {
        name: "MP+device-rel+system-acq",
        description: "mixed device/system scopes: the narrowest constituent (device) \
                      includes both threads, so the edge exists",
        program: sbrp_program(kernel, launch),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(1, 0, 0), true, ObsCond::Observed),
                exp(pref(1, 0, 0), pref(0, 0, 0), false, ObsCond::Observed),
            ],
            ..Spec::default()
        },
    }
}

/// `W1; dFence; W2; oFence; W3` — the two fence kinds compose
/// transitively within a thread.
#[must_use]
pub fn dfence_ofence_transitivity_chain() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    b.dfence();
    store_lane0(&mut b, 0x2000, 2);
    b.ofence();
    store_lane0(&mut b, 0x3000, 3);
    McLitmus {
        name: "dFence/oFence chain",
        description: "dFence and oFence compose transitively: W1 dFence W2 oFence W3 \
                      orders W1 before W3",
        program: sbrp_program(b.build("litmus-chain"), LaunchConfig::new(1, 32)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 0, 1), true, ObsCond::Always),
                exp(pref(0, 0, 1), pref(0, 0, 2), true, ObsCond::Always),
                exp(pref(0, 0, 0), pref(0, 0, 2), true, ObsCond::Always),
                exp(pref(0, 0, 2), pref(0, 0, 0), false, ObsCond::Always),
            ],
            ..Spec::default()
        },
    }
}

/// A release also covers persists an *earlier* fence already ordered —
/// crossing a dFence into a block-scoped handoff keeps the whole prefix
/// released (the "release covers all prior persists" rule of Box 2).
#[must_use]
pub fn dfence_prefix_flows_through_release() -> McLitmus {
    let mut b = KernelBuilder::new();
    let wid = b.special(Special::WarpId);
    let is_producer = b.eqi(wid, 0);
    b.if_then_else(
        is_producer,
        |b| {
            store_lane0(b, 0x1000, 1);
            b.dfence();
            store_lane0(b, 0x1800, 2);
            release_lane0(b, 0x80, Scope::Block);
        },
        |b| {
            spin_consume_lane0(b, 0x80, 0x2000, Scope::Block);
        },
    );
    McLitmus {
        name: "dFence-prefix+MP",
        description: "persists ordered by an earlier dFence still flow through a later \
                      release/acquire handoff",
        program: sbrp_program(b.build("litmus-dfence-mp"), LaunchConfig::new(1, 64)),
        spec: Spec {
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 32, 0), true, ObsCond::Observed),
                exp(pref(0, 32, 0), pref(0, 0, 0), false, ObsCond::Observed),
            ],
            ..Spec::default()
        },
    }
}

/// The eADR persist-domain variant of the no-fence shape: two unfenced
/// persists stay PMO-unordered, yet *both* are durable in every crash
/// cut — battery-backed caches collapse the durability question without
/// changing the ordering model.
#[must_use]
pub fn eadr_unfenced_always_durable() -> McLitmus {
    let mut b = KernelBuilder::new();
    store_lane0(&mut b, 0x1000, 1);
    store_lane0(&mut b, 0x2000, 2);
    McLitmus {
        name: "no-fence+eADR",
        description: "under eADR every accepted persist is durable at once: nothing is \
                      ever pending, yet the PMO stays as weak as under ADR",
        program: Program {
            kernel: b.build("litmus-eadr"),
            launch: LaunchConfig::new(1, 32),
            model: ModelKind::Sbrp,
            domain: PersistDomain::Eadr,
            pm_base: LITMUS_PM_BASE,
        },
        spec: Spec {
            invariants: vec![
                Invariant::NoPending,
                Invariant::DurableAtExit { addr: 0x1000 },
                Invariant::DurableAtExit { addr: 0x2000 },
            ],
            expectations: vec![
                exp(pref(0, 0, 0), pref(0, 0, 1), false, ObsCond::Always),
                exp(pref(0, 0, 1), pref(0, 0, 0), false, ObsCond::Always),
            ],
            ..Spec::default()
        },
    }
}

/// All litmus shapes, in presentation order.
#[must_use]
pub fn all() -> Vec<McLitmus> {
    vec![
        intra_thread_ofence(),
        unfenced_persists(),
        message_passing_block(),
        scoped_bug_block_across_blocks(),
        message_passing_device(),
        transitive_chain(),
        dfence_orders(),
        dfence_immediate_durability(),
        epoch_barrier_orders(),
        epoch_barrier_orders_gpm(),
        acquire_of_initial_value(),
        block_release_observed_device_wide(),
        device_release_observed_system_wide(),
        dfence_ofence_transitivity_chain(),
        dfence_prefix_flows_through_release(),
        eadr_unfenced_always_durable(),
    ]
}
