//! Dynamic cross-validation of the static linter.
//!
//! `sbrp-lint` flags kernels *statically*; this module closes the loop
//! by model-checking every kernel of [`sbrp_lint::mutants::suite`] and
//! proving, per mutant, that the lint verdict corresponds to real
//! executions:
//!
//! * **broken mutants with a durability bug** (`wal_fence_deleted`,
//!   `mp_scope_narrowed`, `epoch_barrier_dropped`, `trailing_persist`)
//!   get a *concrete counterexample* — a shrunk schedule after which
//!   the recovery invariant is broken — plus a reachability witness;
//! * **their correct counterparts** (`wal_correct`, `mp_device_correct`,
//!   `epoch_correct`) are verified over the full state space with the
//!   same invariant, proving the lint's silence is justified;
//! * **warning-class mutants** (`unmatched_release`, `redundant_fence`,
//!   `dfence_in_loop`) have no violating execution — their evidence is
//!   the structural fact the warning asserts, checked over *all*
//!   executions: a release no acquire ever observes, a fence that
//!   seals nothing in any interleaving, a drain on every one of the
//!   loop's iterations.
//!
//! The message-passing pair is re-parameterized to place its `sink` in
//! persistent memory: the lint's §5.3 complaint is about *persist*
//! ordering, so the dynamic witness must be a persist that becomes
//! durable before the data it depends on.

use crate::explore::{explore, shrink, witness_reach, McOpts, WitnessTarget};
use crate::spec::{
    Choice, Invariant, McReport, PersistDomain, Program, Reach, Spec, ViolationKind,
};
use sbrp_core::ops::ModelKind;
use sbrp_isa::LaunchConfig;
use sbrp_lint::mutants::{suite, Mutant};
use sbrp_lint::{apply_fix, lint_all, Diagnostic, Hazard, LintConfig, Severity};

/// PM window base used for cross-validation (matches the lint tests).
pub const PM_BASE: u64 = 1 << 40;

/// Launch sizes up to this many threads are exhaustively explorable
/// within the default state budget; larger launches get `Approx`
/// witnesses instead of a search.
pub const TRACTABLE_THREADS: u64 = 128;

/// Whether a launch is small enough for exhaustive witness search.
#[must_use]
pub fn mc_tractable(launch: LaunchConfig) -> bool {
    launch.total_threads() <= TRACTABLE_THREADS
}

/// Outcome of the model-checked witness search for one error-severity
/// inter-thread lint diagnostic.
#[derive(Clone, Debug)]
pub enum WitnessOutcome {
    /// Shortest schedule reaching the hazard state the lint named.
    Schedule(Vec<Choice>),
    /// No search ran; the diagnostic stands as an approximation and
    /// the reason says why (launch too large, or no definite hazard).
    Approx(&'static str),
    /// The search exhausted the reachable states without meeting the
    /// hazard: the lint finding is conservative under this model.
    NotReached,
}

impl WitnessOutcome {
    /// True for [`WitnessOutcome::Schedule`].
    #[must_use]
    pub fn is_schedule(&self) -> bool {
        matches!(self, WitnessOutcome::Schedule(_))
    }
}

/// Searches for a reachable state matching `diag`'s hazard claim.
///
/// Error-severity inter-thread diagnostics name their crash scenario
/// as a [`Hazard`]; this turns the claim into a [`WitnessTarget`] and
/// asks the checker for the shortest schedule reaching it. Launches
/// beyond [`TRACTABLE_THREADS`] and diagnostics without a hazard are
/// reported [`WitnessOutcome::Approx`] rather than searched.
#[must_use]
pub fn interthread_witness(prog: &Program, diag: &Diagnostic, opts: &McOpts) -> WitnessOutcome {
    if !mc_tractable(prog.launch) {
        return WitnessOutcome::Approx("launch too large for exhaustive search");
    }
    let Some(h) = &diag.hazard else {
        return WitnessOutcome::Approx("hazard not statically definite");
    };
    let target = match *h {
        Hazard::MarkOrder { durable, lost } => WitnessTarget::Marks { durable, lost },
        Hazard::AddrOrder { durable, lost } => WitnessTarget::Addrs { durable, lost },
    };
    match witness_reach(prog, target, opts) {
        Some(s) => WitnessOutcome::Schedule(s),
        None => WitnessOutcome::NotReached,
    }
}

/// Applies `diag`'s machine fix to the program's kernel and explores
/// the result under `spec`: a sound fix model-checks clean.
///
/// # Panics
///
/// Panics when `diag` carries no fix.
#[must_use]
pub fn verify_fix(prog: &Program, spec: &Spec, diag: &Diagnostic, opts: &McOpts) -> McReport {
    let fix = diag.fix.as_ref().expect("diagnostic carries no fix");
    let mut fixed = prog.clone();
    fixed.kernel = apply_fix(&prog.kernel, fix);
    explore(&fixed, spec, opts)
}

/// The full inter-thread lint report for a mutant, at the geometry it
/// is meant for.
fn lint_report(m: &Mutant) -> sbrp_lint::LintReport {
    let cfg = LintConfig {
        pm_base: PM_BASE,
        launch: Some(m.launch),
    };
    lint_all(&m.kernel, &cfg)
}

/// Every error-severity diagnostic's witness outcome for `m`, plus the
/// first found schedule (stored as the evidence witness).
fn hazard_witnesses(
    m: &Mutant,
    prog: &Program,
    opts: &McOpts,
) -> (Vec<WitnessOutcome>, Option<Vec<Choice>>) {
    let report = lint_report(m);
    let outcomes: Vec<WitnessOutcome> = report
        .diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| interthread_witness(prog, d, opts))
        .collect();
    let first = outcomes.iter().find_map(|o| match o {
        WitnessOutcome::Schedule(s) => Some(s.clone()),
        _ => None,
    });
    (outcomes, first)
}

/// Explores the fix-rewritten kernel for the first diagnostic of `m`
/// with code `code`, under `spec`.
fn explore_fixed(
    m: &Mutant,
    prog: &Program,
    spec: &Spec,
    code: sbrp_lint::LintCode,
    opts: &McOpts,
) -> McReport {
    let report = lint_report(m);
    let diag = report
        .diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{}: lint reports no {code:?}", m.name));
    verify_fix(prog, spec, diag, opts)
}

/// The model-checking verdict for one lint mutant.
pub struct MutantEvidence {
    /// Mutant name (matches [`sbrp_lint::mutants::Mutant::name`]).
    pub name: &'static str,
    /// Whether the lint flags this mutant.
    pub lint_broken: bool,
    /// The full exploration report.
    pub report: McReport,
    /// For mutants with a durability bug: the shortest schedule that
    /// violates the recovery invariant.
    pub witness: Option<Vec<Choice>>,
    /// One line stating what the exploration proved.
    pub finding: String,
    /// Whether the dynamic evidence agrees with the lint verdict.
    pub agrees: bool,
}

fn program(m: &Mutant, model: ModelKind) -> Program {
    Program {
        kernel: m.kernel.clone(),
        launch: m.launch,
        model,
        domain: PersistDomain::Adr,
        pm_base: PM_BASE,
    }
}

/// The recovery invariant `durable(at) ⇒ durable(requires)` plus the
/// matching reach target for the broken variant.
fn implies(at: u64, requires: u64) -> (Invariant, Reach) {
    (
        Invariant::AddrImplies {
            if_durable: at,
            then_durable: requires,
        },
        Reach {
            durable: at,
            not_durable: requires,
        },
    )
}

/// The model-checking subject and spec for a named lint mutant, or
/// `None` for an unknown name. Public so tests can replay witnesses
/// against exactly the program the evidence ran on.
#[must_use]
pub fn program_and_spec(name: &str) -> Option<(Program, Spec)> {
    let m = suite(PM_BASE).into_iter().find(|m| m.name == name)?;
    let (prog, spec, _) = subject(&m);
    Some((prog, spec))
}

fn subject(m: &Mutant) -> (Program, Spec, bool) {
    // Representative persist addresses (thread 0's slot of each region).
    let wal_data = PM_BASE;
    let wal_log = PM_BASE + 0x10000;
    let epoch_dst = PM_BASE;
    let epoch_jrnl = PM_BASE + 0x20000;
    let mp_data = PM_BASE;
    let mp_sink = PM_BASE + 0x2000;

    match m.name {
        "wal_correct" | "wal_fence_deleted" => {
            let (inv, reach) = implies(wal_data, wal_log);
            let broken = m.name == "wal_fence_deleted";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, broken)
        }
        "mp_device_correct" | "mp_scope_narrowed" => {
            // Persist the sink so the §5.3 ordering question is about
            // two persists, as in the paper.
            let mut prog = program(m, ModelKind::Sbrp);
            prog.kernel = prog.kernel.with_params(vec![mp_data, 0x8000, mp_sink]);
            let (inv, reach) = implies(mp_sink, mp_data);
            let broken = m.name == "mp_scope_narrowed";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (prog, spec, broken)
        }
        "epoch_correct" | "epoch_barrier_dropped" => {
            let (inv, reach) = implies(epoch_dst, epoch_jrnl);
            let broken = m.name == "epoch_barrier_dropped";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (program(m, ModelKind::Epoch), spec, broken)
        }
        "trailing_persist" => {
            let spec = Spec {
                invariants: vec![Invariant::DurableAtExit { addr: PM_BASE }],
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, true)
        }
        // Warning-class mutants are explored with no extra invariants
        // (the evidence is structural), and so are the race-class
        // inter-thread mutants — those have no single recovery
        // invariant to state; their evidence is the reachability of the
        // lint hazard itself ([`hazard_witnesses`]).
        "unmatched_release"
        | "redundant_fence"
        | "dfence_in_loop"
        | "it_race_cross_block"
        | "it_drain_order" => (program(m, ModelKind::Sbrp), Spec::default(), false),
        "it_scope_narrow_pair" | "it_recovery_read" => {
            let (inv, reach) = implies(mp_sink, mp_data);
            let spec = Spec {
                invariants: vec![inv],
                reach: vec![reach],
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, true)
        }
        "it_dominated_fence" => {
            let spec = Spec {
                invariants: vec![Invariant::DurableAtExit { addr: PM_BASE }],
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, false)
        }
        "it_overwide_scope" => {
            let (inv, _) = implies(mp_sink, mp_data);
            let spec = Spec {
                invariants: vec![inv],
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, false)
        }
        other => panic!("no mc mapping for lint mutant `{other}`"),
    }
}

#[allow(clippy::too_many_lines)] // one arm per mutant family
fn check_one(m: &Mutant, opts: &McOpts) -> MutantEvidence {
    let (prog, spec, expect_violation) = subject(m);
    let report = explore(&prog, &spec, opts);
    // Hazard-reachability schedule for the race-class inter-thread
    // mutants (whose witness is not a spec violation).
    let mut it_witness: Option<Vec<Choice>> = None;

    let (agrees, finding) = match m.name {
        "wal_correct" | "mp_device_correct" | "epoch_correct" => (
            report.verified(),
            format!(
                "recovery invariant holds over {} states / {} transitions",
                report.states, report.transitions
            ),
        ),
        "wal_fence_deleted" | "mp_scope_narrowed" | "epoch_barrier_dropped" => {
            let has = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::AddrImplies);
            let reached = report.reached.first().is_some_and(Option::is_some);
            let scope_ok = m.name != "mp_scope_narrowed" || report.evidence.any_scope_bug;
            (
                has && reached && scope_ok,
                format!(
                    "found execution with dependent persist durable and its \
                     prerequisite lost ({} violating transitions)",
                    report
                        .violations
                        .iter()
                        .filter(|v| v.kind == ViolationKind::AddrImplies)
                        .count()
                ),
            )
        }
        "trailing_persist" => {
            let has = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::DurableAtExit);
            (
                has,
                "found crash cut after kernel exit with the trailing persist lost".into(),
            )
        }
        "unmatched_release" => (
            report.verified() && !report.evidence.any_observation,
            format!(
                "release observed by no acquire in any of {} states",
                report.states
            ),
        ),
        "redundant_fence" => {
            let first_useful = report.evidence.nonvacuous_ofences.contains(&(0, 0));
            let second_vacuous = !report.evidence.nonvacuous_ofences.contains(&(0, 1));
            let both_fired = report.evidence.ofence_sites.get(&0) == Some(&2);
            (
                report.verified() && first_useful && second_vacuous && both_fired,
                "second oFence seals no entry in any interleaving; the first does".into(),
            )
        }
        "dfence_in_loop" => {
            let n = (report.evidence.min_dfences, report.evidence.max_dfences);
            (
                report.verified() && n == (4, 4),
                format!(
                    "every complete execution drains {} times (once per iteration)",
                    n.0
                ),
            )
        }
        "it_race_cross_block" | "it_drain_order" => {
            // No single recovery invariant: the evidence is that the
            // hazard state each error diagnostic names — "that persist
            // durable while this one lost" — is reachable.
            let (outcomes, first) = hazard_witnesses(m, &prog, opts);
            it_witness = first;
            let none_refuted = outcomes
                .iter()
                .all(|o| !matches!(o, WitnessOutcome::NotReached));
            let some = outcomes.iter().any(WitnessOutcome::is_schedule);
            (
                report.verified() && none_refuted && some,
                format!(
                    "every lint hazard state is reachable ({} witness schedule(s))",
                    outcomes.len()
                ),
            )
        }
        "it_scope_narrow_pair" | "it_recovery_read" => {
            let has = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::AddrImplies);
            let reached = report.reached.first().is_some_and(Option::is_some);
            let scope_ok = m.name != "it_scope_narrow_pair" || report.evidence.any_scope_bug;
            let (outcomes, _) = hazard_witnesses(m, &prog, opts);
            let witnessed = outcomes.iter().any(WitnessOutcome::is_schedule)
                && outcomes
                    .iter()
                    .all(|o| !matches!(o, WitnessOutcome::NotReached));
            // The P008 fix widens both scopes to the pair's least
            // common scope; the rewritten kernel must check clean.
            let fixed_clean = if m.name == "it_scope_narrow_pair" {
                let clean_spec = Spec {
                    invariants: spec.invariants.clone(),
                    ..Spec::default()
                };
                explore_fixed(
                    m,
                    &prog,
                    &clean_spec,
                    sbrp_lint::LintCode::PairScopeTooNarrow,
                    opts,
                )
                .verified()
            } else {
                true
            };
            (
                has && reached && scope_ok && witnessed && fixed_clean,
                format!(
                    "republication durable with its source lost; {} lint hazard(s) \
                     witnessed; fix model-checks clean",
                    outcomes.len()
                ),
            )
        }
        "it_dominated_fence" => {
            let fixed = explore_fixed(m, &prog, &spec, sbrp_lint::LintCode::DominatedFence, opts);
            let equiv = fixed.verified() && fixed.signatures == report.signatures;
            (
                report.verified() && equiv,
                "dropping the dominated fence preserves durability and the \
                 execution-signature set"
                    .into(),
            )
        }
        "it_overwide_scope" => {
            let fixed = explore_fixed(m, &prog, &spec, sbrp_lint::LintCode::OverwideScope, opts);
            let equiv = fixed.verified() && fixed.signatures == report.signatures;
            (
                report.verified() && equiv,
                "narrowing the pair to block scope preserves the handoff \
                 invariant and the execution-signature set"
                    .into(),
            )
        }
        _ => unreachable!(),
    };

    let witness = if expect_violation {
        let kind = if m.name == "trailing_persist" {
            ViolationKind::DurableAtExit
        } else {
            ViolationKind::AddrImplies
        };
        shrink(&prog, &spec, kind, opts)
    } else {
        it_witness
    };

    MutantEvidence {
        name: m.name,
        lint_broken: m.is_broken(),
        report,
        witness,
        finding,
        agrees,
    }
}

/// Model-checks every lint mutant and returns the per-mutant evidence,
/// in suite order.
#[must_use]
pub fn cross_validate(opts: &McOpts) -> Vec<MutantEvidence> {
    suite(PM_BASE).iter().map(|m| check_one(m, opts)).collect()
}
