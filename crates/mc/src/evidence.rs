//! Dynamic cross-validation of the static linter.
//!
//! `sbrp-lint` flags kernels *statically*; this module closes the loop
//! by model-checking every kernel of [`sbrp_lint::mutants::suite`] and
//! proving, per mutant, that the lint verdict corresponds to real
//! executions:
//!
//! * **broken mutants with a durability bug** (`wal_fence_deleted`,
//!   `mp_scope_narrowed`, `epoch_barrier_dropped`, `trailing_persist`)
//!   get a *concrete counterexample* — a shrunk schedule after which
//!   the recovery invariant is broken — plus a reachability witness;
//! * **their correct counterparts** (`wal_correct`, `mp_device_correct`,
//!   `epoch_correct`) are verified over the full state space with the
//!   same invariant, proving the lint's silence is justified;
//! * **warning-class mutants** (`unmatched_release`, `redundant_fence`,
//!   `dfence_in_loop`) have no violating execution — their evidence is
//!   the structural fact the warning asserts, checked over *all*
//!   executions: a release no acquire ever observes, a fence that
//!   seals nothing in any interleaving, a drain on every one of the
//!   loop's iterations.
//!
//! The message-passing pair is re-parameterized to place its `sink` in
//! persistent memory: the lint's §5.3 complaint is about *persist*
//! ordering, so the dynamic witness must be a persist that becomes
//! durable before the data it depends on.

use crate::explore::{explore, shrink, McOpts};
use crate::spec::{
    Choice, Invariant, McReport, PersistDomain, Program, Reach, Spec, ViolationKind,
};
use sbrp_core::ops::ModelKind;
use sbrp_lint::mutants::{suite, Mutant};

/// PM window base used for cross-validation (matches the lint tests).
pub const PM_BASE: u64 = 1 << 40;

/// The model-checking verdict for one lint mutant.
pub struct MutantEvidence {
    /// Mutant name (matches [`sbrp_lint::mutants::Mutant::name`]).
    pub name: &'static str,
    /// Whether the lint flags this mutant.
    pub lint_broken: bool,
    /// The full exploration report.
    pub report: McReport,
    /// For mutants with a durability bug: the shortest schedule that
    /// violates the recovery invariant.
    pub witness: Option<Vec<Choice>>,
    /// One line stating what the exploration proved.
    pub finding: String,
    /// Whether the dynamic evidence agrees with the lint verdict.
    pub agrees: bool,
}

fn program(m: &Mutant, model: ModelKind) -> Program {
    Program {
        kernel: m.kernel.clone(),
        launch: m.launch,
        model,
        domain: PersistDomain::Adr,
        pm_base: PM_BASE,
    }
}

/// The recovery invariant `durable(at) ⇒ durable(requires)` plus the
/// matching reach target for the broken variant.
fn implies(at: u64, requires: u64) -> (Invariant, Reach) {
    (
        Invariant::AddrImplies {
            if_durable: at,
            then_durable: requires,
        },
        Reach {
            durable: at,
            not_durable: requires,
        },
    )
}

/// The model-checking subject and spec for a named lint mutant, or
/// `None` for an unknown name. Public so tests can replay witnesses
/// against exactly the program the evidence ran on.
#[must_use]
pub fn program_and_spec(name: &str) -> Option<(Program, Spec)> {
    let m = suite(PM_BASE).into_iter().find(|m| m.name == name)?;
    let (prog, spec, _) = subject(&m);
    Some((prog, spec))
}

fn subject(m: &Mutant) -> (Program, Spec, bool) {
    // Representative persist addresses (thread 0's slot of each region).
    let wal_data = PM_BASE;
    let wal_log = PM_BASE + 0x10000;
    let epoch_dst = PM_BASE;
    let epoch_jrnl = PM_BASE + 0x20000;
    let mp_data = PM_BASE;
    let mp_sink = PM_BASE + 0x2000;

    match m.name {
        "wal_correct" | "wal_fence_deleted" => {
            let (inv, reach) = implies(wal_data, wal_log);
            let broken = m.name == "wal_fence_deleted";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, broken)
        }
        "mp_device_correct" | "mp_scope_narrowed" => {
            // Persist the sink so the §5.3 ordering question is about
            // two persists, as in the paper.
            let mut prog = program(m, ModelKind::Sbrp);
            prog.kernel = prog.kernel.with_params(vec![mp_data, 0x8000, mp_sink]);
            let (inv, reach) = implies(mp_sink, mp_data);
            let broken = m.name == "mp_scope_narrowed";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (prog, spec, broken)
        }
        "epoch_correct" | "epoch_barrier_dropped" => {
            let (inv, reach) = implies(epoch_dst, epoch_jrnl);
            let broken = m.name == "epoch_barrier_dropped";
            let spec = Spec {
                invariants: vec![inv],
                reach: if broken { vec![reach] } else { vec![] },
                ..Spec::default()
            };
            (program(m, ModelKind::Epoch), spec, broken)
        }
        "trailing_persist" => {
            let spec = Spec {
                invariants: vec![Invariant::DurableAtExit { addr: PM_BASE }],
                ..Spec::default()
            };
            (program(m, ModelKind::Sbrp), spec, true)
        }
        // Warning-class mutants: explored with no extra invariants; the
        // evidence is structural.
        "unmatched_release" | "redundant_fence" | "dfence_in_loop" => {
            (program(m, ModelKind::Sbrp), Spec::default(), false)
        }
        other => panic!("no mc mapping for lint mutant `{other}`"),
    }
}

fn check_one(m: &Mutant, opts: &McOpts) -> MutantEvidence {
    let (prog, spec, expect_violation) = subject(m);
    let report = explore(&prog, &spec, opts);

    let (agrees, finding) = match m.name {
        "wal_correct" | "mp_device_correct" | "epoch_correct" => (
            report.verified(),
            format!(
                "recovery invariant holds over {} states / {} transitions",
                report.states, report.transitions
            ),
        ),
        "wal_fence_deleted" | "mp_scope_narrowed" | "epoch_barrier_dropped" => {
            let has = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::AddrImplies);
            let reached = report.reached.first().is_some_and(Option::is_some);
            let scope_ok = m.name != "mp_scope_narrowed" || report.evidence.any_scope_bug;
            (
                has && reached && scope_ok,
                format!(
                    "found execution with dependent persist durable and its \
                     prerequisite lost ({} violating transitions)",
                    report
                        .violations
                        .iter()
                        .filter(|v| v.kind == ViolationKind::AddrImplies)
                        .count()
                ),
            )
        }
        "trailing_persist" => {
            let has = report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::DurableAtExit);
            (
                has,
                "found crash cut after kernel exit with the trailing persist lost".into(),
            )
        }
        "unmatched_release" => (
            report.verified() && !report.evidence.any_observation,
            format!(
                "release observed by no acquire in any of {} states",
                report.states
            ),
        ),
        "redundant_fence" => {
            let first_useful = report.evidence.nonvacuous_ofences.contains(&(0, 0));
            let second_vacuous = !report.evidence.nonvacuous_ofences.contains(&(0, 1));
            let both_fired = report.evidence.ofence_sites.get(&0) == Some(&2);
            (
                report.verified() && first_useful && second_vacuous && both_fired,
                "second oFence seals no entry in any interleaving; the first does".into(),
            )
        }
        "dfence_in_loop" => {
            let n = (report.evidence.min_dfences, report.evidence.max_dfences);
            (
                report.verified() && n == (4, 4),
                format!(
                    "every complete execution drains {} times (once per iteration)",
                    n.0
                ),
            )
        }
        _ => unreachable!(),
    };

    let witness = if expect_violation {
        let kind = if m.name == "trailing_persist" {
            ViolationKind::DurableAtExit
        } else {
            ViolationKind::AddrImplies
        };
        shrink(&prog, &spec, kind, opts)
    } else {
        None
    };

    MutantEvidence {
        name: m.name,
        lint_broken: m.is_broken(),
        report,
        witness,
        finding,
        agrees,
    }
}

/// Model-checks every lint mutant and returns the per-mutant evidence,
/// in suite order.
#[must_use]
pub fn cross_validate(opts: &McOpts) -> Vec<MutantEvidence> {
    suite(PM_BASE).iter().map(|m| check_one(m, opts)).collect()
}
