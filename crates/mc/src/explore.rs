//! Exhaustive exploration of a program's state space.
//!
//! The explorer enumerates every reachable canonical state of a
//! [`Program`] by depth-first search over [`State::choices`], deduping
//! on [`State::fingerprint`]. Collapsing the diamonds that independent
//! transitions generate is the partial-order reduction doing the heavy
//! lifting here: two independent actions fired in either order land in
//! the same canonical state, so only one interleaving's *suffix* is
//! explored (see DESIGN.md for why the fingerprint's exclusions keep
//! this sound).
//!
//! Exploration is deterministic and `--jobs`-independent: a serial
//! breadth-first phase grows a frontier of at most [`FRONTIER_TARGET`]
//! states, each frontier state becomes one cell of a
//! [`sbrp_harness::sweep`] run, and cell results are merged in cell
//! order. The same cell decomposition is used at every job count, so
//! `jobs = 1` and `jobs = N` produce byte-identical reports.

use crate::sig::ExecutionSig;
use crate::spec::{
    Choice, Evidence, Invariant, McReport, ObsCond, Program, Spec, Violation, ViolationKind,
};
use crate::state::State;
use sbrp_core::fingerprint::Fingerprint;
use sbrp_harness::sweep::{sweep, CellOutcome, FaultPolicy, SweepCell, SweepOpts};
use sbrp_isa::BlockIndex;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

/// Serial BFS stops (and the parallel phase starts) once the frontier
/// holds this many unexpanded states. Fixed — NOT derived from the job
/// count — so the cell decomposition, and therefore the merged report,
/// is identical at every `--jobs` value.
const FRONTIER_TARGET: usize = 64;

/// Exploration limits and parallelism.
#[derive(Clone, Copy, Debug)]
pub struct McOpts {
    /// Worker threads for the parallel frontier (`0` = hardware
    /// parallelism, `1` = serial). The report is identical at every
    /// value.
    pub jobs: usize,
    /// Safety valve: panic after this many distinct states (per phase /
    /// per cell) rather than exploring forever.
    pub max_states: u64,
}

impl Default for McOpts {
    fn default() -> Self {
        McOpts {
            jobs: 0,
            max_states: 10_000_000,
        }
    }
}

/// One exploration phase's accumulated result (serial prefix or one
/// cell); merged into the final [`McReport`] in deterministic order.
#[derive(Clone)]
struct Acc {
    states: u64,
    transitions: u64,
    dedup_hits: u64,
    complete: u64,
    violations: Vec<Violation>,
    reached: Vec<Option<Vec<Choice>>>,
    evidence: Evidence,
    signatures: BTreeSet<ExecutionSig>,
}

impl Acc {
    fn new(spec: &Spec) -> Acc {
        Acc {
            states: 0,
            transitions: 0,
            dedup_hits: 0,
            complete: 0,
            violations: Vec::new(),
            reached: vec![None; spec.reach.len()],
            evidence: Evidence::new(),
            signatures: BTreeSet::new(),
        }
    }

    fn merge(&mut self, other: &Acc) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.dedup_hits += other.dedup_hits;
        self.complete += other.complete;
        self.violations.extend(other.violations.iter().cloned());
        for (mine, theirs) in self.reached.iter_mut().zip(&other.reached) {
            if mine.is_none() {
                mine.clone_from(theirs);
            }
        }
        self.evidence.merge(&other.evidence);
        self.signatures.extend(other.signatures.iter().cloned());
    }
}

/// Runs the spec-level checks that apply to a state *as such* (apply-time
/// checks — crash cuts, dFence completion — live in [`State::apply`]):
/// invariants in every state, PMO expectations in complete states, and
/// deadlock where nothing is enabled. `choices_empty` is passed in so
/// callers that already enumerated choices don't enumerate twice.
fn static_checks(
    st: &State,
    program: &Program,
    spec: &Spec,
    choices_empty: bool,
    out: &mut Vec<Violation>,
) {
    for inv in &spec.invariants {
        let broken = match *inv {
            Invariant::AddrImplies {
                if_durable,
                then_durable,
            } => {
                st.durable_addrs().contains(&if_durable)
                    && !st.durable_addrs().contains(&then_durable)
            }
            Invariant::DurableAtExit { addr } => {
                st.all_done() && !st.durable_addrs().contains(&addr)
            }
            Invariant::NoPending => !st.pending.is_empty(),
        };
        if broken {
            out.push(Violation {
                kind: match inv {
                    Invariant::AddrImplies { .. } => ViolationKind::AddrImplies,
                    Invariant::DurableAtExit { .. } => ViolationKind::DurableAtExit,
                    Invariant::NoPending => ViolationKind::NoPending,
                },
                message: format!("invariant {inv:?} broken"),
                schedule: st.schedule().to_vec(),
            });
        }
    }
    if choices_empty && !st.complete() {
        out.push(Violation {
            kind: ViolationKind::Deadlock,
            message: "no transition enabled in an incomplete state".into(),
            schedule: st.schedule().to_vec(),
        });
    }
    if st.complete() && !spec.expectations.is_empty() {
        let graph = st.graph();
        for e in &spec.expectations {
            let applies = match e.when {
                ObsCond::Always => true,
                ObsCond::Observed => st.observations() > 0,
                ObsCond::Unobserved => st.observations() == 0,
            };
            if !applies {
                continue;
            }
            let before = st.persist_event(e.before.thread, e.before.nth);
            let after = st.persist_event(e.after.thread, e.after.nth);
            match (before, after) {
                (Some(b), Some(a)) => {
                    let holds = graph.pmo_holds(b, a);
                    if holds != e.ordered {
                        out.push(Violation {
                            kind: ViolationKind::Expectation,
                            message: format!(
                                "expected {} →pmo {} to {}, but it does {}",
                                b,
                                a,
                                if e.ordered { "hold" } else { "not hold" },
                                if holds { "hold" } else { "not hold" },
                            ),
                            schedule: st.schedule().to_vec(),
                        });
                    }
                }
                _ => out.push(Violation {
                    kind: ViolationKind::Expectation,
                    message: format!(
                        "expectation references persist #{} of {} / #{} of {}, \
                         not issued in this execution",
                        e.before.nth, e.before.thread, e.after.nth, e.after.thread,
                    ),
                    schedule: st.schedule().to_vec(),
                }),
            }
        }
    }
    let _ = program;
}

/// Bookkeeping for a newly-discovered state: spec checks, reach targets,
/// complete-execution counters and evidence.
fn note_state(st: &State, program: &Program, spec: &Spec, choices_empty: bool, acc: &mut Acc) {
    acc.states += 1;
    static_checks(st, program, spec, choices_empty, &mut acc.violations);
    for (i, r) in spec.reach.iter().enumerate() {
        if acc.reached[i].is_none()
            && st.durable_addrs().contains(&r.durable)
            && !st.durable_addrs().contains(&r.not_durable)
        {
            acc.reached[i] = Some(st.schedule().to_vec());
        }
    }
    if st.complete() {
        acc.complete += 1;
        let d = st.warps[0].dfences_fired;
        acc.evidence.min_dfences = acc.evidence.min_dfences.min(d);
        acc.evidence.max_dfences = acc.evidence.max_dfences.max(d);
        acc.signatures.insert(ExecutionSig::from_graph(
            &st.graph(),
            st.durable_addrs().iter().copied(),
        ));
    }
}

/// Depth-first exhaustion from `start`, deduping against `base` (states
/// the serial phase already visited) plus a local visited set. `start`
/// itself has already been noted by the caller.
fn explore_from(
    start: &State,
    program: &Program,
    spec: &Spec,
    bidx: &BlockIndex,
    base: &HashSet<u64>,
    max_states: u64,
) -> Acc {
    let mut acc = Acc::new(spec);
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack = vec![start.clone()];
    while let Some(st) = stack.pop() {
        let choices = st.choices(program);
        for choice in choices {
            let mut next = st.clone();
            next.apply(program, choice, &mut acc.evidence, &mut acc.violations);
            acc.transitions += 1;
            let fp = next.fingerprint(program, bidx);
            if base.contains(&fp) || !visited.insert(fp) {
                acc.dedup_hits += 1;
                continue;
            }
            let empty = next.choices(program).is_empty();
            note_state(&next, program, spec, empty, &mut acc);
            assert!(
                acc.states <= max_states,
                "mc: exceeded {max_states} states exploring `{}`; raise McOpts::max_states",
                program.kernel.name(),
            );
            stack.push(next);
        }
    }
    acc
}

/// One frontier state's exhaustive sub-exploration, run on the harness
/// worker pool. Cells never cache (a run is cheaper than serializing a
/// state) and carry everything they need by value.
#[derive(Clone)]
struct McCell {
    idx: usize,
    program: Program,
    spec: Spec,
    start: State,
    start_fp: u64,
    base: Arc<HashSet<u64>>,
    max_states: u64,
}

impl SweepCell for McCell {
    type Out = Acc;

    fn name(&self) -> String {
        format!("{}/cell{:02}", self.program.kernel.name(), self.idx)
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.program.kernel.name());
        fp.write_u64(self.idx as u64);
        fp.write_u64(self.start_fp);
        fp.finish()
    }

    fn run(&self) -> Acc {
        let bidx = self.program.kernel.block_index();
        explore_from(
            &self.start,
            &self.program,
            &self.spec,
            &bidx,
            &self.base,
            self.max_states,
        )
    }
}

/// Exhausts `program`'s state space, checking `spec` plus the built-in
/// model checks over every reachable state, and returns the verdict.
///
/// Crash-cut coverage falls out of reachability: every reachable state
/// *is* a crash cut (the machine may lose power anywhere), and every
/// durability-set change re-validates downward closure, so "all states
/// visited" subsumes "all crash cuts checked".
#[must_use]
pub fn explore(program: &Program, spec: &Spec, opts: &McOpts) -> McReport {
    let bidx = program.kernel.block_index();
    let mut acc = Acc::new(spec);
    let mut visited: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();

    let init = State::initial(program);
    visited.insert(init.fingerprint(program, &bidx));
    let empty = init.choices(program).is_empty();
    note_state(&init, program, spec, empty, &mut acc);
    queue.push_back(init);

    // Serial BFS until the frontier is wide enough to parallelize.
    while queue.len() < FRONTIER_TARGET {
        let Some(st) = queue.pop_front() else {
            break;
        };
        for choice in st.choices(program) {
            let mut next = st.clone();
            next.apply(program, choice, &mut acc.evidence, &mut acc.violations);
            acc.transitions += 1;
            let fp = next.fingerprint(program, &bidx);
            if !visited.insert(fp) {
                acc.dedup_hits += 1;
                continue;
            }
            let empty = next.choices(program).is_empty();
            note_state(&next, program, spec, empty, &mut acc);
            assert!(
                acc.states <= opts.max_states,
                "mc: exceeded {} states exploring `{}`; raise McOpts::max_states",
                opts.max_states,
                program.kernel.name(),
            );
            queue.push_back(next);
        }
    }

    if !queue.is_empty() {
        let base = Arc::new(visited);
        let cells: Vec<McCell> = queue
            .into_iter()
            .enumerate()
            .map(|(idx, start)| {
                let start_fp = start.fingerprint(program, &bidx);
                McCell {
                    idx,
                    program: program.clone(),
                    spec: spec.clone(),
                    start,
                    start_fp,
                    base: Arc::clone(&base),
                    max_states: opts.max_states,
                }
            })
            .collect();
        let sweep_opts = SweepOpts {
            jobs: opts.jobs,
            cache_dir: None,
            progress: false,
            fault: FaultPolicy::default(),
            journal_root: None,
            resume: false,
        };
        let (outcomes, _) = sweep(&sweep_opts, &cells);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                CellOutcome::Ok(cell_acc) => acc.merge(&cell_acc),
                CellOutcome::Err { message, .. } | CellOutcome::Panicked { message, .. } => {
                    panic!("mc cell {i} did not complete: {message}")
                }
                CellOutcome::DeadlineExceeded { limit_millis, .. } => {
                    panic!("mc cell {i} exceeded its {limit_millis} ms deadline")
                }
            }
        }
    }

    McReport {
        states: acc.states,
        transitions: acc.transitions,
        dedup_hits: acc.dedup_hits,
        complete_executions: acc.complete,
        violations: acc.violations,
        reached: acc.reached,
        evidence: acc.evidence,
        signatures: acc.signatures,
    }
}

/// Breadth-first search for the *shortest* schedule producing a
/// violation of `kind` (ties broken by exploration order, which tries
/// choices in their canonical [`State::choices`] order — so the result
/// is also lexicographically least among the shortest). Serial and
/// deterministic by construction; returns `None` if no schedule up to
/// `opts.max_states` states violates.
#[must_use]
pub fn shrink(
    program: &Program,
    spec: &Spec,
    kind: ViolationKind,
    opts: &McOpts,
) -> Option<Vec<Choice>> {
    let bidx = program.kernel.block_index();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let mut states: u64 = 0;

    let init = State::initial(program);
    visited.insert(init.fingerprint(program, &bidx));
    let mut vios = Vec::new();
    static_checks(
        &init,
        program,
        spec,
        init.choices(program).is_empty(),
        &mut vios,
    );
    if vios.iter().any(|v| v.kind == kind) {
        return Some(Vec::new());
    }
    queue.push_back(init);

    while let Some(st) = queue.pop_front() {
        for choice in st.choices(program) {
            let mut next = st.clone();
            let mut vios = Vec::new();
            let mut ev = Evidence::new();
            next.apply(program, choice, &mut ev, &mut vios);
            let fp = next.fingerprint(program, &bidx);
            let fresh = visited.insert(fp);
            // Apply-time violations belong to the *transition*: check
            // them even into an already-visited state (a different
            // predecessor can make the same bad transition).
            static_checks(
                &next,
                program,
                spec,
                next.choices(program).is_empty(),
                &mut vios,
            );
            if vios.iter().any(|v| v.kind == kind) {
                return Some(next.schedule().to_vec());
            }
            if fresh {
                states += 1;
                assert!(
                    states <= opts.max_states,
                    "mc: exceeded {} states shrinking `{}`",
                    opts.max_states,
                    program.kernel.name(),
                );
                queue.push_back(next);
            }
        }
    }
    None
}

/// The state predicate a lint hazard names: one persist durable while
/// another is lost. Since every reachable state is a crash cut, a
/// schedule reaching such a state *is* the crash scenario the lint
/// diagnostic warns about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessTarget {
    /// `durable`'s `(block, tid_in_block, nth)` persist has drained
    /// while `lost`'s has not (it may still be buffered, or not yet
    /// issued at all — a crash loses it either way).
    Marks {
        /// Mark of the persist that survived.
        durable: (u32, u32, u32),
        /// Mark of the persist a crash would lose.
        lost: (u32, u32, u32),
    },
    /// Address-granular form, for hazards whose persists are not
    /// statically definite marks.
    Addrs {
        /// Address with a durable write.
        durable: u64,
        /// Address with no durable write.
        lost: u64,
    },
}

impl WitnessTarget {
    fn holds(self, st: &State) -> bool {
        match self {
            WitnessTarget::Marks { durable, lost } => {
                st.mark_durable(durable) && !st.mark_durable(lost)
            }
            WitnessTarget::Addrs { durable, lost } => {
                st.durable_addrs().contains(&durable) && !st.durable_addrs().contains(&lost)
            }
        }
    }
}

/// Breadth-first search for the *shortest* schedule reaching a state
/// where `target` holds, or `None` when no reachable state matches
/// (the hazard the lint claimed is spurious under this model).
///
/// Serial like [`shrink`], and for the same reason: shortest-path
/// structure matters more than throughput at witness sizes.
#[must_use]
pub fn witness_reach(
    program: &Program,
    target: WitnessTarget,
    opts: &McOpts,
) -> Option<Vec<Choice>> {
    let bidx = program.kernel.block_index();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let mut states: u64 = 0;

    let init = State::initial(program);
    if target.holds(&init) {
        return Some(Vec::new());
    }
    visited.insert(init.fingerprint(program, &bidx));
    queue.push_back(init);

    while let Some(st) = queue.pop_front() {
        for choice in st.choices(program) {
            let mut next = st.clone();
            let mut vios = Vec::new();
            let mut ev = Evidence::new();
            next.apply(program, choice, &mut ev, &mut vios);
            if target.holds(&next) {
                return Some(next.schedule().to_vec());
            }
            if visited.insert(next.fingerprint(program, &bidx)) {
                states += 1;
                assert!(
                    states <= opts.max_states,
                    "mc: exceeded {} states searching `{}` for a witness",
                    opts.max_states,
                    program.kernel.name(),
                );
                queue.push_back(next);
            }
        }
    }
    None
}

/// Replays `schedule` from the initial state, returning the resulting
/// state and every violation the built-in and spec-level checks raise
/// along the way — the reproduction tool for a counterexample from
/// [`explore`] or [`shrink`].
///
/// # Panics
/// Panics if a choice in `schedule` is not enabled when its turn comes.
#[must_use]
pub fn replay(program: &Program, spec: &Spec, schedule: &[Choice]) -> (State, Vec<Violation>) {
    let mut st = State::initial(program);
    let mut vios = Vec::new();
    let mut ev = Evidence::new();
    static_checks(
        &st,
        program,
        spec,
        st.choices(program).is_empty(),
        &mut vios,
    );
    for (i, &choice) in schedule.iter().enumerate() {
        assert!(
            st.choices(program).contains(&choice),
            "replay: step {i} ({choice}) is not enabled",
        );
        st.apply(program, choice, &mut ev, &mut vios);
        static_checks(
            &st,
            program,
            spec,
            st.choices(program).is_empty(),
            &mut vios,
        );
    }
    (st, vios)
}

/// Runs `program` to completion under the *canonical schedule*:
/// producer-first (the lowest-index runnable warp that is enabled),
/// falling back to the lowest drainable line, then to the lowest
/// enabled warp. Deterministic; used to derive reference traces for
/// litmus shapes from their kernels.
///
/// # Panics
/// Panics if the canonical schedule deadlocks (a well-formed litmus
/// kernel never does: consumers spin until producers publish).
#[must_use]
pub fn canonical_run(program: &Program) -> State {
    let mut st = State::initial(program);
    let mut ev = Evidence::new();
    let mut vios = Vec::new();
    while !st.complete() {
        let choices = st.choices(program);
        assert!(
            !choices.is_empty(),
            "canonical run of `{}` deadlocked after {} steps",
            program.kernel.name(),
            st.schedule().len(),
        );
        // Lowest-index warp that still has work, if enabled right now.
        let preferred = choices
            .iter()
            .copied()
            .find(|c| matches!(c, Choice::Warp(_)))
            .filter(|&c| {
                let first_runnable = (0..st.warps.len() as u32)
                    .find(|&w| !st.warps[w as usize].done && !st.warps[w as usize].arrived);
                matches!((c, first_runnable), (Choice::Warp(w), Some(f)) if w == f)
            });
        let drain = choices
            .iter()
            .copied()
            .find(|c| matches!(c, Choice::Drain(_)));
        let pick = preferred.or(drain).unwrap_or(choices[0]);
        st.apply(program, pick, &mut ev, &mut vios);
    }
    st
}
