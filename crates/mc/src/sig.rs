//! Schedule-abstract execution signatures.
//!
//! An [`ExecutionSig`] names an execution by what the persistency model
//! cares about — per-thread persist projections, which release each
//! acquire observed, and the final durable address set — while erasing
//! everything schedule-dependent: event ids, interleaving order, and
//! non-observing synchronization ops (a consumer that spun 3 times and
//! one that spun 30 times have the same signature).
//!
//! Signatures are the bridge between the model checker and the timing
//! simulator: both produce a [`sbrp_core::formal::PmoGraph`] through the
//! same `TraceBuilder`, so a signature computed from a simulator trace
//! is directly comparable to the signatures of the checker's enumerated
//! complete executions. [`crate::McReport::signatures`] collects the
//! latter; the membership property test asserts the former is always
//! among them.

use sbrp_core::formal::{EventKind, PmoGraph};
use sbrp_core::ops::PersistOpKind;
use std::collections::{BTreeMap, BTreeSet};

/// A thread as `(block, tid_in_block)` — the ordered form of
/// [`sbrp_core::scope::ThreadPos`].
pub type SigThread = (u32, u32);

/// What an execution did, up to schedule equivalence.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ExecutionSig {
    /// Per thread: the addresses it persisted, in program order.
    pub persists: BTreeMap<SigThread, Vec<u64>>,
    /// Each `(releaser, acquirer, var)` synchronization that actually
    /// observed a released value and created a PMO edge. Scope-bugged
    /// observations (§5.3) create no edge and therefore do not appear —
    /// identically on both the checker and simulator sides, since both
    /// record through the same `TraceBuilder`.
    pub observations: BTreeSet<(SigThread, SigThread, u64)>,
    /// Addresses with a durable persist when the execution ended.
    pub durable: BTreeSet<u64>,
}

fn sig_thread(t: sbrp_core::scope::ThreadPos) -> SigThread {
    (t.block.0, t.tid_in_block)
}

impl ExecutionSig {
    /// Computes the signature of the execution `graph` records, with
    /// `durable` as the addresses durable at its end.
    ///
    /// Observation edges are recovered from the graph structurally: an
    /// edge from a `pRel` op to a `pAcq` op of a *different* thread is
    /// exactly an observation (program-order edges never pair a release
    /// with a later acquire across threads).
    #[must_use]
    pub fn from_graph(graph: &PmoGraph, durable: impl IntoIterator<Item = u64>) -> Self {
        let mut sig = ExecutionSig {
            durable: durable.into_iter().collect(),
            ..ExecutionSig::default()
        };
        for i in 0..graph.len() {
            let ev = graph.event(sbrp_core::formal::EventId::from_index(i));
            if let EventKind::Persist { addr } = ev.kind {
                sig.persists
                    .entry(sig_thread(ev.thread))
                    .or_default()
                    .push(addr);
            }
        }
        for (from, to) in graph.edges() {
            let f = graph.event(from);
            let t = graph.event(to);
            let (
                EventKind::Op {
                    op: fop,
                    var: Some(var),
                },
                EventKind::Op { op: top, .. },
            ) = (f.kind, t.kind)
            else {
                continue;
            };
            if matches!(fop, PersistOpKind::PRel(_))
                && matches!(top, PersistOpKind::PAcq(_))
                && f.thread != t.thread
            {
                sig.observations
                    .insert((sig_thread(f.thread), sig_thread(t.thread), var));
            }
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{canonical_run, explore, McOpts};
    use crate::litmus;

    #[test]
    fn canonical_run_signature_is_enumerated() {
        let opts = McOpts {
            jobs: 1,
            ..McOpts::default()
        };
        for shape in litmus::all() {
            let st = canonical_run(&shape.program);
            let sig = ExecutionSig::from_graph(&st.graph(), st.durable_addrs().iter().copied());
            let report = explore(&shape.program, &shape.spec, &opts);
            assert!(
                report.signatures.contains(&sig),
                "{}: canonical signature missing from {} enumerated",
                shape.name,
                report.signatures.len(),
            );
        }
    }

    #[test]
    fn mp_shape_signature_records_the_observation() {
        let shape = litmus::message_passing_block();
        let st = canonical_run(&shape.program);
        let sig = ExecutionSig::from_graph(&st.graph(), st.durable_addrs().iter().copied());
        assert_eq!(
            sig.observations.iter().collect::<Vec<_>>(),
            vec![&((0, 0), (0, 32), 0x80)],
        );
        assert_eq!(sig.persists[&(0, 0)], vec![0x1000]);
        assert_eq!(sig.persists[&(0, 32)], vec![0x2000]);
        assert!(sig.durable.contains(&0x1000) && sig.durable.contains(&0x2000));
    }
}
