//! What the model checker checks: programs, specs, violations, reports.

use sbrp_core::scope::ThreadPos;
use sbrp_isa::{Kernel, LaunchConfig};
use std::fmt;

/// Where the persist domain boundary sits (§3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PersistDomain {
    /// ADR: only the memory controller is persistent — a store becomes
    /// durable when its persist-buffer entry drains. Crash cuts are the
    /// interesting object.
    Adr,
    /// eADR: caches are flushed on power failure, so a store is durable
    /// the moment the memory system accepts it. No entry is ever pending
    /// and no drain reordering exists.
    Eadr,
}

impl fmt::Display for PersistDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistDomain::Adr => write!(f, "ADR"),
            PersistDomain::Eadr => write!(f, "eADR"),
        }
    }
}

/// A model-checking subject: a kernel, its launch geometry, the
/// persistency model to run it under, and the persist-domain boundary.
#[derive(Clone, Debug)]
pub struct Program {
    /// The kernel (parameters baked in).
    pub kernel: Kernel,
    /// Launch geometry. Every warp of the launch is interpreted.
    pub launch: LaunchConfig,
    /// Persistency model: `Sbrp` enforces the persist-buffer dependency
    /// rules; `Epoch`/`Gpm` enforce only block-wide epoch barriers.
    pub model: sbrp_core::ModelKind,
    /// Persist-domain boundary.
    pub domain: PersistDomain,
    /// Addresses at or above this are persistent (matches
    /// `GpuConfig::pm_base` in the simulator).
    pub pm_base: u64,
}

/// A property that must hold in *every* reachable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Whenever `if_durable` has a durable write, `then_durable` must
    /// have one too — the recovery invariant of WAL-style idioms
    /// ("data implies its log entry").
    AddrImplies {
        /// The dependent address.
        if_durable: u64,
        /// The address it requires.
        then_durable: u64,
    },
    /// At every state where all warps have retired the kernel, `addr`
    /// must be durable — i.e. the kernel may not return before this
    /// write is crash-safe.
    DurableAtExit {
        /// The address that must be durable at exit.
        addr: u64,
    },
    /// No persist-buffer entry is ever pending (the defining property of
    /// the eADR domain).
    NoPending,
}

/// A state the exploration must *reach* — the dual of an invariant, used
/// to prove that a seeded bug has a real violating execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reach {
    /// Address that is durable in the target state.
    pub durable: u64,
    /// Address that is *not* durable in the target state.
    pub not_durable: u64,
}

/// Names the `nth` persist issued by a thread — a schedule-independent
/// way to refer to a persist event (event ids vary with interleaving).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PRef {
    /// The issuing thread.
    pub thread: ThreadPos,
    /// Zero-based index among that thread's persists, in program order.
    pub nth: u32,
}

/// When a PMO expectation applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsCond {
    /// In every complete execution.
    Always,
    /// Only in complete executions where at least one acquire observed a
    /// released value (message-passing shapes).
    Observed,
    /// Only in complete executions with no observation (the
    /// acquire-of-initial-value shape).
    Unobserved,
}

/// A PMO outcome required of every complete execution (both persists
/// retired, all buffers drained).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McExpectation {
    /// The PMO-earlier persist.
    pub before: PRef,
    /// The PMO-later persist.
    pub after: PRef,
    /// Whether `before →pmo after` must hold.
    pub ordered: bool,
    /// Which executions the expectation applies to.
    pub when: ObsCond,
}

/// Everything a [`Program`] is checked against. The built-in checks
/// (crash-cut downward closure after every drain, dFence completion
/// durability, eADR immediacy) always run; a `Spec` adds program-level
/// properties on top.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    /// Must hold in every reachable state.
    pub invariants: Vec<Invariant>,
    /// Must be reachable in at least one state (bug witnesses).
    pub reach: Vec<Reach>,
    /// PMO outcomes checked at complete executions.
    pub expectations: Vec<McExpectation>,
}

/// One scheduling decision of an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Choice {
    /// Fire the parked action of the warp with this global index
    /// (`block * warps_per_block + warp_in_block`).
    Warp(u32),
    /// Drain (make durable) the pending persist-buffer entry for this
    /// cache line address.
    Drain(u64),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Warp(w) => write!(f, "w{w}"),
            Choice::Drain(line) => write!(f, "d{line:#x}"),
        }
    }
}

/// What kind of property a violation breaks. Counterexample shrinking
/// looks for the shortest schedule reproducing the *same kind*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A drain left the durable set not downward-closed under PMO.
    CrashCut,
    /// An [`Invariant::AddrImplies`] failed.
    AddrImplies,
    /// An [`Invariant::DurableAtExit`] failed.
    DurableAtExit,
    /// An [`Invariant::NoPending`] failed.
    NoPending,
    /// A `dFence` completed while one of the warp's earlier persists was
    /// not durable — the immediate-durability guarantee broke.
    DFenceIncomplete,
    /// A PMO expectation failed at a complete execution.
    Expectation,
    /// The exploration found a state with no enabled transition that is
    /// not a completed execution.
    Deadlock,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::CrashCut => "crash-cut",
            ViolationKind::AddrImplies => "addr-implies",
            ViolationKind::DurableAtExit => "durable-at-exit",
            ViolationKind::NoPending => "no-pending",
            ViolationKind::DFenceIncomplete => "dfence-incomplete",
            ViolationKind::Expectation => "expectation",
            ViolationKind::Deadlock => "deadlock",
        };
        f.write_str(s)
    }
}

/// A concrete counterexample: the property that broke and the schedule
/// (from the initial state) that breaks it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The property class.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// The schedule whose last transition exposed the violation. Replay
    /// it with [`crate::replay`] to reproduce.
    pub schedule: Vec<Choice>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} after ", self.kind, self.message)?;
        let mut first = true;
        for c in &self.schedule {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// Aggregate facts the exploration gathered beyond pass/fail — the raw
/// material for linter-soundness evidence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Evidence {
    /// Whether any execution contained at least one acquire observing a
    /// released value.
    pub any_observation: bool,
    /// Whether any execution recorded a §5.3 scoped-persistency bug
    /// (an observation whose effective scope excludes one thread).
    pub any_scope_bug: bool,
    /// `(warp, nth-oFence-of-warp)` pairs that were *non-vacuous* (sealed
    /// at least one open persist-buffer entry) in at least one execution.
    pub nonvacuous_ofences: std::collections::BTreeSet<(u32, u32)>,
    /// Highest `nth` oFence index fired per warp, across all executions.
    pub ofence_sites: std::collections::BTreeMap<u32, u32>,
    /// Minimum over complete executions of warp 0's dFence count
    /// (`u32::MAX` when no complete execution was seen).
    pub min_dfences: u32,
    /// Maximum over complete executions of warp 0's dFence count.
    pub max_dfences: u32,
}

impl Evidence {
    pub(crate) fn new() -> Self {
        Evidence {
            min_dfences: u32::MAX,
            ..Evidence::default()
        }
    }

    pub(crate) fn merge(&mut self, other: &Evidence) {
        self.any_observation |= other.any_observation;
        self.any_scope_bug |= other.any_scope_bug;
        self.nonvacuous_ofences
            .extend(other.nonvacuous_ofences.iter().copied());
        for (&w, &n) in &other.ofence_sites {
            let e = self.ofence_sites.entry(w).or_insert(0);
            *e = (*e).max(n);
        }
        self.min_dfences = self.min_dfences.min(other.min_dfences);
        self.max_dfences = self.max_dfences.max(other.max_dfences);
    }
}

/// Result of exhausting a program's state space.
#[derive(Clone, Debug)]
pub struct McReport {
    /// Distinct canonical states visited.
    pub states: u64,
    /// Transitions fired (including those leading to already-visited
    /// states).
    pub transitions: u64,
    /// Transitions whose successor had already been visited — the work
    /// the fingerprint deduper saved.
    pub dedup_hits: u64,
    /// Complete executions reached (all warps done, all buffers
    /// drained). With dedup this counts distinct *final states*, each of
    /// which may stand for many interleavings.
    pub complete_executions: u64,
    /// All violations found, in deterministic exploration order.
    pub violations: Vec<Violation>,
    /// For each [`Spec::reach`] entry: the first schedule reaching it,
    /// if any.
    pub reached: Vec<Option<Vec<Choice>>>,
    /// Aggregate evidence facts.
    pub evidence: Evidence,
    /// The [`crate::sig::ExecutionSig`] of every complete execution —
    /// one per distinct complete *final state* (signature-equal
    /// executions share a final state for programs whose control flow
    /// is schedule-oblivious, which every kernel in this crate is).
    pub signatures: std::collections::BTreeSet<crate::sig::ExecutionSig>,
}

impl McReport {
    /// Whether the program verified: no violations and every required
    /// reach target was hit.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && self.reached.iter().all(Option::is_some)
    }
}
