//! Simulator-trace membership: every execution the cycle-level
//! simulator produces for a small program is a member of the model
//! checker's enumerated execution set.
//!
//! The two engines share nothing above `sbrp_core::formal` — the
//! simulator timestamps a real pipeline and persist buffer, the checker
//! abstracts both into warp-atomic transitions — so agreement here is
//! evidence that the abstraction is faithful: the simulator never
//! exhibits a persist ordering, observation, or final durable image the
//! checker considers unreachable.
//!
//! Programs are kept schedule-oblivious (straight-line stores and
//! fences, plus an optional spinning message-passing handoff), which is
//! exactly the class for which [`sbrp_mc::McReport::signatures`] is a
//! complete enumeration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbrp_core::ops::ModelKind;
use sbrp_core::scope::Scope;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::{Gpu, RunOutcome};
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};
use sbrp_mc::sig::ExecutionSig;
use sbrp_mc::{explore, McOpts, PersistDomain, Program, Spec};

const LIMIT: u64 = 50_000_000;
const FLAG: u64 = 0x8000; // volatile (below PM_BASE)

/// What one role of a generated kernel does: persist stores, each
/// optionally followed by a fence.
#[derive(Clone, Copy, PartialEq)]
#[allow(clippy::enum_variant_names)]
enum Fence {
    None,
    OFence,
    DFence,
}

struct RoleScript {
    stores: Vec<(u64, Fence)>,
}

fn emit_store_lane0(b: &mut KernelBuilder, addr: u64, val: u64) {
    let lane = b.special(Special::Lane);
    let is0 = b.eqi(lane, 0);
    b.if_then(is0, |b| {
        let a = b.movi(addr);
        let v = b.movi(val);
        b.st(a, 0, v, MemWidth::W8);
    });
}

fn emit_script(b: &mut KernelBuilder, script: &RoleScript) {
    for (i, &(addr, fence)) in script.stores.iter().enumerate() {
        emit_store_lane0(b, addr, 100 + i as u64);
        match fence {
            Fence::None => {}
            Fence::OFence => b.ofence(),
            Fence::DFence => b.dfence(),
        }
    }
}

/// Builds a two-role kernel: role 0 runs `producer` (then releases
/// `FLAG` when `sync`), role 1 spins on the flag when `sync`, then runs
/// `consumer`. Roles are split by block (`2×32`) or by warp (`1×64`).
fn build_kernel(
    name: &str,
    by_block: bool,
    sync: Option<Scope>,
    producer: &RoleScript,
    consumer: &RoleScript,
) -> (Kernel, LaunchConfig) {
    let mut b = KernelBuilder::new();
    let role = if by_block {
        b.special(Special::CtaId)
    } else {
        b.special(Special::WarpId)
    };
    let is_producer = b.eqi(role, 0);
    b.if_then_else(
        is_producer,
        |b| {
            emit_script(b, producer);
            if let Some(scope) = sync {
                let lane = b.special(Special::Lane);
                let is0 = b.eqi(lane, 0);
                b.if_then(is0, |b| {
                    let f = b.movi(FLAG);
                    let one = b.movi(1);
                    b.prel(f, one, scope);
                });
            }
        },
        |b| {
            if let Some(scope) = sync {
                let lane = b.special(Special::Lane);
                let is0 = b.eqi(lane, 0);
                b.if_then(is0, |b| {
                    let f = b.movi(FLAG);
                    b.while_loop(
                        |b| {
                            let v = b.pacq(f, scope);
                            b.eqi(v, 0)
                        },
                        |b| b.sleep(1),
                    );
                });
            }
            emit_script(b, consumer);
        },
    );
    let launch = if by_block {
        LaunchConfig::new(2, 32)
    } else {
        LaunchConfig::new(1, 64)
    };
    (b.build(name), launch)
}

fn gen_script(rng: &mut SmallRng, base: u64, max_stores: u64) -> RoleScript {
    let n = rng.random_range(1..=max_stores);
    let stores = (0..n)
        .map(|i| {
            let fence = match rng.random_range(0..3u32) {
                0 => Fence::None,
                1 => Fence::OFence,
                _ => Fence::DFence,
            };
            (base + i * 0x80, fence)
        })
        .collect();
    RoleScript { stores }
}

/// A random schedule-oblivious program: two roles, random store/fence
/// scripts, and (usually) a release/acquire handoff whose scope covers
/// both roles — so the simulator's sanitizer has nothing to complain
/// about and every mc execution is a valid behaviour.
fn gen_program(seed: u64) -> (Kernel, LaunchConfig) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let by_block = rng.random_bool(0.5);
    let sync = if rng.random_bool(0.7) {
        // The widest scope both threads share: Block within one block,
        // Device across blocks (never a §5.3 scope bug).
        Some(if by_block {
            Scope::Device
        } else {
            Scope::Block
        })
    } else {
        None
    };
    let producer = gen_script(&mut rng, PM_BASE, 3);
    let consumer = gen_script(&mut rng, PM_BASE + 0x1000, 2);
    let name = format!("member-{seed}");
    build_kernel(&name, by_block, sync, &producer, &consumer)
}

/// Runs `kernel` on the cycle-level simulator with full tracing and
/// returns the executed trace's signature.
fn simulate_signature(kernel: &Kernel, launch: LaunchConfig) -> ExecutionSig {
    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    cfg.sanitize = true;
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(kernel, launch);
    let report = gpu
        .run(LIMIT)
        .unwrap_or_else(|e| panic!("{}: sim failed: {e}", kernel.name()));
    assert_eq!(report.outcome, RunOutcome::Completed);
    let capture = gpu.take_trace().expect("tracing was enabled");
    let (graph, _durable_at, durable) = capture.into_parts();
    let durable_addrs: Vec<u64> = durable
        .iter()
        .map(|&id| match graph.event(id).kind {
            sbrp_core::formal::EventKind::Persist { addr } => addr,
            other => panic!("durable non-persist event {other:?}"),
        })
        .collect();
    ExecutionSig::from_graph(&graph, durable_addrs)
}

fn mc_program(kernel: &Kernel, launch: LaunchConfig) -> Program {
    Program {
        kernel: kernel.clone(),
        launch,
        model: ModelKind::Sbrp,
        domain: PersistDomain::Adr,
        pm_base: PM_BASE,
    }
}

fn assert_membership(kernel: &Kernel, launch: LaunchConfig) -> ExecutionSig {
    let sim_sig = simulate_signature(kernel, launch);
    assert!(
        !sim_sig.persists.is_empty() && !sim_sig.durable.is_empty(),
        "{}: vacuous simulated trace",
        kernel.name(),
    );
    let prog = mc_program(kernel, launch);
    let report = explore(&prog, &Spec::default(), &McOpts::default());
    assert!(
        report.verified(),
        "{}: mc found violations: {:?}",
        kernel.name(),
        report.violations.first(),
    );
    assert!(
        report.signatures.contains(&sim_sig),
        "{}: simulated execution is not in the mc-enumerated set\n\
         sim signature: {sim_sig:?}\n\
         {} mc signatures over {} complete final states",
        kernel.name(),
        report.signatures.len(),
        report.complete_executions,
    );
    sim_sig
}

#[test]
fn random_small_programs_simulate_inside_the_enumerated_set() {
    let mut observed = 0;
    for seed in 0..12 {
        let (kernel, launch) = gen_program(seed);
        if !assert_membership(&kernel, launch).observations.is_empty() {
            observed += 1;
        }
    }
    // The generator's 0.7 sync rate must actually materialize as
    // observation edges, or the interesting half of the signature was
    // never compared.
    assert!(observed >= 4, "only {observed}/12 programs synchronized");
}

/// Full-warp persists (32 lanes, two cache lines per region) rather than
/// lane-0-predicated ones: exercises warp-level line coalescing on both
/// sides.
#[test]
fn per_lane_wal_kernel_simulates_inside_the_enumerated_set() {
    let log = PM_BASE + 0x10000;
    let data = PM_BASE;
    let mut b = KernelBuilder::new();
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let log_r = b.movi(log);
    let data_r = b.movi(data);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 100);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence();
    b.st(daddr, 0, v, MemWidth::W8);
    let kernel = b.build("member-wal");
    assert_membership(&kernel, LaunchConfig::new(1, 32));
}

/// The classic spinning message-passing handoff, deterministic seed.
#[test]
fn message_passing_simulates_inside_the_enumerated_set() {
    let producer = RoleScript {
        stores: vec![(PM_BASE, Fence::DFence), (PM_BASE + 0x80, Fence::None)],
    };
    let consumer = RoleScript {
        stores: vec![(PM_BASE + 0x1000, Fence::None)],
    };
    let (kernel, launch) =
        build_kernel("member-mp", true, Some(Scope::Device), &producer, &consumer);
    let sig = assert_membership(&kernel, launch);
    // The simulated run must have gone through the handoff: producer
    // lane 0 of block 0 released, consumer lane 0 of block 1 observed.
    assert_eq!(
        sig.observations.iter().collect::<Vec<_>>(),
        vec![&((0, 0), (1, 0), FLAG)],
    );
}
