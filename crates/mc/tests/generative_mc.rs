//! Generative false-negative pinning of the static linter.
//!
//! 200 seeded message-passing kernels (`sbrp_mc::generate`) are each
//! linted and exhaustively model-checked under the recovery invariant
//! *durable(sink) ⇒ durable(data)*. The soundness claim under test:
//! **no kernel the linter reports error-free has a model-checked
//! violating execution.** Conservatism in the other direction (lint
//! error on a kernel the checker proves safe) is permitted and also
//! counted, as are both outcome classes, so a generator regression
//! that stops producing one side fails loudly.

use sbrp_lint::{lint_all, LintConfig};
use sbrp_mc::evidence::PM_BASE;
use sbrp_mc::generate::generate;
use sbrp_mc::{explore, McOpts, ViolationKind};

const SEEDS: u64 = 200;

struct Outcome {
    seed: u64,
    describe: String,
    lint_errors: usize,
    violated: bool,
    other_violations: usize,
}

fn check_seed(seed: u64) -> Outcome {
    let case = generate(seed, PM_BASE);
    let cfg = LintConfig {
        pm_base: PM_BASE,
        launch: Some(case.launch),
    };
    let lint = lint_all(&case.kernel, &cfg);
    let (prog, spec) = case.program_and_spec(PM_BASE);
    let opts = McOpts {
        jobs: 1,
        ..McOpts::default()
    };
    let report = explore(&prog, &spec, &opts);
    let violated = report
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::AddrImplies);
    let other_violations = report
        .violations
        .iter()
        .filter(|v| v.kind != ViolationKind::AddrImplies)
        .count();
    Outcome {
        seed,
        describe: case.describe,
        lint_errors: lint.errors(),
        violated,
        other_violations,
    }
}

#[test]
fn lint_clean_kernels_never_violate_the_model() {
    let threads: u64 = std::thread::available_parallelism().map_or(4, |n| n.get() as u64);
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(SEEDS as usize);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    (t..SEEDS)
                        .step_by(threads as usize)
                        .map(check_seed)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            outcomes.extend(h.join().expect("seed worker panicked"));
        }
    });
    outcomes.sort_by_key(|o| o.seed);
    assert_eq!(outcomes.len(), SEEDS as usize);

    let mut clean_and_safe = 0u32;
    let mut flagged_and_violating = 0u32;
    let mut conservative = 0u32;
    for o in &outcomes {
        assert_eq!(
            o.other_violations, 0,
            "seed {} ({}): unexpected non-invariant violations",
            o.seed, o.describe
        );
        // The soundness direction: a lint-error-clean kernel must have
        // no violating execution.
        assert!(
            !(o.lint_errors == 0 && o.violated),
            "FALSE NEGATIVE at seed {}: lint reports no errors but the \
             model checker found a violating execution ({})",
            o.seed,
            o.describe
        );
        match (o.lint_errors > 0, o.violated) {
            (false, false) => clean_and_safe += 1,
            (true, true) => flagged_and_violating += 1,
            (true, false) => conservative += 1,
            (false, true) => unreachable!(),
        }
    }
    // The generator must keep exercising both sides of the verdict.
    assert!(
        clean_and_safe >= 20,
        "only {clean_and_safe} lint-clean verified kernels in {SEEDS} seeds"
    );
    assert!(
        flagged_and_violating >= 20,
        "only {flagged_and_violating} flagged violating kernels in {SEEDS} seeds"
    );
    eprintln!(
        "generative: {SEEDS} seeds — {clean_and_safe} clean+safe, \
         {flagged_and_violating} flagged+violating, {conservative} conservative, 0 false negatives"
    );
}
