//! Exhaustive verification of every litmus shape, plus the derived
//! trace-level litmuses that replace the old hand-written ones.

use sbrp_mc::{explore, litmus, McOpts};

fn opts() -> McOpts {
    McOpts {
        jobs: 1,
        ..McOpts::default()
    }
}

#[test]
fn every_litmus_shape_verifies_exhaustively() {
    for shape in litmus::all() {
        let report = explore(&shape.program, &shape.spec, &opts());
        assert!(
            report.verified(),
            "{}: {} violations, first: {}",
            shape.name,
            report.violations.len(),
            report
                .violations
                .first()
                .map_or_else(String::new, ToString::to_string),
        );
        assert!(
            report.complete_executions > 0,
            "{}: no complete execution reached",
            shape.name
        );
        assert!(report.states > 1, "{}: trivial state space", shape.name);
    }
}

#[test]
fn derived_litmuses_pass_the_trace_level_checker() {
    let shapes = litmus::all();
    assert!(shapes.len() >= 16);
    let mut ordered = 0;
    let mut unordered = 0;
    for shape in &shapes {
        let derived = shape.derive();
        assert_eq!(derived.name, shape.name);
        derived.check().unwrap_or_else(|e| {
            panic!("derived litmus {} failed: {e}", shape.name);
        });
        for e in &derived.expectations {
            if e.ordered {
                ordered += 1;
            } else {
                unordered += 1;
            }
        }
    }
    // The derived set is non-trivial in both directions.
    assert!(ordered >= 10, "only {ordered} ordered expectations");
    assert!(unordered >= 6, "only {unordered} unordered expectations");
}

#[test]
fn scope_bug_shapes_reach_the_lost_prefix_state() {
    for shape in litmus::all() {
        if shape.spec.reach.is_empty() {
            continue;
        }
        let report = explore(&shape.program, &shape.spec, &opts());
        for (i, r) in report.reached.iter().enumerate() {
            let schedule = r
                .as_ref()
                .unwrap_or_else(|| panic!("{}: reach target #{i} never hit", shape.name));
            // The witness replays to a state exhibiting exactly the
            // reached condition.
            let (st, _) = sbrp_mc::replay(&shape.program, &shape.spec, schedule);
            let want = shape.spec.reach[i];
            assert!(st.durable_addrs().contains(&want.durable));
            assert!(!st.durable_addrs().contains(&want.not_durable));
        }
    }
}
