//! Counterexample shrinking and exploration are `--jobs`-independent:
//! the cell decomposition of the DFS frontier is fixed, so running the
//! checker on one worker or many produces byte-identical reports.

use sbrp_mc::evidence::program_and_spec;
use sbrp_mc::{explore, replay, shrink, McOpts, ViolationKind};

/// The seeded known-bad kernel: the WAL mutant with its `oFence`
/// deleted — the largest state space in the suite (~6k states), big
/// enough that the parallel frontier actually engages.
const SEEDED_BAD: &str = "wal_fence_deleted";

fn opts(jobs: usize) -> McOpts {
    McOpts {
        jobs,
        ..McOpts::default()
    }
}

#[test]
fn exploration_is_jobs_independent() {
    let (prog, spec) = program_and_spec(SEEDED_BAD).unwrap();
    let serial = explore(&prog, &spec, &opts(1));
    let parallel = explore(&prog, &spec, &opts(4));
    assert_eq!(serial.states, parallel.states);
    assert_eq!(serial.transitions, parallel.transitions);
    assert_eq!(serial.dedup_hits, parallel.dedup_hits);
    assert_eq!(serial.complete_executions, parallel.complete_executions);
    assert_eq!(serial.evidence, parallel.evidence);
    assert_eq!(serial.violations.len(), parallel.violations.len());
    for (a, b) in serial.violations.iter().zip(&parallel.violations) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.message, b.message);
        assert_eq!(a.schedule, b.schedule);
    }
    assert_eq!(serial.reached, parallel.reached);
    assert_eq!(serial.signatures, parallel.signatures);
    assert!(!serial.violations.is_empty(), "seeded bug not found");
}

#[test]
fn shrinking_is_deterministic_and_bounded() {
    let (prog, spec) = program_and_spec(SEEDED_BAD).unwrap();
    let a =
        shrink(&prog, &spec, ViolationKind::AddrImplies, &opts(1)).expect("seeded bug must shrink");
    let b =
        shrink(&prog, &spec, ViolationKind::AddrImplies, &opts(4)).expect("seeded bug must shrink");
    assert_eq!(a, b, "shrink result depends on job count");
    // BFS guarantees minimality: the WAL bug needs only store-log,
    // store-data, drain-data — plus the warp's load step.
    assert!(a.len() <= 8, "shrunk schedule too long: {} steps", a.len());

    // And the minimal schedule replays to the violation it names.
    let (_, vios) = replay(&prog, &spec, &a);
    assert!(vios.iter().any(|v| v.kind == ViolationKind::AddrImplies));
}

#[test]
fn shrunk_schedule_is_a_prefix_closed_reproduction() {
    let (prog, spec) = program_and_spec(SEEDED_BAD).unwrap();
    let schedule = shrink(&prog, &spec, ViolationKind::AddrImplies, &opts(1)).unwrap();
    // Every proper prefix replays cleanly — the violation appears only
    // at the final transition, i.e. the schedule is minimal not just in
    // length but in content.
    for cut in 0..schedule.len() {
        let (_, vios) = replay(&prog, &spec, &schedule[..cut]);
        assert!(
            !vios.iter().any(|v| v.kind == ViolationKind::AddrImplies),
            "violation already present after {cut} of {} steps",
            schedule.len()
        );
    }
}
