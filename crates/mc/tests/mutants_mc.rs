//! Dynamic cross-validation of the static linter: every broken mutant
//! has a real violating execution; every correct counterpart verifies.

use sbrp_mc::evidence::{cross_validate, MutantEvidence};
use sbrp_mc::{replay, McOpts, ViolationKind};

fn opts() -> McOpts {
    McOpts {
        jobs: 1,
        ..McOpts::default()
    }
}

fn durability_kind(name: &str) -> Option<ViolationKind> {
    match name {
        "wal_fence_deleted" | "mp_scope_narrowed" | "epoch_barrier_dropped" => {
            Some(ViolationKind::AddrImplies)
        }
        "trailing_persist" => Some(ViolationKind::DurableAtExit),
        _ => None,
    }
}

#[test]
fn every_mutant_verdict_is_backed_by_executions() {
    let all: Vec<MutantEvidence> = cross_validate(&opts());
    assert_eq!(all.len(), 10);
    for ev in &all {
        assert!(
            ev.agrees,
            "{}: dynamic evidence disagrees with lint ({})",
            ev.name, ev.finding
        );
        if durability_kind(ev.name).is_some() {
            assert!(
                ev.witness.is_some(),
                "{}: no shrunk counterexample produced",
                ev.name
            );
        } else {
            assert!(ev.witness.is_none(), "{}: unexpected witness", ev.name);
        }
    }
}

#[test]
fn shrunk_witnesses_replay_to_the_same_violation() {
    for ev in cross_validate(&opts()) {
        let Some(kind) = durability_kind(ev.name) else {
            continue;
        };
        let witness = ev.witness.as_ref().expect("witness for broken mutant");
        // A shrunk schedule is short: these kernels break within a
        // handful of steps once the right interleaving is forced.
        assert!(
            witness.len() <= 24,
            "{}: witness unexpectedly long ({} steps)",
            ev.name,
            witness.len()
        );
        // Re-derive the program/spec through the public API by matching
        // the report: replay the witness and require the same violation
        // class to appear.
        let (prog, spec) = sbrp_mc::evidence::program_and_spec(ev.name).expect("known mutant");
        let (_, vios) = replay(&prog, &spec, witness);
        assert!(
            vios.iter().any(|v| v.kind == kind),
            "{}: replayed witness shows no {kind} violation",
            ev.name
        );
    }
}
