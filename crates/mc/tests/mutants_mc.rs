//! Dynamic cross-validation of the static linter: every broken mutant
//! has a real violating execution; every correct counterpart verifies;
//! every inter-thread hazard claim is matched by a reachable state.

use sbrp_mc::evidence::{cross_validate, MutantEvidence};
use sbrp_mc::{replay, McOpts, ViolationKind};

fn opts() -> McOpts {
    McOpts {
        jobs: 1,
        ..McOpts::default()
    }
}

fn durability_kind(name: &str) -> Option<ViolationKind> {
    match name {
        "wal_fence_deleted" | "mp_scope_narrowed" | "epoch_barrier_dropped" => {
            Some(ViolationKind::AddrImplies)
        }
        "trailing_persist" => Some(ViolationKind::DurableAtExit),
        "it_scope_narrow_pair" | "it_recovery_read" => Some(ViolationKind::AddrImplies),
        _ => None,
    }
}

/// Race-class inter-thread mutants whose witness is a lint-hazard
/// reachability schedule rather than a spec violation.
fn hazard_witnessed(name: &str) -> bool {
    matches!(name, "it_race_cross_block" | "it_drain_order")
}

#[test]
fn every_mutant_verdict_is_backed_by_executions() {
    let all: Vec<MutantEvidence> = cross_validate(&opts());
    assert_eq!(all.len(), 16);
    for ev in &all {
        assert!(
            ev.agrees,
            "{}: dynamic evidence disagrees with lint ({})",
            ev.name, ev.finding
        );
        if durability_kind(ev.name).is_some() || hazard_witnessed(ev.name) {
            assert!(
                ev.witness.is_some(),
                "{}: no counterexample/witness schedule produced",
                ev.name
            );
        } else {
            assert!(ev.witness.is_none(), "{}: unexpected witness", ev.name);
        }
    }
}

#[test]
fn shrunk_witnesses_replay_to_the_same_violation() {
    for ev in cross_validate(&opts()) {
        let Some(kind) = durability_kind(ev.name) else {
            continue;
        };
        let witness = ev.witness.as_ref().expect("witness for broken mutant");
        // A shrunk schedule is short: these kernels break within a
        // handful of steps once the right interleaving is forced.
        assert!(
            witness.len() <= 24,
            "{}: witness unexpectedly long ({} steps)",
            ev.name,
            witness.len()
        );
        // Re-derive the program/spec through the public API by matching
        // the report: replay the witness and require the same violation
        // class to appear.
        let (prog, spec) = sbrp_mc::evidence::program_and_spec(ev.name).expect("known mutant");
        let (_, vios) = replay(&prog, &spec, witness);
        assert!(
            vios.iter().any(|v| v.kind == kind),
            "{}: replayed witness shows no {kind} violation",
            ev.name
        );
    }
}

#[test]
fn hazard_witnesses_replay_to_the_claimed_crash_state() {
    // The race-class mutants' lint hazards name an exact crash state:
    // `blkB:tT#N durable while blkB':tT'#N' lost`. Replaying the
    // witness schedule must land in a state where that holds.
    type Mark = (u32, u32, u32);
    let expected: &[(&str, Mark, Mark)] = &[
        ("it_race_cross_block", (1, 0, 0), (0, 0, 0)),
        ("it_drain_order", (0, 32, 0), (0, 0, 0)),
    ];
    let all = cross_validate(&opts());
    for &(name, durable, lost) in expected {
        let ev = all
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} missing from suite"));
        let witness = ev
            .witness
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no hazard witness"));
        let (prog, spec) = sbrp_mc::evidence::program_and_spec(name).expect("known mutant");
        let (st, _) = replay(&prog, &spec, witness);
        assert!(
            st.mark_durable(durable) && !st.mark_durable(lost),
            "{name}: replayed witness does not show {durable:?} durable / {lost:?} lost"
        );
    }
}
