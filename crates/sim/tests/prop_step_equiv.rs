//! Property test: fast-forwarding is a pure scheduling optimization.
//! Forcing serial stepping (one cycle per step, no idle-time leaps)
//! must produce *identical* results — same completion cycle, same
//! `SimStats`, same per-SM and per-warp stall breakdowns — as the
//! fast-forwarded run, for any kernel, model, system, and crash point.

use proptest::prelude::*;
use sbrp_core::stall::StallBreakdown;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::stats::SimStats;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

/// log[gtid] = x, oFence, data[gtid] = x — a fence between persists, so
/// the run exercises stores, drains, and engine stalls.
fn wal_kernel(log: u64, data: u64) -> Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 100);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence();
    b.st(daddr, 0, v, MemWidth::W8);
    b.build("wal")
}

/// Everything observable we compare between the two stepping modes.
struct Observed {
    end_cycle: u64,
    stats: SimStats,
    sm_stalls: Vec<StallBreakdown>,
    warp_stalls: Vec<StallBreakdown>,
}

fn observe(cfg: &GpuConfig, serial: bool, crash_at: u64) -> Observed {
    let kernel = wal_kernel(PM_BASE, PM_BASE + (1 << 20));
    let mut gpu = Gpu::new(cfg);
    gpu.set_serial_stepping(serial);
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    let report = if crash_at == 0 {
        gpu.run(LIMIT).expect("completes")
    } else {
        gpu.run_until(crash_at).expect("no deadlock")
    };
    Observed {
        end_cycle: report.cycles,
        stats: gpu.stats(),
        sm_stalls: gpu.sm_stall_breakdowns(),
        warp_stalls: gpu.warp_stall_breakdowns(0).to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast-forwarded and serial-stepped runs are indistinguishable —
    /// to completion (`crash_at == 0`) or at any crash point.
    #[test]
    fn serial_and_fast_forward_runs_are_identical(
        crash_at in prop_oneof![Just(0u64), 100u64..20_000],
        model_ix in 0usize..3,
        system_ix in 0usize..2,
    ) {
        let model = ModelKind::ALL[model_ix];
        let system = [SystemDesign::PmNear, SystemDesign::PmFar][system_ix];
        if model == ModelKind::Gpm && system == SystemDesign::PmNear {
            return Ok(()); // GPM only exists on PM-far (§7).
        }
        let cfg = GpuConfig::small(model, system);
        let fast = observe(&cfg, false, crash_at);
        let serial = observe(&cfg, true, crash_at);

        prop_assert_eq!(fast.end_cycle, serial.end_cycle, "end cycle");
        prop_assert_eq!(fast.stats, serial.stats, "SimStats");
        prop_assert_eq!(fast.sm_stalls, serial.sm_stalls, "per-SM stalls");
        prop_assert_eq!(fast.warp_stalls, serial.warp_stalls, "SM0 warp stalls");
    }
}
