//! Regression tests for cycle-accurate fast-forwarding: crash points,
//! timeouts, and cycle-window fault triggers must land *exactly* on
//! their cycle, never overshot by an idle-time leap.
//!
//! These tests pin the bug where `step`'s fast-forward jumped to the
//! next memory event or SM wake-up even when that leapt over the
//! caller's bound — so `run_until(t)` could report a crash cycle past
//! `t` and a durable image containing events from the overshoot window.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::fault::{CrashTrigger, FaultPlan};
use sbrp_gpu_sim::{Gpu, RunOutcome, SimError};
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

/// Kernel: pArr[gtid] = gtid + 1 (distinct non-zero value per slot).
fn persist_fill_kernel(base: u64) -> Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![base]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.build("persist_fill")
}

/// Kernel: one long sleep, then a persist. While every warp sleeps the
/// simulator has nothing to do but fast-forward — the exact situation
/// where an unclamped leap overshoots a bound.
fn sleep_then_store_kernel(base: u64, sleep: u32) -> Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![base]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.sleep(sleep);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.build("sleep_then_store")
}

/// The durable cycle of every persisted address, from a traced
/// reference run of `persist_fill_kernel` to completion.
fn reference_durable_cycles(cfg: &GpuConfig, threads: u64) -> Vec<(u64, u64)> {
    let kernel = persist_fill_kernel(PM_BASE);
    let mut gpu = Gpu::new(cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, threads as u32 / 2));
    gpu.run(LIMIT).expect("reference run completes");
    let trace = gpu.take_trace().expect("tracing enabled");
    let (graph, durable_at, durable) = trace.into_parts();
    let mut out = Vec::new();
    for id in graph.persists() {
        assert!(durable.contains(&id), "completed run: everything durable");
        if let sbrp_core::formal::EventKind::Persist { addr } = graph.event(id).kind {
            out.push((addr, durable_at[&id]));
        }
    }
    assert_eq!(out.len() as u64, threads, "one persist per thread");
    out
}

/// THE regression test for the overshoot bug: place the crash strictly
/// *between* two scheduled memory events and check that (a) the run
/// lands exactly on the crash cycle and (b) the durable image equals
/// the event-prefix ≤ `crash_cycle` — nothing from the overshoot
/// window leaks in.
#[test]
fn crash_between_mem_events_yields_exact_event_prefix() {
    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let threads = 128u64;
    let durable_cycles = reference_durable_cycles(&cfg, threads);

    // Distinct cycles at which *some* event became durable, sorted.
    let mut cycles: Vec<u64> = durable_cycles.iter().map(|&(_, c)| c).collect();
    cycles.sort_unstable();
    cycles.dedup();
    assert!(cycles.len() >= 2, "need at least two durability instants");

    // A crash cycle strictly between two consecutive mem events.
    let (before, after) = cycles
        .windows(2)
        .map(|w| (w[0], w[1]))
        .find(|&(a, b)| b > a + 1)
        .expect("some pair of durability instants has a gap");
    let crash_at = before + (after - before) / 2;
    assert!(crash_at > before && crash_at < after);

    // Crash run: same deterministic configuration.
    let kernel = persist_fill_kernel(PM_BASE);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, threads as u32 / 2));
    let report = gpu.run_until(crash_at).expect("no deadlock");
    assert_eq!(report.outcome, RunOutcome::Crashed);
    assert_eq!(
        report.cycles, crash_at,
        "crash must land exactly on the requested cycle, not overshoot"
    );
    assert_eq!(gpu.cycle(), crash_at);

    // The durable image is exactly the event-prefix ≤ crash_at.
    let image = gpu.durable_image();
    for (addr, durable_cycle) in durable_cycles {
        let tid = (addr - PM_BASE) / 8;
        let expected = if durable_cycle <= crash_at {
            tid + 1
        } else {
            0
        };
        assert_eq!(
            image.read_u64(addr),
            expected,
            "addr {addr:#x} (durable at {durable_cycle}, crash at {crash_at})"
        );
    }
}

/// Sweeping many crash points: `run_until(t)` always reports exactly
/// `t` when the kernel is still live, across models and systems.
#[test]
fn run_until_always_lands_on_the_crash_cycle() {
    for model in ModelKind::ALL {
        for system in [SystemDesign::PmNear, SystemDesign::PmFar] {
            if model == ModelKind::Gpm && system == SystemDesign::PmNear {
                continue; // GPM only exists on PM-far (§7).
            }
            let cfg = GpuConfig::small(model, system);
            for crash_at in [117, 523, 1_001, 2_047, 4_099] {
                let kernel = persist_fill_kernel(PM_BASE);
                let mut gpu = Gpu::new(&cfg);
                gpu.launch(&kernel, LaunchConfig::new(4, 128));
                let report = gpu.run_until(crash_at).expect("no deadlock");
                if report.outcome == RunOutcome::Crashed {
                    assert_eq!(
                        report.cycles, crash_at,
                        "{model:?}/{system}: overshoot at crash_at={crash_at}"
                    );
                    assert_eq!(gpu.cycle(), crash_at);
                }
            }
        }
    }
}

/// `run`'s timeout must agree with the cycle counter: a kernel asleep
/// past the limit times out *at* the limit, not wherever the wake-up
/// leap happened to land.
#[test]
fn timeout_is_clamped_to_the_limit() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = sleep_then_store_kernel(PM_BASE, 10_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    match gpu.run(5_000) {
        Err(SimError::Timeout { limit }) => {
            assert_eq!(limit, 5_000);
            assert_eq!(
                gpu.cycle(),
                5_000,
                "the cycle counter must agree with the reported limit"
            );
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
}

/// Same discipline for `run_faulted` with no crash trigger installed.
#[test]
fn run_faulted_timeout_is_clamped_to_the_limit() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = sleep_then_store_kernel(PM_BASE, 10_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    match gpu.run_faulted(5_000) {
        Err(SimError::Timeout { limit }) => {
            assert_eq!(limit, 5_000);
            assert_eq!(gpu.cycle(), 5_000);
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
}

/// An `AtCycle` fault trigger is a bound of its own: the crash must
/// fire at exactly that cycle even if every warp is asleep far past it.
#[test]
fn at_cycle_trigger_is_not_leapt_over() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = sleep_then_store_kernel(PM_BASE, 10_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    gpu.set_fault_plan(FaultPlan::crash_at(CrashTrigger::AtCycle(3_000)));
    let report = gpu.run_faulted(LIMIT).expect("no deadlock");
    assert_eq!(report.outcome, RunOutcome::Crashed);
    assert_eq!(
        report.cycles, 3_000,
        "sleeping warps must not carry the crash past its trigger cycle"
    );
    assert_eq!(gpu.cycle(), 3_000);
}

/// Timeouts keep their meaning after a resumed run: a second `run`
/// call's limit is relative to the current cycle and the clamp still
/// holds.
#[test]
fn resumed_run_timeout_is_relative_and_exact() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = sleep_then_store_kernel(PM_BASE, 50_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    match gpu.run(1_000) {
        Err(SimError::Timeout { limit }) => assert_eq!(limit, 1_000),
        other => panic!("expected a timeout, got {other:?}"),
    }
    match gpu.run(2_000) {
        Err(SimError::Timeout { limit }) => {
            assert_eq!(limit, 3_000, "limit is absolute: 1_000 + 2_000");
            assert_eq!(gpu.cycle(), 3_000);
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
}
