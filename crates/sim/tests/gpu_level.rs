//! GPU-level integration tests: whole kernels through the timing
//! simulator, under every persistency model and system design.

use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::{Gpu, RunOutcome};
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

/// Kernel: pArr[gtid] = gtid + 1 (a pure persist storm).
fn persist_fill_kernel(base: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![base]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.build("persist_fill")
}

/// Kernel: log[gtid] = x, oFence, data[gtid] = x (the WAL idiom).
fn wal_kernel(log: u64, data: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 100);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence();
    b.st(daddr, 0, v, MemWidth::W8);
    b.build("wal")
}

fn all_configs() -> Vec<GpuConfig> {
    let mut v = Vec::new();
    for model in ModelKind::ALL {
        for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
            if model == ModelKind::Gpm && system == SystemDesign::PmNear {
                continue; // GPM only exists on PM-far (§7).
            }
            v.push(GpuConfig::small(model, system));
        }
    }
    v
}

#[test]
fn persist_fill_completes_and_is_durable_under_every_model() {
    for cfg in all_configs() {
        let kernel = persist_fill_kernel(PM_BASE);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(4, 128));
        let report = gpu
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{:?}/{}: {e}", cfg.model, cfg.system));
        assert_eq!(report.outcome, RunOutcome::Completed);
        for t in 0..4 * 128u64 {
            assert_eq!(gpu.read_nvm_u64(PM_BASE + t * 8), t + 1, "functional");
            assert_eq!(
                gpu.read_durable_u64(PM_BASE + t * 8),
                t + 1,
                "{:?}/{}: everything durable after the final drain",
                cfg.model,
                cfg.system
            );
        }
    }
}

#[test]
fn wal_trace_respects_pmo_in_complete_runs() {
    for model in ModelKind::ALL {
        let mut cfg = GpuConfig::small(model, SystemDesign::PmNear);
        cfg.trace = true;
        let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        gpu.run(LIMIT).expect("completes");
        let trace = gpu.take_trace().expect("tracing enabled");
        assert!(trace.persist_count() > 0);
        trace
            .check()
            .unwrap_or_else(|v| panic!("{model:?}: PMO violated: {v}"));
    }
}

#[test]
fn wal_crash_states_are_pmo_consistent_at_many_points() {
    // Crash the WAL kernel at a sweep of cycles; every durable image must
    // be downward-closed under PMO (the log entry persists first).
    for model in ModelKind::ALL {
        let mut cfg = GpuConfig::small(model, SystemDesign::PmNear);
        cfg.trace = true;
        for crash_at in [200, 500, 1000, 2000, 4000, 8000] {
            let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
            let mut gpu = Gpu::new(&cfg);
            gpu.launch(&kernel, LaunchConfig::new(2, 64));
            let _ = gpu.run_until(crash_at).expect("no deadlock");
            let trace = gpu.take_trace().expect("tracing enabled");
            trace
                .check()
                .unwrap_or_else(|v| panic!("{model:?} crash@{crash_at}: {v}"));
        }
    }
}

#[test]
fn wal_crash_never_shows_data_without_log() {
    // Semantic version of the crash-cut check, on the durable image
    // itself: data[t] != 0 implies log[t] == data[t].
    let log = PM_BASE;
    let data = PM_BASE + 64 * 1024;
    for model in ModelKind::ALL {
        let cfg = GpuConfig::small(model, SystemDesign::PmNear);
        for crash_at in [100, 300, 700, 1500, 3000, 6000, 12000] {
            let kernel = wal_kernel(log, data);
            let mut gpu = Gpu::new(&cfg);
            gpu.launch(&kernel, LaunchConfig::new(2, 64));
            let _ = gpu.run_until(crash_at).expect("no deadlock");
            let image = gpu.durable_image();
            for t in 0..128u64 {
                let d = image.read_u64(data + t * 8);
                let l = image.read_u64(log + t * 8);
                if d != 0 {
                    assert_eq!(
                        l, d,
                        "{model:?} crash@{crash_at}: data persisted before its log entry"
                    );
                }
            }
        }
    }
}

#[test]
fn block_scope_message_passing_orders_persists() {
    // Warp 0 persists then pRel_block; warp 1 spins on pAcq_block, then
    // persists. Checked via the trace.
    let flag = 0x10_000u64; // volatile flag
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE, flag]);
    let arr = b.param(0);
    let flag_r = b.param(1);
    let tid = b.special(Special::Tid);
    let warp = b.special(Special::WarpId);
    let is_w0 = b.eqi(warp, 0);
    let is_t0 = b.eqi(tid, 0);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.if_then_else(
        is_w0,
        |b| {
            b.st(addr, 0, tid, MemWidth::W8);
            // A single releasing thread keeps the formal model's
            // per-thread reads-from relation deterministic.
            b.if_then(is_t0, |b| {
                let one = b.movi(1);
                b.prel(flag_r, one, Scope::Block);
            });
        },
        |b| {
            b.while_loop(
                |b| {
                    let v = b.pacq(flag_r, Scope::Block);
                    b.eqi(v, 0)
                },
                |_| {},
            );
            b.st(addr, 4096, tid, MemWidth::W8);
        },
    );
    let kernel = b.build("mp_block");

    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 64));
    gpu.run(LIMIT).expect("completes");
    let trace = gpu.take_trace().expect("trace");
    let (graph, _, _) = trace.into_parts();
    // Find a persist from warp 0 (addr < PM_BASE+4096) and one from
    // warp 1 (addr >= PM_BASE+4096): PMO must hold between them.
    let mut w0 = None;
    let mut w1 = None;
    for p in graph.persists() {
        if let sbrp_core::formal::EventKind::Persist { addr } = graph.event(p).kind {
            if addr == PM_BASE {
                // The releasing thread's own persist (tid 0).
                w0.get_or_insert(p);
            } else if addr >= PM_BASE + 4096 {
                w1.get_or_insert(p);
            }
        }
    }
    let (w0, w1) = (
        w0.expect("releaser persisted"),
        w1.expect("acquirer persisted"),
    );
    assert!(
        graph.pmo_holds(w0, w1),
        "release/acquire created inter-thread PMO"
    );
    assert!(!graph.pmo_holds(w1, w0));
}

#[test]
fn device_scope_release_is_visible_across_sms() {
    // Block 0 releases a flag at device scope; block 1 spins with a
    // device-scope acquire. Blocks land on different SMs.
    let flag = 0x20_000u64;
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE, flag]);
    let arr = b.param(0);
    let flag_r = b.param(1);
    let cta = b.special(Special::CtaId);
    let tid = b.special(Special::Tid);
    let first = b.eqi(tid, 0);
    let is_b0 = b.eqi(cta, 0);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.if_then_else(
        is_b0,
        |b| {
            b.st(addr, 0, tid, MemWidth::W8);
            b.if_then(first, |b| {
                let one = b.movi(1);
                b.prel(flag_r, one, Scope::Device);
            });
        },
        |b| {
            b.if_then(first, |b| {
                b.while_loop(
                    |b| {
                        let v = b.pacq(flag_r, Scope::Device);
                        b.eqi(v, 0)
                    },
                    |_| {},
                );
            });
            b.sync_block();
            b.st(addr, 8192, tid, MemWidth::W8);
        },
    );
    let kernel = b.build("mp_device");

    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 32));
    let report = gpu
        .run(LIMIT)
        .expect("completes — the release must become visible");
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(gpu.read_nvm_u64(PM_BASE + 8192 + 8), 1);
}

#[test]
fn epoch_barrier_makes_prior_persists_durable() {
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.st(addr, 0, tid, MemWidth::W8);
    b.epoch_barrier();
    // Spin forever after the barrier so the run cannot complete; the
    // durability we observe at the crash is the barrier's doing.
    b.while_loop(|b| b.movi(1), |b| b.sleep(100));
    let kernel = b.build("barrier_then_spin");

    for model in [ModelKind::Epoch, ModelKind::Gpm] {
        let cfg = GpuConfig::small(model, SystemDesign::PmFar);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(1, 32));
        let report = gpu.run_until(2_000_000).expect("no deadlock");
        assert_eq!(report.outcome, RunOutcome::Crashed, "spin keeps it alive");
        for t in 0..32u64 {
            assert_eq!(
                gpu.read_durable_u64(PM_BASE + t * 8),
                t,
                "{model:?}: persist before the barrier must be durable"
            );
        }
    }
}

#[test]
fn sbrp_buffers_do_not_make_persists_durable_without_fences() {
    // Same shape, but under SBRP with *no* fence: at a mid-run crash the
    // persists may be buffered (window drains some, but the L1 may still
    // hold the rest). We only assert the run itself stays consistent —
    // and that the *functional* state is complete while durable may lag.
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.while_loop(|b| b.movi(1), |b| b.sleep(100));
    let kernel = b.build("store_then_spin");

    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    let _ = gpu.run_until(200_000).expect("no deadlock");
    let functional: Vec<u64> = (0..32).map(|t| gpu.read_nvm_u64(PM_BASE + t * 8)).collect();
    assert!(functional
        .iter()
        .enumerate()
        .all(|(t, &v)| v == t as u64 + 1));
}

#[test]
fn dfence_guarantees_durability_before_proceeding() {
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    let v = b.addi(tid, 7);
    b.st(addr, 0, v, MemWidth::W8);
    b.dfence();
    b.while_loop(|b| b.movi(1), |b| b.sleep(100));
    let kernel = b.build("dfence_then_spin");

    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 32));
    let _ = gpu.run_until(2_000_000).expect("no deadlock");
    for t in 0..32u64 {
        assert_eq!(
            gpu.read_durable_u64(PM_BASE + t * 8),
            t + 7,
            "dFence completed, so the persists are durable"
        );
    }
}

#[test]
fn atomics_serialize_and_return_old_values() {
    // Every thread of 2 blocks atomically increments one counter; the
    // result is the thread count and old values are unique — verified
    // by summing them: 0+1+...+(n-1).
    let ctr = 0x30_000u64;
    let out = 0x40_000u64;
    let mut b = KernelBuilder::new();
    b.set_params(vec![ctr, out]);
    let ctr_r = b.param(0);
    let out_r = b.param(1);
    let one = b.movi(1);
    let old = b.atom_add(ctr_r, one, MemWidth::W8);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(out_r, off);
    b.st(addr, 0, old, MemWidth::W8);
    let kernel = b.build("atomics");

    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    gpu.run(LIMIT).expect("completes");
    let n = 2 * 64u64;
    assert_eq!(gpu.read_u64(ctr), n);
    let sum: u64 = (0..n).map(|t| gpu.read_u64(out + t * 8)).sum();
    assert_eq!(sum, n * (n - 1) / 2, "old values are a permutation of 0..n");
}

#[test]
fn sync_block_joins_all_warps() {
    // Each warp writes its slot, syncs, then warp 0 sums all slots.
    let scratch = 0x50_000u64;
    let out = 0x60_000u64;
    let mut b = KernelBuilder::new();
    b.set_params(vec![scratch, out]);
    let scratch_r = b.param(0);
    let out_r = b.param(1);
    let tid = b.special(Special::Tid);
    let off = b.muli(tid, 8);
    let addr = b.add(scratch_r, off);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.sync_block();
    let is_t0 = b.eqi(tid, 0);
    b.if_then(is_t0, |b| {
        let sum = b.movi(0);
        let i = b.movi(0);
        let ntid = b.special(Special::Ntid);
        b.while_loop(
            |b| b.lt(i, ntid),
            |b| {
                let ioff = b.muli(i, 8);
                let iaddr = b.add(scratch_r, ioff);
                let x = b.ld(iaddr, 0, MemWidth::W8);
                b.bin_to(sbrp_isa::BinOp::Add, sum, x);
                let one = b.movi(1);
                b.bin_to(sbrp_isa::BinOp::Add, i, one);
            },
        );
        b.st(out_r, 0, sum, MemWidth::W8);
    });
    let kernel = b.build("sync");

    let cfg = GpuConfig::small(ModelKind::Epoch, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(1, 128));
    gpu.run(LIMIT).expect("completes");
    assert_eq!(gpu.read_u64(out), (1..=128u64).sum::<u64>());
}

#[test]
fn more_blocks_than_sms_get_dispatched_in_waves() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear); // 4 SMs
    let kernel = persist_fill_kernel(PM_BASE);
    let mut gpu = Gpu::new(&cfg);
    // 16 blocks of 1024 threads: one per SM at a time, 4 waves.
    gpu.launch(&kernel, LaunchConfig::new(16, 1024));
    gpu.run(LIMIT).expect("completes");
    for t in (0..16 * 1024u64).step_by(997) {
        assert_eq!(gpu.read_durable_u64(PM_BASE + t * 8), t + 1);
    }
}

#[test]
fn pm_far_is_slower_than_pm_near() {
    let kernel = persist_fill_kernel(PM_BASE);
    let run = |system| {
        let cfg = GpuConfig::small(ModelKind::Sbrp, system);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(8, 256));
        gpu.run(LIMIT).expect("completes").cycles
    };
    let near = run(SystemDesign::PmNear);
    let far = run(SystemDesign::PmFar);
    assert!(far > near, "PCIe must cost time: far={far} vs near={near}");
}

#[test]
fn recovery_boot_sees_only_durable_state() {
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    let _ = gpu.run_until(800).expect("no deadlock");
    let image = gpu.durable_image();
    let gpu2 = Gpu::from_image(&cfg, &image);
    for t in 0..128u64 {
        assert_eq!(
            gpu2.read_nvm_u64(PM_BASE + t * 8),
            image.read_u64(PM_BASE + t * 8),
            "recovered GPU boots from the durable image"
        );
    }
}

#[test]
fn scope_bug_block_ops_across_blocks_create_no_pmo() {
    // The §5.3 scoped persistency bug, observed through the hardware
    // trace: a block-scoped release/acquire pair used *across*
    // threadblocks synchronizes execution (the value flows through the
    // memory system) but creates no inter-thread persist memory order —
    // the formal graph must show the persists unordered.
    let flag = 0x70_000u64;
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE, flag]);
    let arr = b.param(0);
    let flag_r = b.param(1);
    let cta = b.special(Special::CtaId);
    let tid = b.special(Special::Tid);
    let first = b.eqi(tid, 0);
    let is_b0 = b.eqi(cta, 0);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.if_then_else(
        is_b0,
        |b| {
            b.if_then(first, |b| {
                b.st(addr, 0, tid, MemWidth::W8);
                let one = b.movi(1);
                // BUG: block scope, but the consumer is in another block.
                b.prel(flag_r, one, Scope::Block);
            });
        },
        |b| {
            b.if_then(first, |b| {
                b.while_loop(
                    |b| {
                        let v = b.pacq(flag_r, Scope::Block);
                        b.eqi(v, 0)
                    },
                    |_| {},
                );
                b.st(addr, 16384, tid, MemWidth::W8);
            });
        },
    );
    let kernel = b.build("scope_bug");

    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 32));
    gpu.run(LIMIT).expect("completes");
    let (graph, _, _) = gpu.take_trace().expect("trace").into_parts();
    let mut w1 = None;
    let mut w2 = None;
    for p in graph.persists() {
        if let sbrp_core::formal::EventKind::Persist { addr } = graph.event(p).kind {
            if addr == PM_BASE {
                w1 = Some(p);
            } else if addr == PM_BASE + 16384 {
                w2 = Some(p);
            }
        }
    }
    let (w1, w2) = (
        w1.expect("producer persisted"),
        w2.expect("consumer persisted"),
    );
    assert!(
        !graph.pmo_holds(w1, w2),
        "block scope across blocks must NOT create PMO — this is the §5.3 bug"
    );
    // …and the detector names it.
    assert!(
        !graph.scope_bugs().is_empty(),
        "the scoped-persistency-bug detector must flag the pattern"
    );
    assert_eq!(graph.scope_bugs()[0].effective, Scope::Block);
}

#[test]
fn correct_device_scope_closes_the_bug() {
    // Same shape with device scope: the PMO edge exists.
    let flag = 0x78_000u64;
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE + (1 << 24), flag]);
    let arr = b.param(0);
    let flag_r = b.param(1);
    let cta = b.special(Special::CtaId);
    let tid = b.special(Special::Tid);
    let first = b.eqi(tid, 0);
    let is_b0 = b.eqi(cta, 0);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.if_then_else(
        is_b0,
        |b| {
            b.if_then(first, |b| {
                b.st(addr, 0, tid, MemWidth::W8);
                let one = b.movi(1);
                b.prel(flag_r, one, Scope::Device);
            });
        },
        |b| {
            b.if_then(first, |b| {
                b.while_loop(
                    |b| {
                        let v = b.pacq(flag_r, Scope::Device);
                        b.eqi(v, 0)
                    },
                    |_| {},
                );
                b.st(addr, 16384, tid, MemWidth::W8);
            });
        },
    );
    let kernel = b.build("scope_fixed");

    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.trace = true;
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 32));
    gpu.run(LIMIT).expect("completes");
    let (graph, _, _) = gpu.take_trace().expect("trace").into_parts();
    let base = PM_BASE + (1 << 24);
    let mut w1 = None;
    let mut w2 = None;
    for p in graph.persists() {
        if let sbrp_core::formal::EventKind::Persist { addr } = graph.event(p).kind {
            if addr == base {
                w1 = Some(p);
            } else if addr == base + 16384 {
                w2 = Some(p);
            }
        }
    }
    let (w1, w2) = (w1.expect("producer"), w2.expect("consumer"));
    assert!(graph.pmo_holds(w1, w2), "device scope orders across blocks");
    assert!(
        graph.scope_bugs().is_empty(),
        "correct scope: nothing to flag"
    );
}
