//! Fault-injection tests, in two groups.
//!
//! *Positive*: event-triggered crash points (k-th WPQ accept / PB drain
//! / dFence wait) stop the machine at exactly the named event, and the
//! resulting crash states are clean — the durable image respects the
//! fence chain and the formal trace check passes.
//!
//! *Negative*: injected machine bugs (an ADR-violating WPQ drop, a torn
//! NVM write) MUST be detected — by the formal crash-cut checker and by
//! the semantic WAL invariant. A checker that stays green under these
//! faults is broken; these tests pin that down.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::fault::{CrashTrigger, FaultPlan, NvmFault, PcieFaultConfig};
use sbrp_gpu_sim::{Gpu, RunOutcome};
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};

const LOG: u64 = PM_BASE;
const DATA: u64 = PM_BASE + (1 << 20);
const COMMIT: u64 = PM_BASE + (2 << 20);
const THREADS: u64 = 128;
const MAX_CYCLES: u64 = 50_000_000;

/// log[t] = v; oFence; data[t] = v; oFence; commit[t] = 1
fn wal3_kernel() -> Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![LOG, DATA, COMMIT]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let commit_r = b.param(2);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let la = b.add(log_r, off);
    let da = b.add(data_r, off);
    let ca = b.add(commit_r, off);
    let v = b.addi(tid, 1_000);
    b.st(la, 0, v, MemWidth::W8);
    b.ofence();
    b.st(da, 0, v, MemWidth::W8);
    b.ofence();
    let one = b.movi(1);
    b.st(ca, 0, one, MemWidth::W8);
    b.build("wal3")
}

fn traced_cfg(model: ModelKind, system: SystemDesign) -> GpuConfig {
    let mut cfg = GpuConfig::small(model, system);
    cfg.trace = true;
    cfg
}

/// Runs the WAL kernel under `plan`; returns the GPU and the outcome.
fn run_planned(cfg: &GpuConfig, plan: FaultPlan) -> (Gpu, RunOutcome) {
    let mut gpu = Gpu::new(cfg);
    gpu.set_fault_plan(plan);
    gpu.launch(&wal3_kernel(), LaunchConfig::new(2, 64));
    let report = gpu.run_faulted(MAX_CYCLES).expect("no deadlock/timeout");
    (gpu, report.outcome)
}

/// The semantic WAL invariant over a durable image. Returns the first
/// violating thread, or `None` if the image is consistent.
fn wal_violation(gpu: &Gpu) -> Option<u64> {
    let image = gpu.durable_image();
    for t in 0..THREADS {
        let l = image.read_u64(LOG + t * 8);
        let d = image.read_u64(DATA + t * 8);
        let c = image.read_u64(COMMIT + t * 8);
        if c != 0 && d != t + 1_000 {
            return Some(t);
        }
        if d != 0 && l != d {
            return Some(t);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Positive: event-triggered crash points are exact and clean.
// ---------------------------------------------------------------------

#[test]
fn wpq_accept_trigger_crashes_at_exact_event() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    for k in [1u64, 3, 8] {
        let (mut gpu, outcome) = run_planned(&cfg, FaultPlan::crash_at(CrashTrigger::WpqAccept(k)));
        assert_eq!(outcome, RunOutcome::Crashed, "k={k}");
        assert_eq!(
            gpu.fault_event_counts().wpq_accepts,
            k,
            "stops at the k-th accept"
        );
        assert_eq!(
            wal_violation(&gpu),
            None,
            "clean crashes are consistent (k={k})"
        );
        gpu.take_trace()
            .expect("traced")
            .check()
            .expect("formally consistent");
    }
}

#[test]
fn pb_drain_trigger_crashes_and_stays_consistent() {
    for model in ModelKind::ALL {
        let cfg = traced_cfg(model, SystemDesign::PmNear);
        let (mut gpu, outcome) = run_planned(&cfg, FaultPlan::crash_at(CrashTrigger::PbDrain(5)));
        assert_eq!(outcome, RunOutcome::Crashed, "{model:?}");
        assert!(gpu.fault_event_counts().pb_drains >= 5, "{model:?}");
        assert_eq!(wal_violation(&gpu), None, "{model:?}");
        gpu.take_trace()
            .expect("traced")
            .check()
            .unwrap_or_else(|v| panic!("{model:?}: {v}"));
    }
}

#[test]
fn dfence_wait_trigger_crashes_mid_wait() {
    // The WAL kernel's oFences become dFences/epoch barriers under the
    // stricter engines; every model produces durability waits.
    for model in ModelKind::ALL {
        let cfg = traced_cfg(model, SystemDesign::PmNear);

        // Learn how many waits a crash-free run has.
        let (gpu, outcome) = run_planned(&cfg, FaultPlan::default());
        assert_eq!(outcome, RunOutcome::Completed);
        let total = gpu.fault_event_counts().dfence_waits;
        if total == 0 {
            continue; // nothing ever blocked on durability in this config
        }

        let k = total.div_ceil(2);
        let (mut gpu, outcome) =
            run_planned(&cfg, FaultPlan::crash_at(CrashTrigger::DFenceWait(k)));
        assert_eq!(outcome, RunOutcome::Crashed, "{model:?} k={k}/{total}");
        assert_eq!(wal_violation(&gpu), None, "{model:?}");
        gpu.take_trace()
            .expect("traced")
            .check()
            .unwrap_or_else(|v| panic!("{model:?}: {v}"));
    }
}

#[test]
fn crash_free_plan_matches_plain_run() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let (gpu, outcome) = run_planned(&cfg, FaultPlan::default());
    assert_eq!(outcome, RunOutcome::Completed);
    assert_eq!(wal_violation(&gpu), None);
    let counts = gpu.fault_event_counts();
    assert!(
        counts.wpq_accepts > 0,
        "counters observe events even with no faults"
    );
    assert!(counts.pb_drains > 0);
}

// ---------------------------------------------------------------------
// Negative: seeded machine bugs must be detected.
// ---------------------------------------------------------------------

#[test]
fn dropped_wpq_entry_is_caught_by_formal_check() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    // Drop the very first accepted write and run to completion: every
    // later persist (ordered after it by the oFence chain) becomes
    // durable, so the crash-cut's downward-closure is provably broken.
    let plan = FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(1));
    let (mut gpu, outcome) = run_planned(&cfg, plan);
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "the machine is lied to and proceeds"
    );
    let trace = gpu.take_trace().expect("traced");
    assert!(
        trace.check().is_err(),
        "formal checker must flag an ADR-violating dropped WPQ entry"
    );
}

#[test]
fn dropped_wpq_entry_is_caught_semantically() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    // Sweep a band of entries: whichever line the drop hits, at least
    // one dropped log/data line must break the WAL invariant once the
    // commits are durable (a dropped commit-line is the only benign
    // case, and it cannot absorb the whole band).
    let caught = (1..=12u64).any(|k| {
        let plan = FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(k));
        let (gpu, outcome) = run_planned(&cfg, plan);
        assert_eq!(outcome, RunOutcome::Completed);
        wal_violation(&gpu).is_some()
    });
    assert!(
        caught,
        "no dropped entry produced a semantically broken durable image"
    );
}

#[test]
fn torn_write_is_caught() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut formal = 0u32;
    let mut semantic = 0u32;
    for k in 1..=12u64 {
        let plan = FaultPlan::default().with_nvm(NvmFault::TornWrite {
            entry: k,
            chunks: 1,
        });
        let (mut gpu, outcome) = run_planned(&cfg, plan);
        assert_eq!(outcome, RunOutcome::Completed);
        if gpu.take_trace().expect("traced").check().is_err() {
            formal += 1;
        }
        if wal_violation(&gpu).is_some() {
            semantic += 1;
        }
    }
    assert!(formal > 0, "formal checker never flagged a torn write");
    assert!(semantic > 0, "WAL invariant never caught a torn write");
}

#[test]
fn torn_write_with_full_budget_is_benign() {
    // A "torn" write allowed enough chunks for the whole line is just a
    // commit: nothing should be flagged.
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let plan = FaultPlan::default().with_nvm(NvmFault::TornWrite {
        entry: 3,
        chunks: 1_000,
    });
    let (gpu, outcome) = run_planned(&cfg, plan);
    assert_eq!(outcome, RunOutcome::Completed);
    assert_eq!(wal_violation(&gpu), None);
    // The ack is still conservatively unmarked in the trace (the fault
    // path cannot prove the commit was complete), so skip the formal
    // check here; the semantic image check is the oracle.
}

// ---------------------------------------------------------------------
// Transient PCIe link faults (PM-far).
// ---------------------------------------------------------------------

#[test]
fn pcie_transient_faults_retry_and_complete() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmFar);
    let (clean, outcome) = run_planned(&cfg, FaultPlan::default());
    assert_eq!(outcome, RunOutcome::Completed);

    let plan = FaultPlan::default().with_pcie(PcieFaultConfig {
        period: 4,
        burst: 2,
        max_retries: 8,
        backoff_base: 64,
    });
    let (faulty, outcome) = run_planned(&cfg, plan);
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "bounded retry rides through glitches"
    );
    assert!(!faulty.fault_link_dead());
    assert_eq!(wal_violation(&faulty), None);

    let s = faulty.stats();
    assert!(s.pcie_retries > 0, "retries were exercised");
    assert!(s.pcie_backoff_cycles > 0, "backoff was charged");
    assert!(
        s.cycles > clean.stats().cycles,
        "retries + backoff cost cycles ({} vs {})",
        s.cycles,
        clean.stats().cycles
    );
}

#[test]
fn pcie_retry_budget_exhaustion_kills_the_link() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmFar);
    let plan = FaultPlan::default().with_pcie(PcieFaultConfig {
        period: 3,
        burst: 5,
        max_retries: 2, // burst outlives the budget → link death
        backoff_base: 16,
    });
    let (mut gpu, outcome) = run_planned(&cfg, plan);
    assert_eq!(
        outcome,
        RunOutcome::Crashed,
        "a dead link is a power-cut-equivalent"
    );
    assert!(gpu.fault_link_dead());
    // Even this crash is clean: durability was never misreported.
    assert_eq!(wal_violation(&gpu), None);
    gpu.take_trace()
        .expect("traced")
        .check()
        .expect("link death is a clean crash");
}

#[test]
fn pcie_faults_are_inert_on_pm_near() {
    let cfg = traced_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let plan = FaultPlan::default().with_pcie(PcieFaultConfig {
        period: 1,
        burst: 9,
        max_retries: 2,
        backoff_base: 16,
    });
    let (gpu, outcome) = run_planned(&cfg, plan);
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "PM-near never touches the PCIe link"
    );
    assert_eq!(gpu.stats().pcie_retries, 0);
}
