//! Property tests for the memory components: channels, caches, and the
//! backing store.

use proptest::prelude::*;
use sbrp_gpu_sim::mem::{Backing, Cache, Channel};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Channel accepts are monotonic in submission order and total time
    /// is bounded below by bytes/bandwidth.
    #[test]
    fn channel_is_monotonic_and_bandwidth_bound(
        bpc in 1.0f64..256.0,
        latency in 0u64..1000,
        xfers in proptest::collection::vec((0u64..5000, 1u64..4096), 1..100),
    ) {
        let mut ch = Channel::new(bpc, latency);
        let mut last_accept = 0;
        let mut total_bytes = 0u64;
        let mut first_start = u64::MAX;
        for &(now, bytes) in &xfers {
            let (accept, complete) = ch.access(now, bytes);
            prop_assert!(accept >= last_accept, "accepts must be FIFO-monotonic");
            prop_assert_eq!(complete, accept + latency);
            last_accept = accept;
            total_bytes += bytes;
            first_start = first_start.min(now);
        }
        prop_assert_eq!(ch.total_bytes(), total_bytes);
        let min_cycles = (total_bytes as f64 / bpc).floor() as u64;
        prop_assert!(
            last_accept >= first_start + min_cycles.saturating_sub(1),
            "bandwidth cannot be exceeded: accept {} < start {} + {}",
            last_accept, first_start, min_cycles
        );
    }

    /// The backing store behaves like a sparse byte map.
    #[test]
    fn backing_matches_hashmap_model(
        writes in proptest::collection::vec((0u64..100_000, any::<u64>(), 1u64..9), 1..200),
    ) {
        let mut b = Backing::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(addr, val, width) in &writes {
            b.write_uint(addr, val, width);
            for i in 0..width {
                model.insert(addr + i, (val >> (8 * i)) as u8);
            }
        }
        for &(addr, _, width) in &writes {
            let mut expect = 0u64;
            for i in (0..width).rev() {
                expect = (expect << 8) | u64::from(*model.get(&(addr + i)).unwrap_or(&0));
            }
            prop_assert_eq!(b.read_uint(addr, width), expect);
        }
    }

    /// A line just installed always hits; a set never holds more lines
    /// than its associativity.
    #[test]
    fn cache_install_then_hit(addrs in proptest::collection::vec(0u64..(1 << 20), 1..200)) {
        let mut c = Cache::new(16 * 1024, 4, 128);
        for &addr in &addrs {
            if c.lookup(addr).is_none() {
                let (way, _) = c.choose_victim(addr);
                c.install(way, addr, false, false);
            }
            prop_assert!(c.peek(addr).is_some(), "freshly installed line must be resident");
        }
        // The most recently accessed line is never the victim of the
        // next fill in the same set.
        let last = *addrs.last().unwrap();
        let probe = last ^ (1 << 19); // same set (offset beyond index bits for 32 sets? keep simple: different tag)
        if c.peek(probe).is_none() {
            let (_, victim) = c.choose_victim(probe);
            if let Some(v) = victim {
                prop_assert_ne!(v.addr, last & !127, "MRU line must not be evicted");
            }
        }
    }
}
