//! Property tests for stats integrity: random straight-line persist
//! kernels, run to completion under both persistency models and system
//! designs, must satisfy the counter cross-invariants no matter what
//! mix of stores, loads, and fences they contain.

use proptest::prelude::*;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::stats::SimStats;
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Persist to slot `n` of the thread's private PM region.
    St(u64),
    /// Load from slot `n` of the thread's private PM region.
    Ld(u64),
    OFence,
    DFence,
    Alu,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..32).prop_map(Op::St),
        2 => (0u64..32).prop_map(Op::Ld),
        1 => Just(Op::OFence),
        1 => Just(Op::DFence),
        1 => Just(Op::Alu),
    ]
}

/// Straight-line kernel over a 256-byte private PM region per thread
/// (no races, so every model completes deterministically).
fn build(ops: &[Op]) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE]);
    let base = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let region = b.muli(tid, 256);
    let tbase = b.add(base, region);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::St(slot) => {
                let v = b.addi(tid, i as u64 + 1);
                b.st(tbase, (slot * 8) as i64, v, MemWidth::W8);
            }
            Op::Ld(slot) => {
                let _ = b.ld(tbase, (slot * 8) as i64, MemWidth::W8);
            }
            Op::OFence => b.ofence(),
            Op::DFence => b.dfence(),
            Op::Alu => {
                let _ = b.addi(tid, 7);
            }
        }
    }
    b.build("prop_stats_kernel")
}

fn run(cfg: &GpuConfig, kernel: &sbrp_isa::Kernel) -> SimStats {
    let mut gpu = Gpu::new(cfg);
    gpu.launch(kernel, LaunchConfig::new(2, 64));
    gpu.run(LIMIT)
        .unwrap_or_else(|e| panic!("{:?}/{}: {e}", cfg.model, cfg.system));
    gpu.stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full invariant battery over random kernels.
    #[test]
    fn counters_are_cross_consistent(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let kernel = build(&ops);
        for model in [ModelKind::Epoch, ModelKind::Sbrp] {
            for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
                let cfg = GpuConfig::small(model, system);
                let s = run(&cfg, &kernel);
                let tag = format!("{model:?}/{system}");

                prop_assert_eq!(
                    s.l1_hits + s.l1_misses, s.l1_reads,
                    "{}: every L1 read is a hit or a miss", &tag
                );
                if system == SystemDesign::PmNear {
                    prop_assert_eq!(
                        s.pcie_bytes, 0,
                        "{}: PM-near never crosses PCIe", &tag
                    );
                }
                // Each WPQ accept commits a flush whose payload is
                // rounded up to a 32-byte NVM write sector. (The paper's
                // 64-byte WPQ-entry framing would give `64 *`, but the
                // simulator accounts the rounded payload, so the tight
                // lower bound here is 32 bytes per accept.)
                prop_assert!(
                    s.nvm_write_bytes >= 32 * s.wpq_accepts,
                    "{}: nvm_write_bytes {} < 32 * wpq_accepts {}",
                    &tag, s.nvm_write_bytes, s.wpq_accepts
                );
                prop_assert_eq!(
                    s.stall.bucket_sum(), s.stall.total,
                    "{}: stall buckets must sum to total", &tag
                );
                prop_assert_eq!(
                    s.pb.stores, s.pb.coalesced + s.pb.entries,
                    "{}: every PB store coalesces or allocates", &tag
                );
            }
        }
    }

    /// Bit-for-bit determinism: the same kernel under the same config
    /// yields identical stats (and therefore identical golden JSON).
    #[test]
    fn runs_are_deterministic(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        let kernel = build(&ops);
        let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmFar);
        let a = run(&cfg, &kernel);
        let b = run(&cfg, &kernel);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }
}
