//! Stall-attribution tests: every stalled warp-cycle lands in exactly
//! one cause bucket, fences are charged to their own causes, retries do
//! not inflate instruction counts, and the timeline tracer emits valid
//! Chrome-trace JSON.

use sbrp_core::pbuffer::DrainPolicy;
use sbrp_core::stall::StallCause;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

/// Kernel: pArr[gtid] = gtid + 1, then a dFence.
fn persist_then_dfence(base: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![base]);
    let arr = b.param(0);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    let v = b.addi(tid, 1);
    b.st(addr, 0, v, MemWidth::W8);
    b.dfence();
    b.build("persist_then_dfence")
}

/// Kernel: log[gtid] = x, oFence, data[gtid] = x.
fn wal_kernel(log: u64, data: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 100);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence();
    b.st(daddr, 0, v, MemWidth::W8);
    b.build("wal")
}

fn run(cfg: &GpuConfig, kernel: &sbrp_isa::Kernel, blocks: u32, threads: u32) -> Gpu {
    let mut gpu = Gpu::new(cfg);
    gpu.launch(kernel, LaunchConfig::new(blocks, threads));
    gpu.run(LIMIT)
        .unwrap_or_else(|e| panic!("{:?}/{}: {e}", cfg.model, cfg.system));
    gpu
}

/// The central invariant: the per-cause buckets account for every
/// charged stall cycle, at the aggregate, per-SM, and per-warp levels.
#[test]
fn stall_buckets_sum_to_total_everywhere() {
    for model in ModelKind::ALL {
        for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
            if model == ModelKind::Gpm && system == SystemDesign::PmNear {
                continue; // GPM only exists on PM-far (§7).
            }
            let cfg = GpuConfig::small(model, system);
            let gpu = run(&cfg, &wal_kernel(PM_BASE, PM_BASE + 64 * 1024), 4, 256);
            let stats = gpu.stats();
            assert_eq!(
                stats.stall.bucket_sum(),
                stats.stall.total,
                "{model:?}/{system}: merged buckets must sum to total"
            );
            assert!(stats.stall.total > 0, "{model:?}/{system}: warps stalled");

            let per_sm = gpu.sm_stall_breakdowns();
            let sm_total: u64 = per_sm.iter().map(|b| b.total).sum();
            assert_eq!(sm_total, stats.stall.total, "per-SM totals sum to merged");
            for (sm, b) in per_sm.iter().enumerate() {
                assert_eq!(b.bucket_sum(), b.total, "SM{sm} buckets sum to total");
                let warps = gpu.warp_stall_breakdowns(sm);
                for cause in StallCause::ALL {
                    let w: u64 = warps.iter().map(|wb| wb.get(cause)).sum();
                    assert_eq!(w, b.get(cause), "SM{sm} {cause}: warps sum to SM");
                }
            }
        }
    }
}

/// Fences are charged to their own causes, not lumped into a generic
/// bucket: a dFence-heavy kernel shows `DFence` cycles under SBRP and
/// the epoch baseline alike.
#[test]
fn fence_stalls_carry_their_cause() {
    for model in [ModelKind::Epoch, ModelKind::Sbrp] {
        let cfg = GpuConfig::small(model, SystemDesign::PmNear);
        let gpu = run(&cfg, &persist_then_dfence(PM_BASE), 4, 256);
        let stall = &gpu.stats().stall;
        assert!(
            stall.get(StallCause::DFence) > 0,
            "{model:?}: dFence waits must be charged to DFence, got {stall:?}"
        );
    }
}

/// Regression for the engine-retry double-count: a run where the persist
/// buffer is contended (tiny capacity, eager drain ⇒ many RetryFull
/// re-executions) must report exactly the same committed instruction
/// count as an uncontended run of the same kernel.
#[test]
fn retries_do_not_inflate_instruction_counts() {
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
    let uncontended = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let mut contended = uncontended.clone();
    contended.pb.capacity = 2;
    contended.pb.policy = DrainPolicy::Window(1);

    let base = run(&uncontended, &kernel, 4, 256);
    let tight = run(&contended, &kernel, 4, 256);
    let (b, t) = (base.stats(), tight.stats());
    // The tight PB must actually bounce stores back for retry —
    // otherwise this test exercises nothing.
    assert!(
        t.pb.stall_full > b.pb.stall_full,
        "capacity-2 PB must reject stores: {} vs {}",
        t.pb.stall_full,
        b.pb.stall_full
    );
    assert!(
        t.stall.get(StallCause::PbFull) > b.stall.get(StallCause::PbFull),
        "the contended run stalls on a full PB"
    );
    assert_eq!(
        b.instructions, t.instructions,
        "retried stores/fences must not re-count instructions"
    );
    assert_eq!(b.l1_reads, t.l1_reads, "loads execute exactly once each");
}

/// The timeline tracer produces Chrome-trace JSON with the expected
/// shape: process-name metadata per SM plus complete ("X") slices whose
/// names are warp states or memory events.
#[test]
fn timeline_exports_chrome_trace_json() {
    let mut cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmFar);
    cfg.timeline = true;
    let mut gpu = run(&cfg, &wal_kernel(PM_BASE, PM_BASE + 64 * 1024), 4, 256);
    let timeline = gpu.take_timeline().expect("cfg.timeline was set");
    let json = timeline.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["), "top-level key");
    assert!(json.trim_end().ends_with("}}"), "closed JSON object");
    assert!(json.contains("\"displayTimeUnit\""), "trailer metadata");
    assert!(json.contains("\"process_name\""), "SM process metadata");
    assert!(json.contains("\"ph\":\"X\""), "complete-event slices");
    assert!(json.contains("\"run\""), "running intervals recorded");
    assert!(json.contains("\"flush\""), "memory-side flush slices");
    // Every slice name is either a warp state or a memory event.
    let mut names: Vec<&str> = vec!["run", "flush", "pcie_retry"];
    names.extend(StallCause::ALL.iter().map(|c| c.label()));
    for piece in json.split("\"name\":\"").skip(1) {
        let name = piece.split('"').next().unwrap();
        assert!(
            names.contains(&name)
                || name == "process_name"
                || name.starts_with("SM")
                || name == "MemSubsystem",
            "unexpected slice name {name:?}"
        );
    }
}

/// A GPU that never ran charges nothing.
#[test]
fn idle_gpu_charges_no_stalls() {
    let cfg = GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear);
    let gpu = Gpu::new(&cfg);
    assert_eq!(gpu.stats().stall.total, 0);
    assert_eq!(gpu.stats().stall.bucket_sum(), 0);
}
