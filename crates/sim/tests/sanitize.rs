//! Online-sanitizer integration tests: `GpuConfig::sanitize` must stay
//! silent on correct executions (complete and crashed), flag machine
//! faults that break the persistency model, and flag §5.3 scoped
//! persistency bugs — all as `SimError::PmoViolation`.

use sbrp_core::scope::Scope;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::fault::{FaultPlan, NvmFault};
use sbrp_gpu_sim::{Gpu, RunOutcome, SimError};
use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};

const LIMIT: u64 = 50_000_000;

/// Kernel: log[gtid] = x, oFence, data[gtid] = x (the WAL idiom).
fn wal_kernel(log: u64, data: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let laddr = b.add(log_r, off);
    let daddr = b.add(data_r, off);
    let v = b.addi(tid, 100);
    b.st(laddr, 0, v, MemWidth::W8);
    b.ofence();
    b.st(daddr, 0, v, MemWidth::W8);
    b.build("wal")
}

/// Cross-block message passing with a chosen acquire/release scope.
fn message_pass_kernel(scope: Scope, flag: u64) -> sbrp_isa::Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![PM_BASE, flag]);
    let arr = b.param(0);
    let flag_r = b.param(1);
    let cta = b.special(Special::CtaId);
    let tid = b.special(Special::Tid);
    let first = b.eqi(tid, 0);
    let is_b0 = b.eqi(cta, 0);
    let off = b.muli(tid, 8);
    let addr = b.add(arr, off);
    b.if_then_else(
        is_b0,
        |b| {
            b.if_then(first, |b| {
                b.st(addr, 0, tid, MemWidth::W8);
                let one = b.movi(1);
                b.prel(flag_r, one, scope);
            });
        },
        |b| {
            b.if_then(first, |b| {
                b.while_loop(
                    |b| {
                        let v = b.pacq(flag_r, scope);
                        b.eqi(v, 0)
                    },
                    |_| {},
                );
                b.st(addr, 16384, tid, MemWidth::W8);
            });
        },
    );
    b.build("message_pass")
}

fn sanitize_cfg(model: ModelKind, system: SystemDesign) -> GpuConfig {
    let mut cfg = GpuConfig::small(model, system);
    cfg.sanitize = true;
    cfg
}

#[test]
fn correct_wal_sanitizes_clean_under_all_models_and_designs() {
    for model in [ModelKind::Sbrp, ModelKind::Epoch] {
        for system in [SystemDesign::PmFar, SystemDesign::PmNear] {
            let cfg = sanitize_cfg(model, system);
            let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
            let mut gpu = Gpu::new(&cfg);
            gpu.launch(&kernel, LaunchConfig::new(2, 64));
            let report = gpu
                .run(LIMIT)
                .unwrap_or_else(|e| panic!("{model:?}/{system}: {e}"));
            assert_eq!(report.outcome, RunOutcome::Completed);
        }
    }
}

#[test]
fn correct_wal_sanitizes_clean_at_crash_points() {
    for crash_at in [200, 500, 1000, 2000, 4000, 8000] {
        let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
        let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        gpu.run_until(crash_at)
            .unwrap_or_else(|e| panic!("crash@{crash_at}: {e}"));
    }
}

#[test]
fn sanitizer_catches_adr_violation() {
    // DropWpqEntry acknowledges a write whose bytes never reach the
    // durable image; everything fenced after it still becomes durable,
    // so the run-end crash cut is not downward-closed. The sanitizer
    // must turn that into a typed error.
    for model in [ModelKind::Sbrp, ModelKind::Epoch] {
        let cfg = sanitize_cfg(model, SystemDesign::PmNear);
        let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
        let mut gpu = Gpu::new(&cfg);
        gpu.set_fault_plan(FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(1)));
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        match gpu.run_faulted(LIMIT) {
            Err(SimError::PmoViolation { violation, .. }) => {
                assert!(violation.before < violation.after);
            }
            other => panic!("{model:?}: expected PmoViolation, got {other:?}"),
        }
    }
}

#[test]
fn sanitizer_catches_torn_write() {
    let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
    let mut gpu = Gpu::new(&cfg);
    gpu.set_fault_plan(FaultPlan::default().with_nvm(NvmFault::TornWrite {
        entry: 1,
        chunks: 1,
    }));
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    assert!(
        matches!(gpu.run_faulted(LIMIT), Err(SimError::PmoViolation { .. })),
        "a torn first commit must violate the crash cut"
    );
}

#[test]
fn sanitizer_catches_scope_bug_online() {
    // Block-scoped release/acquire across threadblocks: the value flows
    // (the consumer wakes up) but no PMO edge is created — the §5.3
    // scoped persistency bug, caught at run time.
    let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = message_pass_kernel(Scope::Block, 0x70_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 32));
    match gpu.run(LIMIT) {
        Err(SimError::PmoViolation { violation, .. }) => {
            assert!(violation.message.contains("scope"), "{violation}");
        }
        other => panic!("expected a scope-bug violation, got {other:?}"),
    }
}

#[test]
fn device_scope_message_pass_sanitizes_clean() {
    let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = message_pass_kernel(Scope::Device, 0x78_000);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 32));
    let report = gpu.run(LIMIT).expect("device scope is sufficient");
    assert_eq!(report.outcome, RunOutcome::Completed);
}

#[test]
fn warp_sampling_bounds_the_trace_and_stays_clean() {
    let mut cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.sanitize_sample = 2;
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    gpu.run(LIMIT).expect("sampled run is clean");
    let trace = gpu.take_trace().expect("sanitize keeps a trace");
    assert!(trace.persist_count() > 0, "some warps recorded");
    assert!(trace.skipped_count() > 0, "some warps skipped");
}

#[test]
fn sampling_can_miss_a_fault_but_never_invents_one() {
    // Sample only one warp stripe and drop a WPQ entry: depending on
    // which warp owned the entry the sanitizer may or may not see the
    // violation, but a clean verdict plus completion must never become
    // a false positive elsewhere. (Regression guard for the sampler's
    // all-or-nothing-per-warp property.)
    let mut cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    cfg.sanitize_sample = 4;
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);
    let mut gpu = Gpu::new(&cfg);
    gpu.set_fault_plan(FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(3)));
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    match gpu.run_faulted(LIMIT) {
        Ok(report) => assert_eq!(report.outcome, RunOutcome::Completed),
        Err(SimError::PmoViolation { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn sanitizer_checks_partial_trace_on_timeout() {
    // Regression: `Gpu::run`/`run_faulted` used to verify the trace only
    // on the completion path, so a cycle budget that expired mid-run
    // reported `Timeout` even when the events already captured proved a
    // PMO violation. The violation must outrank the timeout.
    let cfg = sanitize_cfg(ModelKind::Sbrp, SystemDesign::PmNear);
    let kernel = wal_kernel(PM_BASE, PM_BASE + 64 * 1024);

    // Learn the clean runtime so the budget reliably times out.
    let mut clean = Gpu::new(&cfg);
    clean.launch(&kernel, LaunchConfig::new(2, 64));
    let total = clean.run(LIMIT).expect("clean run completes").cycles;

    for use_run_faulted in [false, true] {
        let mut gpu = Gpu::new(&cfg);
        gpu.set_fault_plan(FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(1)));
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        let budget = total * 3 / 4;
        let got = if use_run_faulted {
            gpu.run_faulted(budget)
        } else {
            gpu.run(budget)
        };
        match got {
            Err(SimError::PmoViolation { violation, .. }) => {
                assert!(violation.before < violation.after);
            }
            other => panic!(
                "run_faulted={use_run_faulted}: expected the timeout path to \
                 surface the PMO violation, got {other:?}"
            ),
        }
    }

    // A *clean* run that times out still reports the timeout.
    let mut gpu = Gpu::new(&cfg);
    gpu.launch(&kernel, LaunchConfig::new(2, 64));
    match gpu.run(total / 2) {
        Err(SimError::Timeout { .. }) => {}
        other => panic!("expected Timeout for a clean partial run, got {other:?}"),
    }
}
