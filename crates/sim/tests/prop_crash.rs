//! Property tests: random crash points against the formal PMO model and
//! the semantic write-ahead-logging invariant, under every persistency
//! model.

use proptest::prelude::*;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
use sbrp_gpu_sim::Gpu;
use sbrp_isa::{Kernel, KernelBuilder, LaunchConfig, MemWidth, Special};

/// log[t] = v; oFence; data[t] = v; oFence; commit[t] = 1
fn wal3_kernel(log: u64, data: u64, commit: u64) -> Kernel {
    let mut b = KernelBuilder::new();
    b.set_params(vec![log, data, commit]);
    let log_r = b.param(0);
    let data_r = b.param(1);
    let commit_r = b.param(2);
    let tid = b.special(Special::GlobalTid);
    let off = b.muli(tid, 8);
    let la = b.add(log_r, off);
    let da = b.add(data_r, off);
    let ca = b.add(commit_r, off);
    let v = b.addi(tid, 1_000);
    b.st(la, 0, v, MemWidth::W8);
    b.ofence();
    b.st(da, 0, v, MemWidth::W8);
    b.ofence();
    let one = b.movi(1);
    b.st(ca, 0, one, MemWidth::W8);
    b.build("wal3")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crashing a three-stage WAL chain at any cycle leaves a durable
    /// image whose (log, data, commit) triples respect the fence chain,
    /// under every model and both system designs — and the recorded
    /// trace passes the formal crash-cut check.
    #[test]
    fn wal_chain_crash_states_are_ordered(
        crash_at in 100u64..60_000,
        model_ix in 0usize..3,
        system_ix in 0usize..2,
    ) {
        let model = ModelKind::ALL[model_ix];
        let system = [SystemDesign::PmNear, SystemDesign::PmFar][system_ix];
        let mut cfg = GpuConfig::small(model, system);
        cfg.trace = true;
        let log = PM_BASE;
        let data = PM_BASE + (1 << 20);
        let commit = PM_BASE + (2 << 20);
        let kernel = wal3_kernel(log, data, commit);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        let _ = gpu.run_until(crash_at).expect("no deadlock");

        // Semantic invariant on the durable image.
        let image = gpu.durable_image();
        for t in 0..128u64 {
            let l = image.read_u64(log + t * 8);
            let d = image.read_u64(data + t * 8);
            let c = image.read_u64(commit + t * 8);
            if c != 0 {
                prop_assert_eq!(d, t + 1_000, "commit durable before data (t={})", t);
            }
            if d != 0 {
                prop_assert_eq!(l, d, "data durable before log (t={})", t);
            }
        }

        // Formal invariant on the trace.
        let trace = gpu.take_trace().expect("tracing enabled");
        trace
            .check()
            .map_err(|v| TestCaseError::fail(format!("{model:?}/{system:?}: {v}")))?;
    }

    /// Booting from any crash image and re-running the kernel always
    /// converges to the fully-committed state, on both system designs.
    #[test]
    fn rerun_from_any_crash_image_converges(
        crash_at in 100u64..60_000,
        system_ix in 0usize..2,
    ) {
        let system = [SystemDesign::PmNear, SystemDesign::PmFar][system_ix];
        let cfg = GpuConfig::small(ModelKind::Sbrp, system);
        let log = PM_BASE;
        let data = PM_BASE + (1 << 20);
        let commit = PM_BASE + (2 << 20);
        let kernel = wal3_kernel(log, data, commit);
        let mut gpu = Gpu::new(&cfg);
        gpu.launch(&kernel, LaunchConfig::new(2, 64));
        let _ = gpu.run_until(crash_at).expect("no deadlock");
        let image = gpu.durable_image();

        let mut rgpu = Gpu::from_image(&cfg, &image);
        rgpu.launch(&kernel, LaunchConfig::new(2, 64));
        rgpu.run(50_000_000).expect("completes");
        for t in 0..128u64 {
            prop_assert_eq!(rgpu.read_durable_u64(data + t * 8), t + 1_000);
            prop_assert_eq!(rgpu.read_durable_u64(commit + t * 8), 1);
        }
    }
}
