//! The whole-GPU simulation loop: block dispatch, cycle stepping,
//! completion routing, and run control.

use crate::config::GpuConfig;
use crate::fault::{CrashTrigger, FaultEventCounts, FaultPlan};
use crate::mem::{Backing, Completion, MemSubsystem, PersistDest, ReqTag};
use crate::sm::Sm;
use crate::stats::SimStats;
use crate::trace::TraceCapture;
use sbrp_isa::{Kernel, LaunchConfig};

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The kernel finished and every persist drained to durability.
    Completed,
    /// The run was stopped at the requested crash cycle.
    Crashed,
}

/// Result of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Cycles elapsed since the GPU was created.
    pub cycles: u64,
}

/// Errors a run can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No warp could make progress and no memory event was pending.
    Deadlock {
        /// Cycle at which the simulation wedged.
        cycle: u64,
    },
    /// The cycle limit was reached before completion.
    Timeout {
        /// The limit that was hit.
        limit: u64,
    },
    /// A completion-protocol violation: a memory-system event routed to
    /// a component that cannot accept it (unknown persist ack, fill for
    /// a warp with no memory op, ack delivered to the wrong engine
    /// kind). Reported instead of panicking so campaign sweeps can
    /// record the cell as failed and continue.
    Protocol {
        /// Cycle at which the violation was detected.
        cycle: u64,
        /// What went wrong.
        detail: String,
    },
    /// The online sanitizer ([`crate::config::GpuConfig::sanitize`])
    /// found the execution violating the persistency model: durability
    /// inverted PMO, a crash state was not PMO-downward-closed, or a
    /// §5.3 scoped persistency bug synchronized without creating PMO.
    PmoViolation {
        /// Cycle at which the run ended (completion or crash) and the
        /// trace was verified.
        cycle: u64,
        /// The offending event pair and explanation.
        violation: sbrp_core::formal::PmoViolation,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle } => write!(f, "simulation deadlocked at cycle {cycle}"),
            SimError::Timeout { limit } => write!(f, "simulation exceeded {limit} cycles"),
            SimError::Protocol { cycle, detail } => {
                write!(
                    f,
                    "completion-protocol violation at cycle {cycle}: {detail}"
                )
            }
            SimError::PmoViolation { cycle, violation } => {
                write!(f, "persistency violation at cycle {cycle}: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct ActiveLaunch {
    kernel: Kernel,
    launch: LaunchConfig,
    next_block: u32,
    /// `completed_blocks` sum across SMs that marks launch completion.
    target_completed: u64,
    draining: bool,
}

/// The simulated GPU.
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    ms: MemSubsystem,
    tracer: Option<TraceCapture>,
    cycle: u64,
    active: Option<ActiveLaunch>,
    fault_trigger: Option<CrashTrigger>,
    /// Scratch buffer for completion routing, reused across steps so the
    /// hot loop never allocates for event delivery.
    completions: Vec<Completion>,
    /// Whether `SBRP_DEBUG_DRAIN` was set when this GPU was built. The
    /// environment is sampled once per instance: checking it every step
    /// costs a syscall-backed lookup on the hot path.
    debug_drain: bool,
    /// Last debug-print bucket, per instance. (A thread-local here would
    /// leak across `Gpu` instances run back-to-back on one sweep worker
    /// thread, suppressing or duplicating the first debug line of
    /// subsequent cells.)
    debug_bucket: u64,
    /// Disable fast-forwarding: advance strictly one cycle at a time.
    /// Not a `GpuConfig` field so sweep-cache fingerprints are
    /// unaffected; used by equivalence tests.
    serial: bool,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("sms", &self.sms.len())
            .field("active", &self.active.is_some())
            .finish()
    }
}

impl Gpu {
    /// Builds a GPU from a configuration.
    #[must_use]
    pub fn new(cfg: &GpuConfig) -> Self {
        Gpu {
            cfg: cfg.clone(),
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect(),
            ms: MemSubsystem::new(cfg),
            tracer: (cfg.trace || cfg.sanitize).then(|| {
                // A full trace is needed for external checks; sampling
                // only applies to the sanitizer-only configuration.
                if cfg.trace {
                    TraceCapture::new()
                } else {
                    TraceCapture::with_sample(cfg.sanitize_sample)
                }
            }),
            cycle: 0,
            active: None,
            fault_trigger: None,
            completions: Vec::new(),
            debug_drain: std::env::var_os("SBRP_DEBUG_DRAIN").is_some(),
            debug_bucket: 0,
            serial: false,
        }
    }

    /// Forces strictly serial stepping: the scheduler visits every cycle
    /// instead of fast-forwarding over idle gaps. Orders of magnitude
    /// slower; results (stats, stall breakdowns, durable images) must be
    /// identical to fast-forwarded runs, which the equivalence tests
    /// check.
    pub fn set_serial_stepping(&mut self, serial: bool) {
        self.serial = serial;
    }

    /// Builds a GPU whose NVM starts from a durable image (recovery boot).
    #[must_use]
    pub fn from_image(cfg: &GpuConfig, image: &Backing) -> Self {
        let mut gpu = Self::new(cfg);
        gpu.ms.nvm_mem = image.clone();
        gpu.ms.nvm_durable = image.clone();
        gpu
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the clock of an **idle** GPU by `cycles` without
    /// simulating anything. The request-serving harness uses this to
    /// model host-side gaps between batch launches (waiting for
    /// arrivals, linger timers) on the same clock the simulator keeps,
    /// so kernel durations and inter-batch idle time compose into one
    /// consistent service timeline. A recovered GPU can also be
    /// fast-forwarded to the crash cycle so the timeline survives
    /// crash + `from_image` reconstruction.
    ///
    /// # Panics
    /// Panics if a launch is still active — idle time only exists
    /// between launches, when every persist has drained and no memory
    /// event is pending.
    pub fn skip_idle(&mut self, cycles: u64) {
        assert!(
            self.active.is_none(),
            "skip_idle with an active launch: the GPU is not idle"
        );
        debug_assert!(
            self.ms.next_event().is_none(),
            "skip_idle with pending memory events"
        );
        self.cycle = self.cycle.saturating_add(cycles);
    }

    // ------------------------------------------------------------------
    // Memory setup / inspection
    // ------------------------------------------------------------------

    /// Writes initial volatile (GDDR) contents.
    pub fn load_gddr(&mut self, addr: u64, bytes: &[u8]) {
        self.ms.gddr_mem.write_bytes(addr, bytes);
    }

    /// Writes initial NVM contents, marked already-durable.
    pub fn load_nvm(&mut self, addr: u64, bytes: &[u8]) {
        self.ms.init_nvm(addr, bytes);
    }

    /// Reads a `u64` from functional memory (either space).
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.ms.read_mem(addr, 8)
    }

    /// Reads a `u64` from the functional NVM image.
    #[must_use]
    pub fn read_nvm_u64(&self, addr: u64) -> u64 {
        self.ms.nvm_mem.read_u64(addr)
    }

    /// Reads a `u64` from the *durable* NVM image (what a crash keeps).
    #[must_use]
    pub fn read_durable_u64(&self, addr: u64) -> u64 {
        self.ms.nvm_durable.read_u64(addr)
    }

    /// Clones the durable NVM image (crash extraction).
    #[must_use]
    pub fn durable_image(&self) -> Backing {
        self.ms.nvm_durable.clone()
    }

    /// Takes the persist trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<TraceCapture> {
        self.tracer.take()
    }

    /// Runs the online sanitizer's verdict over the trace recorded so
    /// far (a no-op unless [`crate::config::GpuConfig::sanitize`] is
    /// set). Non-consuming: the trace stays available for
    /// [`Gpu::take_trace`] and later re-checks (e.g. a subsequent crash
    /// point in the same campaign cell).
    ///
    /// # Errors
    /// [`SimError::PmoViolation`] with the offending event pair.
    pub fn sanitize_check(&self) -> Result<(), SimError> {
        if !self.cfg.sanitize {
            return Ok(());
        }
        let Some(tc) = self.tracer.as_ref() else {
            return Ok(());
        };
        tc.verify().map_err(|violation| SimError::PmoViolation {
            cycle: self.cycle,
            violation,
        })
    }

    // ------------------------------------------------------------------
    // Launch & run
    // ------------------------------------------------------------------

    /// Launches a kernel. Only one launch may be active at a time;
    /// sequential launches on the same GPU keep cache/channel state.
    ///
    /// # Panics
    /// Panics if a launch is already active or the block size exceeds
    /// the SM's warp slots.
    pub fn launch(&mut self, kernel: &Kernel, launch: LaunchConfig) {
        assert!(self.active.is_none(), "a launch is already active");
        assert!(
            launch.warps_per_block() <= self.cfg.max_warps_per_sm,
            "block does not fit in an SM"
        );
        let completed_now: u64 = self.sms.iter().map(|s| s.completed_blocks).sum();
        self.active = Some(ActiveLaunch {
            kernel: kernel.clone(),
            launch,
            next_block: 0,
            target_completed: completed_now + u64::from(launch.blocks),
            draining: false,
        });
        self.dispatch();
    }

    fn dispatch(&mut self) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        'outer: while active.next_block < active.launch.blocks {
            for sm in &mut self.sms {
                if sm.try_place_block(&active.kernel, active.launch, active.next_block) {
                    active.next_block += 1;
                    continue 'outer;
                }
            }
            break;
        }
    }

    /// Charges stall cycles up to `self.cycle - 1` on every SM. Run
    /// exit paths (crash, timeout) call this because a fast-forward can
    /// land exactly on the bound and leave the loop before the next
    /// step's charge — serial stepping charged that span cycle by
    /// cycle, and the two modes must agree.
    fn charge_pending_stalls(&mut self) {
        if let Some(prev) = self.cycle.checked_sub(1) {
            for sm in &mut self.sms {
                sm.charge_stalls(prev, &self.ms);
            }
        }
    }

    fn route_completions(&mut self) -> Result<(), SimError> {
        let protocol = |cycle: u64, detail: String| SimError::Protocol { cycle, detail };
        // Reuse the scratch buffer: taking it out keeps the borrow
        // checker happy while `self` routes each completion.
        let mut batch = std::mem::take(&mut self.completions);
        batch.clear();
        self.ms.poll_into(self.cycle, &mut batch);
        let mut result = Ok(());
        for c in &batch {
            let r = match c.tag {
                ReqTag::LoadFill { sm, token } | ReqTag::Atomic { sm, token } => self.sms
                    [sm as usize]
                    .on_fill(token as usize, &mut self.tracer, &self.ms)
                    .map_err(|d| protocol(c.at, d)),
                ReqTag::PersistAck { ack_id } => {
                    let suppressed = self.ms.fault_ack_suppressed(ack_id);
                    match self.ms.take_persist_dest(ack_id) {
                        None => Err(protocol(c.at, format!("unknown persist ack {ack_id}"))),
                        Some((dest, tokens)) => {
                            // A dropped/torn commit still acks (the machine
                            // is lied to), but the trace records the truth:
                            // these persists never became durable.
                            if !suppressed {
                                if let Some(tc) = self.tracer.as_mut() {
                                    tc.durable(&tokens, c.at);
                                }
                            }
                            match dest {
                                PersistDest::Sbrp { sm, line } => self.sms[sm as usize]
                                    .on_persist_ack(line)
                                    .map_err(|d| protocol(c.at, d)),
                                PersistDest::Epoch { sm } => self.sms[sm as usize]
                                    .on_epoch_ack(&mut self.ms, c.at)
                                    .map_err(|d| protocol(c.at, d)),
                                PersistDest::Detached => Ok(()),
                            }
                        }
                    }
                }
                ReqTag::PersistAccept { sm } => {
                    self.sms[sm as usize].on_flush_accepted();
                    Ok(())
                }
                ReqTag::EpochVol { sm } => self.sms[sm as usize]
                    .on_epoch_ack(&mut self.ms, c.at)
                    .map_err(|d| protocol(c.at, d)),
                ReqTag::None => Ok(()),
            };
            if let Err(e) = r {
                result = Err(e);
                break;
            }
        }
        self.completions = batch;
        result
    }

    /// Whether the active launch (if any) has fully completed and
    /// drained.
    fn launch_finished(&mut self) -> bool {
        let Some(active) = self.active.as_mut() else {
            return true;
        };
        let completed: u64 = self.sms.iter().map(|s| s.completed_blocks).sum();
        let blocks_done =
            active.next_block >= active.launch.blocks && completed >= active.target_completed;
        if !blocks_done {
            return false;
        }
        if !active.draining {
            active.draining = true;
            if self.debug_drain {
                eprintln!("[debug] blocks done at cycle {}", self.cycle);
            }
            for sm in &mut self.sms {
                sm.begin_final_drain(&mut self.ms, self.cycle);
            }
        }
        let quiescent = self.sms.iter().all(Sm::engine_quiescent);
        if quiescent && self.ms.next_event().is_none() {
            for sm in &mut self.sms {
                sm.end_final_drain();
            }
            self.active = None;
            true
        } else {
            false
        }
    }

    /// Advances one scheduling step, never moving `self.cycle` past
    /// `bound`. Returns `Ok(true)` when the active launch completed.
    ///
    /// Callers must only invoke this with `self.cycle < bound`; the
    /// landed cycle then satisfies `self.cycle <= bound` exactly, so run
    /// loops observe crash cycles, timeout limits, and cycle-window
    /// fault triggers on the cycle they name instead of overshooting
    /// them during a fast-forward jump.
    fn step_until(&mut self, bound: u64) -> Result<bool, SimError> {
        debug_assert!(self.cycle < bound, "step_until past its bound");
        if self.debug_drain {
            let bucket = self.cycle / 2048;
            if bucket != self.debug_bucket {
                self.debug_bucket = bucket;
                let flushes: u64 = self.sms.iter().map(|s| s.counters().persist_flushes).sum();
                let buffered: usize = self.sms.iter().map(Sm::debug_buffered).sum();
                eprintln!(
                    "[debug] cyc={} flushes={} buffered={}",
                    self.cycle, flushes, buffered
                );
            }
        }
        // Charge stalls up to the *previous* cycle before completions
        // land: a completion that unblocks a warp this cycle must not
        // erase the stalled span behind it (under fast-forward the whole
        // leapt span would vanish). `Sm::tick` charges the final cycle
        // with post-routing state — in serial stepping this pre-charge
        // is a delta-0 no-op, so both modes attribute identically.
        self.charge_pending_stalls();
        self.route_completions()?;
        let mut progress = false;
        for sm in &mut self.sms {
            progress |= sm.tick(self.cycle, &mut self.ms, &mut self.tracer);
        }
        self.dispatch();
        if self.launch_finished() {
            return Ok(true);
        }
        if progress || self.sms.iter().any(Sm::has_ready_warp) {
            self.cycle += 1;
            return Ok(false);
        }
        // Nothing can issue: fast-forward to the next wakeup/event,
        // clamped to the caller's bound.
        let next = self
            .sms
            .iter()
            .filter_map(Sm::next_wake)
            .chain(self.ms.next_event())
            .min();
        match next {
            Some(t) => {
                let mut target = t.max(self.cycle + 1).min(bound);
                // Stall causes are sampled when the jump lands, so a jump
                // must not cross the PCIe-backoff expiry: cycles on either
                // side of it are attributed differently.
                let backoff_until = self.ms.pcie_backoff_until();
                if self.cycle + 1 < backoff_until {
                    target = target.min(backoff_until - 1);
                }
                if self.serial {
                    target = self.cycle + 1;
                }
                self.cycle = target;
                Ok(false)
            }
            None => Err(SimError::Deadlock { cycle: self.cycle }),
        }
    }

    /// Runs until the active launch completes (including the final
    /// durability drain).
    ///
    /// # Errors
    /// [`SimError::Timeout`] if `max_cycles` elapse first, or
    /// [`SimError::Deadlock`] if nothing can ever make progress (a
    /// kernel bug, e.g. a spin on a flag nobody releases). With the
    /// online sanitizer armed, a PMO violation already present in the
    /// partial trace is reported as [`SimError::PmoViolation`] in
    /// preference to the timeout: a run that both wedged *and* broke
    /// the persistency model names the model violation, which is the
    /// bug worth debugging.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        let limit = self.cycle.saturating_add(max_cycles);
        while self.cycle < limit {
            if self.step_until(limit)? {
                self.sanitize_check()?;
                return Ok(RunReport {
                    outcome: RunOutcome::Completed,
                    cycles: self.cycle,
                });
            }
        }
        // The clamp in `step_until` guarantees the loop exits exactly at
        // the limit, so the error agrees with `self.cycle`.
        debug_assert_eq!(self.cycle, limit);
        self.charge_pending_stalls();
        // The events captured before the timeout still deserve PMO
        // verification — a violation must not hide behind the timeout.
        self.sanitize_check()?;
        Err(SimError::Timeout { limit })
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs a fault-injection plan (see [`crate::fault`]). Must be
    /// paired with [`Gpu::run_faulted`], which turns fault-triggered
    /// power cuts into [`RunOutcome::Crashed`] reports.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_trigger = plan.trigger;
        self.ms.set_fault_plan(plan);
    }

    /// Totals of the countable crash-trigger events so far; a campaign
    /// reads these after a crash-free run to size its sweep.
    #[must_use]
    pub fn fault_event_counts(&self) -> FaultEventCounts {
        let (wpq_accepts, pb_drains) = self.ms.fault_event_counts();
        FaultEventCounts {
            wpq_accepts,
            pb_drains,
            dfence_waits: self.sms.iter().map(|s| s.counters().dfence_waits).sum(),
        }
    }

    /// Whether the PCIe link died by exhausting its retry budget (a
    /// [`crate::fault::PcieFaultConfig`] consequence).
    #[must_use]
    pub fn fault_link_dead(&self) -> bool {
        self.ms.fault_link_dead()
    }

    /// Whether an installed fault plan has cut power.
    fn fault_crash_now(&self) -> bool {
        if self.ms.fault_crashed() {
            return true;
        }
        match self.fault_trigger {
            Some(CrashTrigger::AtCycle(c)) => self.cycle >= c,
            Some(CrashTrigger::DFenceWait(k)) => {
                self.sms
                    .iter()
                    .map(|s| s.counters().dfence_waits)
                    .sum::<u64>()
                    >= k
            }
            _ => false,
        }
    }

    /// Like [`Gpu::run`], but honours an installed [`FaultPlan`]: when a
    /// crash trigger fires (or the PCIe link dies), the run stops with
    /// [`RunOutcome::Crashed`] and the durable image holds exactly what
    /// the persistence domain had accepted. With no plan installed this
    /// is identical to [`Gpu::run`].
    ///
    /// # Errors
    /// [`SimError::Timeout`] if `max_cycles` elapse with neither
    /// completion nor a crash; [`SimError::Deadlock`] only for genuine
    /// (non-fault) wedges.
    pub fn run_faulted(&mut self, max_cycles: u64) -> Result<RunReport, SimError> {
        let limit = self.cycle.saturating_add(max_cycles);
        // A cycle-window trigger is a bound of its own: fast-forwarding
        // must land exactly on the trigger cycle, not leap over it.
        let bound = match self.fault_trigger {
            Some(CrashTrigger::AtCycle(c)) => limit.min(c.max(self.cycle + 1)),
            _ => limit,
        };
        while self.cycle < limit {
            if self.fault_crash_now() {
                // Deliver the events that landed at or before the crash
                // cycle, so the durable image is the exact event-prefix.
                // (A no-op for power cuts injected inside the memory
                // system, which already stop delivery at the cut.)
                self.charge_pending_stalls();
                self.route_completions()?;
                self.sanitize_check()?;
                return Ok(RunReport {
                    outcome: RunOutcome::Crashed,
                    cycles: self.cycle,
                });
            }
            match self.step_until(bound) {
                Ok(true) => {
                    self.sanitize_check()?;
                    return Ok(RunReport {
                        outcome: RunOutcome::Completed,
                        cycles: self.cycle,
                    });
                }
                Ok(false) => {}
                Err(e) => {
                    // A power cut strands waiters mid-step; that is the
                    // crash, not a simulator wedge.
                    if self.fault_crash_now() {
                        self.sanitize_check()?;
                        return Ok(RunReport {
                            outcome: RunOutcome::Crashed,
                            cycles: self.cycle,
                        });
                    }
                    return Err(e);
                }
            }
        }
        debug_assert_eq!(self.cycle, limit);
        self.charge_pending_stalls();
        // As in [`Gpu::run`]: verify the partial trace on the timeout
        // path so a PMO violation outranks the timeout report.
        self.sanitize_check()?;
        Err(SimError::Timeout { limit })
    }

    /// Runs until `crash_cycle` (simulated power failure) or completion,
    /// whichever comes first. On a crash, volatile state (caches, persist
    /// buffers, registers) is conceptually lost; use
    /// [`Gpu::durable_image`] for what survives.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] if the simulation wedges before either.
    pub fn run_until(&mut self, crash_cycle: u64) -> Result<RunReport, SimError> {
        while self.cycle < crash_cycle {
            if self.step_until(crash_cycle)? {
                self.sanitize_check()?;
                return Ok(RunReport {
                    outcome: RunOutcome::Completed,
                    cycles: self.cycle,
                });
            }
        }
        // Completions route at the *start* of each step, so events that
        // landed since the last step — up to and including `crash_cycle`
        // itself — are still pending. They happened before the power
        // failed: commit them, or the durable image misses the tail of
        // the event-prefix ≤ `crash_cycle`.
        self.charge_pending_stalls();
        self.route_completions()?;
        self.sanitize_check()?;
        Ok(RunReport {
            outcome: RunOutcome::Crashed,
            cycles: self.cycle,
        })
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// Aggregates statistics across SMs and the memory system.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let (pcie_retries, pcie_backoff_cycles) = self.ms.pcie_retry_stats();
        let mut s = SimStats {
            cycles: self.cycle,
            pcie_bytes: self.ms.pcie_bytes(),
            nvm_write_bytes: self.ms.nvm_write_bytes(),
            nvm_read_bytes: self.ms.nvm_read_bytes(),
            wpq_accepts: self.ms.fault_event_counts().0,
            pcie_retries,
            pcie_backoff_cycles,
            ..SimStats::default()
        };
        for sm in &self.sms {
            s.merge_sm(sm.counters());
            s.merge_stall(sm.stall_breakdown());
            s.epoch_rounds += sm.epoch_rounds();
            s.merge_pb(sm.pb_stats());
        }
        s
    }

    /// Per-SM stall breakdowns (index = SM id).
    #[must_use]
    pub fn sm_stall_breakdowns(&self) -> Vec<sbrp_core::stall::StallBreakdown> {
        self.sms.iter().map(|sm| sm.stall_breakdown()).collect()
    }

    /// Per-warp-slot stall breakdowns of SM `sm`.
    #[must_use]
    pub fn warp_stall_breakdowns(&self, sm: usize) -> &[sbrp_core::stall::StallBreakdown] {
        self.sms[sm].warp_stall_breakdowns()
    }

    /// Takes the recorded timeline, closing all open intervals at the
    /// current cycle. `None` unless the configuration set
    /// [`GpuConfig::timeline`].
    pub fn take_timeline(&mut self) -> Option<crate::timeline::Timeline> {
        if !self.cfg.timeline {
            return None;
        }
        let now = self.cycle;
        let mut slices = Vec::new();
        for sm in &mut self.sms {
            slices.extend(sm.take_timeline(now));
        }
        slices.extend(self.ms.take_timeline_slices());
        slices.sort_by_key(|s| (s.pid, s.tid, s.start));
        Some(crate::timeline::Timeline {
            slices,
            cycles: now,
            num_sms: self.cfg.num_sms,
        })
    }
}

// The sweep engine (`sbrp-harness::sweep`) runs independent `Gpu`
// instances on worker threads. These compile-time assertions pin the
// whole simulation state — the GPU, fault plans, and the persist
// tracer — as `Send`; the ISA shares statement trees via `Arc` for
// exactly this reason. Removing `Send` from any of these breaks the
// build here rather than in a distant generic bound.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Gpu>();
    assert_send::<RunReport>();
    assert_send::<SimError>();
    assert_send::<crate::fault::FaultPlan>();
    assert_send::<crate::trace::TraceCapture>();
    assert_send::<crate::stats::SimStats>();
};
