//! Persistent namespace table — the PM-near software model of §3.
//!
//! "In PM-near … we maintain a (persistent) namespace table, mapping the
//! names (address) of allocated contiguous memory regions to respective
//! physical addresses. The table tracks the sizes of allocated regions
//! along with the names. A name is used to access persistently stored
//! data after a crash. Upon recovery, previously allocated data
//! structures are re-mapped using an open routine that takes a name as a
//! parameter. The GPU driver manages this metadata."
//!
//! [`Namespace`] implements that driver-side metadata on top of the
//! simulator's NVM: regions are created before a launch, and after a
//! crash the recovery path re-opens them *by name from the durable
//! image* — addresses are stable because the table itself is persistent.
//! Table updates follow a commit protocol (payload first, then the valid
//! mark, then the count) so a host crash mid-`create` never corrupts it.

use crate::config::PM_BASE;
use crate::mem::Backing;
use crate::Gpu;
use std::fmt;

const MAGIC: u64 = 0x5342_5250_5f50_4d31; // "SBRP_PM1"
const MAX_ENTRIES: u64 = 64;
const NAME_BYTES: usize = 32;
/// Entry: name[32], addr u64, size u64, valid u64.
const ENTRY_BYTES: u64 = NAME_BYTES as u64 + 24;
const HEADER_BYTES: u64 = 16; // magic, count
/// First byte of the allocatable region space.
const HEAP_BASE: u64 = PM_BASE + 4096;

/// A named persistent region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Region name.
    pub name: String,
    /// Byte address in the NVM range.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

/// Errors from namespace operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmemError {
    /// The table's magic number is missing (unformatted NVM).
    Unformatted,
    /// A region with this name already exists.
    Exists,
    /// The table is full.
    TableFull,
    /// The name exceeds the fixed name field.
    NameTooLong,
    /// The table failed an integrity check (e.g. a torn write to driver
    /// metadata in a crash image).
    Corrupt(String),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::Unformatted => f.write_str("namespace table is not formatted"),
            PmemError::Exists => f.write_str("region name already exists"),
            PmemError::TableFull => f.write_str("namespace table is full"),
            PmemError::NameTooLong => f.write_str("region name exceeds 32 bytes"),
            PmemError::Corrupt(why) => write!(f, "namespace table corrupt: {why}"),
        }
    }
}

impl std::error::Error for PmemError {}

/// Driver-side view of the persistent namespace table.
///
/// All operations are host-side (between kernel launches) and act on
/// the GPU's NVM; [`Namespace::open_in`] additionally works directly on
/// a crash image, which is how recovery finds its data.
#[derive(Debug)]
pub struct Namespace;

impl Namespace {
    /// Formats an empty namespace table (destroys existing entries).
    pub fn format(gpu: &mut Gpu) {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        gpu.load_nvm(PM_BASE, &bytes);
    }

    fn entry_addr(i: u64) -> u64 {
        PM_BASE + HEADER_BYTES + i * ENTRY_BYTES
    }

    fn read_entry(img: &Backing, i: u64) -> Option<Region> {
        let base = Self::entry_addr(i);
        let valid = img.read_u64(base + NAME_BYTES as u64 + 16);
        if valid != 1 {
            return None;
        }
        let raw = img.read_bytes(base, NAME_BYTES);
        let len = raw.iter().position(|&b| b == 0).unwrap_or(NAME_BYTES);
        Some(Region {
            name: String::from_utf8_lossy(&raw[..len]).into_owned(),
            addr: img.read_u64(base + NAME_BYTES as u64),
            size: img.read_u64(base + NAME_BYTES as u64 + 8),
        })
    }

    /// Creates (allocates and registers) a region.
    ///
    /// # Errors
    /// [`PmemError`] on duplicate names, a full table, over-long names,
    /// or an unformatted device.
    pub fn create(gpu: &mut Gpu, name: &str, size: u64) -> Result<u64, PmemError> {
        if name.len() > NAME_BYTES {
            return Err(PmemError::NameTooLong);
        }
        let img = gpu.durable_image();
        if img.read_u64(PM_BASE) != MAGIC {
            return Err(PmemError::Unformatted);
        }
        let count = img.read_u64(PM_BASE + 8);
        if count >= MAX_ENTRIES {
            return Err(PmemError::TableFull);
        }
        // Next free address: after the highest existing region.
        let mut next = HEAP_BASE;
        for i in 0..count {
            if let Some(r) = Self::read_entry(&img, i) {
                if r.name == name {
                    return Err(PmemError::Exists);
                }
                next = next.max((r.addr + r.size + 127) & !127);
            }
        }
        // Commit protocol: payload, then valid mark, then count — a
        // crash between steps leaves either no entry or a complete one.
        let base = Self::entry_addr(count);
        let mut name_field = [0u8; NAME_BYTES];
        name_field[..name.len()].copy_from_slice(name.as_bytes());
        gpu.load_nvm(base, &name_field);
        gpu.load_nvm(base + NAME_BYTES as u64, &next.to_le_bytes());
        gpu.load_nvm(base + NAME_BYTES as u64 + 8, &size.to_le_bytes());
        gpu.load_nvm(base + NAME_BYTES as u64 + 16, &1u64.to_le_bytes());
        gpu.load_nvm(PM_BASE + 8, &(count + 1).to_le_bytes());
        Ok(next)
    }

    /// Opens a region by name on a live GPU.
    #[must_use]
    pub fn open(gpu: &Gpu, name: &str) -> Option<Region> {
        Self::open_in(&gpu.durable_image(), name)
    }

    /// Opens a region by name directly in a durable image — the recovery
    /// path ("a name is used to access persistently stored data after a
    /// crash").
    #[must_use]
    pub fn open_in(image: &Backing, name: &str) -> Option<Region> {
        if image.read_u64(PM_BASE) != MAGIC {
            return None;
        }
        let count = image.read_u64(PM_BASE + 8).min(MAX_ENTRIES);
        (0..count)
            .filter_map(|i| Self::read_entry(image, i))
            .find(|r| r.name == name)
    }

    /// Whether an image carries a formatted namespace table.
    #[must_use]
    pub fn is_formatted(image: &Backing) -> bool {
        image.read_u64(PM_BASE) == MAGIC
    }

    /// Integrity-checks the namespace table in a durable image: sane
    /// entry count, in-bounds region addresses, and no overlapping
    /// regions. Recovery paths (and the crash-recovery campaign) run
    /// this before trusting the table; a torn write to driver metadata
    /// surfaces here instead of as silent data corruption.
    ///
    /// # Errors
    /// [`PmemError::Unformatted`] if the magic is missing, or
    /// [`PmemError::Corrupt`] describing the first inconsistency found.
    pub fn verify_image(image: &Backing) -> Result<(), PmemError> {
        if !Self::is_formatted(image) {
            return Err(PmemError::Unformatted);
        }
        let count = image.read_u64(PM_BASE + 8);
        if count > MAX_ENTRIES {
            return Err(PmemError::Corrupt(format!(
                "entry count {count} > {MAX_ENTRIES}"
            )));
        }
        let mut regions: Vec<Region> = Vec::new();
        for i in 0..count {
            let base = Self::entry_addr(i);
            let valid = image.read_u64(base + NAME_BYTES as u64 + 16);
            if valid > 1 {
                return Err(PmemError::Corrupt(format!(
                    "entry {i} has valid mark {valid}"
                )));
            }
            let Some(r) = Self::read_entry(image, i) else {
                continue;
            };
            if r.addr < HEAP_BASE {
                return Err(PmemError::Corrupt(format!(
                    "region '{}' at {:#x} below heap base",
                    r.name, r.addr
                )));
            }
            if r.addr % 128 != 0 {
                return Err(PmemError::Corrupt(format!(
                    "region '{}' at {:#x} not 128-byte aligned",
                    r.name, r.addr
                )));
            }
            let Some(end) = r.addr.checked_add(r.size) else {
                return Err(PmemError::Corrupt(format!(
                    "region '{}' size overflows",
                    r.name
                )));
            };
            for prev in &regions {
                if r.addr < prev.addr + prev.size && prev.addr < end {
                    return Err(PmemError::Corrupt(format!(
                        "regions '{}' and '{}' overlap",
                        prev.name, r.name
                    )));
                }
            }
            regions.push(r);
        }
        Ok(())
    }

    /// Lists all regions in an image.
    #[must_use]
    pub fn list(image: &Backing) -> Vec<Region> {
        if image.read_u64(PM_BASE) != MAGIC {
            return Vec::new();
        }
        let count = image.read_u64(PM_BASE + 8).min(MAX_ENTRIES);
        (0..count)
            .filter_map(|i| Self::read_entry(image, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GpuConfig, SystemDesign};
    use sbrp_core::ModelKind;

    fn gpu() -> Gpu {
        Gpu::new(&GpuConfig::small(ModelKind::Sbrp, SystemDesign::PmNear))
    }

    #[test]
    fn create_then_open() {
        let mut g = gpu();
        Namespace::format(&mut g);
        let a = Namespace::create(&mut g, "kvs-table", 4096).unwrap();
        let b = Namespace::create(&mut g, "kvs-log", 8192).unwrap();
        assert!(b >= a + 4096, "regions do not overlap");
        let r = Namespace::open(&g, "kvs-log").unwrap();
        assert_eq!(r.addr, b);
        assert_eq!(r.size, 8192);
        assert_eq!(Namespace::list(&g.durable_image()).len(), 2);
    }

    #[test]
    fn open_missing_returns_none() {
        let mut g = gpu();
        Namespace::format(&mut g);
        assert_eq!(Namespace::open(&g, "nope"), None);
    }

    #[test]
    fn unformatted_device_is_rejected() {
        let mut g = gpu();
        assert_eq!(
            Namespace::create(&mut g, "x", 64),
            Err(PmemError::Unformatted)
        );
        assert_eq!(Namespace::open(&g, "x"), None);
        assert!(Namespace::list(&g.durable_image()).is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = gpu();
        Namespace::format(&mut g);
        Namespace::create(&mut g, "a", 64).unwrap();
        assert_eq!(Namespace::create(&mut g, "a", 64), Err(PmemError::Exists));
    }

    #[test]
    fn name_length_enforced() {
        let mut g = gpu();
        Namespace::format(&mut g);
        let long = "x".repeat(33);
        assert_eq!(
            Namespace::create(&mut g, &long, 64),
            Err(PmemError::NameTooLong)
        );
        let exact = "y".repeat(32);
        assert!(Namespace::create(&mut g, &exact, 64).is_ok());
        assert!(Namespace::open(&g, &exact).is_some());
    }

    #[test]
    fn table_fills_up() {
        let mut g = gpu();
        Namespace::format(&mut g);
        for i in 0..64 {
            Namespace::create(&mut g, &format!("r{i}"), 128).unwrap();
        }
        assert_eq!(
            Namespace::create(&mut g, "overflow", 128),
            Err(PmemError::TableFull)
        );
    }

    #[test]
    fn regions_survive_crash_images() {
        let mut g = gpu();
        Namespace::format(&mut g);
        let addr = Namespace::create(&mut g, "survivor", 256).unwrap();
        // The table is durable immediately (host-side writes go through
        // the init path): any crash image contains it.
        let image = g.durable_image();
        let r = Namespace::open_in(&image, "survivor").unwrap();
        assert_eq!(r.addr, addr);
    }

    #[test]
    fn verify_image_accepts_well_formed_tables() {
        let mut g = gpu();
        assert_eq!(
            Namespace::verify_image(&g.durable_image()),
            Err(PmemError::Unformatted)
        );
        Namespace::format(&mut g);
        Namespace::create(&mut g, "a", 256).unwrap();
        Namespace::create(&mut g, "b", 256).unwrap();
        assert!(Namespace::is_formatted(&g.durable_image()));
        assert_eq!(Namespace::verify_image(&g.durable_image()), Ok(()));
    }

    #[test]
    fn verify_image_catches_torn_metadata() {
        let mut g = gpu();
        Namespace::format(&mut g);
        Namespace::create(&mut g, "a", 256).unwrap();
        // Tear the entry's address field to something out of bounds.
        let mut img = g.durable_image();
        let base = Namespace::entry_addr(0);
        img.write_u64(base + NAME_BYTES as u64, PM_BASE / 2);
        assert!(matches!(
            Namespace::verify_image(&img),
            Err(PmemError::Corrupt(_))
        ));
        // And a bogus count.
        let mut img2 = g.durable_image();
        img2.write_u64(PM_BASE + 8, MAX_ENTRIES + 7);
        assert!(matches!(
            Namespace::verify_image(&img2),
            Err(PmemError::Corrupt(_))
        ));
    }

    #[test]
    fn addresses_are_region_aligned() {
        let mut g = gpu();
        Namespace::format(&mut g);
        let a = Namespace::create(&mut g, "a", 100).unwrap();
        let b = Namespace::create(&mut g, "b", 100).unwrap();
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
    }
}
