//! Persist-event tracing: connects the timing simulator to the formal
//! PMO checker of `sbrp-core`.
//!
//! When [`crate::config::GpuConfig::trace`] is set, the GPU records every
//! persist, fence, and scoped acquire/release (per lane, i.e. per
//! *thread*, matching the formal model's granularity), plus the cycle at
//! which each persist became durable. After the run — or after a crash —
//! the trace is checked against the model with [`TraceCapture::check`]
//! (crash-cut downward closure, plus durability-order on complete runs).

use sbrp_core::formal::{EventId, PmoViolation, TraceBuilder};
use sbrp_core::ops::PersistOpKind;
use sbrp_core::scope::{Scope, ThreadPos};
use std::collections::{HashMap, HashSet};

/// Accumulates an execution trace during simulation.
#[derive(Default)]
pub struct TraceCapture {
    tb: TraceBuilder,
    durable_at: HashMap<EventId, u64>,
    durable: HashSet<EventId>,
    /// Flag address → the latest release whose value is visible there.
    last_flag_rel: HashMap<u64, EventId>,
    persists: u64,
}

impl std::fmt::Debug for TraceCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCapture")
            .field("persists", &self.persists)
            .field("durable", &self.durable.len())
            .finish()
    }
}

impl TraceCapture {
    /// Creates an empty capture.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of persists recorded.
    #[must_use]
    pub fn persist_count(&self) -> u64 {
        self.persists
    }

    /// Records a persist by `thread` to `addr`; returns the opaque token
    /// to hand to the persist engine.
    pub fn persist(&mut self, thread: ThreadPos, addr: u64) -> u64 {
        self.persists += 1;
        self.tb.persist(thread, addr).index() as u64
    }

    /// Records an `oFence`, `dFence`, or epoch barrier by `thread`.
    pub fn fence(&mut self, thread: ThreadPos, op: PersistOpKind) {
        self.tb.op(thread, op, None);
    }

    /// Records a `pRel` by `thread` on flag `var`; call
    /// [`TraceCapture::flag_released`] when its flag write is applied.
    pub fn prel(&mut self, thread: ThreadPos, scope: Scope, var: u64) -> EventId {
        self.tb.op(thread, PersistOpKind::PRel(scope), Some(var))
    }

    /// The release `rel`'s flag write to `var` became visible.
    pub fn flag_released(&mut self, var: u64, rel: EventId) {
        self.last_flag_rel.insert(var, rel);
    }

    /// Records a `pAcq` by `thread` on flag `var` *at load completion*,
    /// linking it to the release whose value it observed (if any).
    pub fn pacq(&mut self, thread: ThreadPos, scope: Scope, var: u64) {
        let acq = self.tb.op(thread, PersistOpKind::PAcq(scope), Some(var));
        if let Some(&rel) = self.last_flag_rel.get(&var) {
            self.tb.observe(acq, rel);
        }
    }

    /// Marks the persists behind `tokens` durable at `cycle`.
    pub fn durable(&mut self, tokens: &[u64], cycle: u64) {
        for &t in tokens {
            let id = EventId::from_index(t as usize);
            self.durable.insert(id);
            self.durable_at.entry(id).or_insert(cycle);
        }
    }

    /// Consumes the capture, verifying both model checks: durability
    /// completion order respects PMO, and the durable set is
    /// PMO-downward-closed (the crash-cut property; it subsumes complete
    /// runs, where the cut is "everything").
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn check(self) -> Result<(), PmoViolation> {
        let (graph, durable_at, durable) = self.into_parts();
        graph.check_crash_cut(&durable)?;
        // Durability-order can only be checked over the durable subset;
        // restrict the map accordingly (non-durable persists are legal in
        // crash states).
        let complete = graph.persists().all(|p| durable_at.contains_key(&p));
        if complete {
            graph.check_durability_order(&durable_at)?;
        }
        Ok(())
    }

    /// Consumes the capture, returning the PMO graph plus durability data
    /// for custom checks.
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        sbrp_core::formal::PmoGraph,
        HashMap<EventId, u64>,
        HashSet<EventId>,
    ) {
        (self.tb.finish(), self.durable_at, self.durable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th(block: u32, tid: u32) -> ThreadPos {
        ThreadPos::new(block, tid)
    }

    #[test]
    fn capture_and_crash_check() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        tc.fence(th(0, 0), PersistOpKind::OFence);
        let _w2 = tc.persist(th(0, 0), 0x2000);
        tc.durable(&[w1], 100);
        let (g, _, d) = tc.into_parts();
        assert!(g.check_crash_cut(&d).is_ok());
    }

    #[test]
    fn crash_check_catches_reordered_durability() {
        let mut tc = TraceCapture::new();
        let _w1 = tc.persist(th(0, 0), 0x1000);
        tc.fence(th(0, 0), PersistOpKind::OFence);
        let w2 = tc.persist(th(0, 0), 0x2000);
        tc.durable(&[w2], 100); // w2 durable, w1 not: violation
        let (g, _, d) = tc.into_parts();
        assert!(g.check_crash_cut(&d).is_err());
    }

    #[test]
    fn acquire_links_to_last_release() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        let rel = tc.prel(th(0, 0), Scope::Block, 0x80);
        tc.flag_released(0x80, rel);
        tc.pacq(th(0, 32), Scope::Block, 0x80);
        let w2 = tc.persist(th(0, 32), 0x2000);
        let (g, _, _) = tc.into_parts();
        let (w1, w2) = (
            EventId::from_index(w1 as usize),
            EventId::from_index(w2 as usize),
        );
        assert!(g.pmo_holds(w1, w2));
    }

    #[test]
    fn acquire_without_visible_release_links_nothing() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        let _rel = tc.prel(th(0, 0), Scope::Block, 0x80);
        // Flag write not yet applied: the acquire reads the initial value.
        tc.pacq(th(0, 32), Scope::Block, 0x80);
        let w2 = tc.persist(th(0, 32), 0x2000);
        let (g, _, _) = tc.into_parts();
        let (w1, w2) = (
            EventId::from_index(w1 as usize),
            EventId::from_index(w2 as usize),
        );
        assert!(!g.pmo_holds(w1, w2));
    }
}
