//! Persist-event tracing: connects the timing simulator to the formal
//! PMO checker of `sbrp-core`.
//!
//! When [`crate::config::GpuConfig::trace`] is set, the GPU records every
//! persist, fence, and scoped acquire/release (per lane, i.e. per
//! *thread*, matching the formal model's granularity), plus the cycle at
//! which each persist became durable. After the run — or after a crash —
//! the trace is checked against the model with [`TraceCapture::check`]
//! (crash-cut downward closure, plus durability-order on complete runs).
//!
//! [`crate::config::GpuConfig::sanitize`] reuses the same capture as an
//! *online sanitizer*: the trace may then be sampled per warp (see
//! [`TraceCapture::with_sample`]) to bound memory, and is verified in
//! place with [`TraceCapture::verify`], which additionally surfaces the
//! scoped persistency bugs of §5.3 as violations.

use sbrp_core::formal::{EventId, PmoViolation, TraceBuilder};
use sbrp_core::ops::PersistOpKind;
use sbrp_core::scope::{Scope, ThreadPos};
use std::collections::{HashMap, HashSet};

/// Persist token standing in for an event the sampler chose not to
/// record. Never a valid [`EventId`] index; [`TraceCapture::durable`]
/// ignores it.
pub const SKIP_TOKEN: u64 = u64::MAX;

/// Accumulates an execution trace during simulation.
#[derive(Default)]
pub struct TraceCapture {
    tb: TraceBuilder,
    durable_at: HashMap<EventId, u64>,
    durable: HashSet<EventId>,
    /// Flag address → the latest release whose value is visible there.
    last_flag_rel: HashMap<u64, EventId>,
    persists: u64,
    /// Persists skipped by warp sampling.
    skipped: u64,
    /// Per-warp sampling modulus; `0`/`1` records every warp.
    sample: u32,
}

impl std::fmt::Debug for TraceCapture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCapture")
            .field("persists", &self.persists)
            .field("skipped", &self.skipped)
            .field("durable", &self.durable.len())
            .finish()
    }
}

impl TraceCapture {
    /// Creates an empty capture recording every warp.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty capture that records only every `sample`-th warp
    /// (`0`/`1` record all).
    ///
    /// Sampling is all-or-nothing per warp, so the recorded sub-trace is
    /// internally consistent: dropping a warp can only remove events and
    /// PMO edges, never invent them — a sampled check reports no false
    /// violations, it just sees fewer persists.
    #[must_use]
    pub fn with_sample(sample: u32) -> Self {
        TraceCapture {
            sample,
            ..TraceCapture::default()
        }
    }

    /// Number of persists recorded.
    #[must_use]
    pub fn persist_count(&self) -> u64 {
        self.persists
    }

    /// Number of persists the warp sampler skipped.
    #[must_use]
    pub fn skipped_count(&self) -> u64 {
        self.skipped
    }

    /// Whether `thread`'s warp is recorded under the current sampling
    /// modulus.
    #[must_use]
    pub fn sampled(&self, thread: ThreadPos) -> bool {
        if self.sample <= 1 {
            return true;
        }
        // Stripe across blocks so sampling is not aligned to warp 0 of
        // every block (the leader warp is often the interesting one, but
        // a stride keeps coverage representative for any modulus).
        let w = u64::from(thread.block.0)
            .wrapping_mul(31)
            .wrapping_add(u64::from(thread.warp_in_block()));
        w % u64::from(self.sample) == 0
    }

    /// Records a persist by `thread` to `addr`; returns the opaque token
    /// to hand to the persist engine ([`SKIP_TOKEN`] if the warp is not
    /// sampled).
    pub fn persist(&mut self, thread: ThreadPos, addr: u64) -> u64 {
        if !self.sampled(thread) {
            self.skipped += 1;
            return SKIP_TOKEN;
        }
        self.persists += 1;
        self.tb.persist(thread, addr).index() as u64
    }

    /// Records an `oFence`, `dFence`, or epoch barrier by `thread`.
    pub fn fence(&mut self, thread: ThreadPos, op: PersistOpKind) {
        if self.sampled(thread) {
            self.tb.op(thread, op, None);
        }
    }

    /// Records a `pRel` by `thread` on flag `var`; call
    /// [`TraceCapture::flag_released`] when its flag write is applied.
    /// Returns `None` if the warp is not sampled.
    pub fn prel(&mut self, thread: ThreadPos, scope: Scope, var: u64) -> Option<EventId> {
        self.sampled(thread)
            .then(|| self.tb.op(thread, PersistOpKind::PRel(scope), Some(var)))
    }

    /// The release `rel`'s flag write to `var` became visible.
    pub fn flag_released(&mut self, var: u64, rel: EventId) {
        self.last_flag_rel.insert(var, rel);
    }

    /// Records a `pAcq` by `thread` on flag `var` *at load completion*,
    /// linking it to the release whose value it observed (if any).
    pub fn pacq(&mut self, thread: ThreadPos, scope: Scope, var: u64) {
        if !self.sampled(thread) {
            return;
        }
        let acq = self.tb.op(thread, PersistOpKind::PAcq(scope), Some(var));
        if let Some(&rel) = self.last_flag_rel.get(&var) {
            self.tb.observe(acq, rel);
        }
    }

    /// Marks the persists behind `tokens` durable at `cycle`.
    pub fn durable(&mut self, tokens: &[u64], cycle: u64) {
        for &t in tokens {
            if t == SKIP_TOKEN {
                continue;
            }
            let id = EventId::from_index(t as usize);
            self.durable.insert(id);
            self.durable_at.entry(id).or_insert(cycle);
        }
    }

    /// Verifies the trace in place, without consuming the capture: the
    /// durable set must be PMO-downward-closed (crash-cut), durability
    /// completion order must respect PMO (checked only once every
    /// recorded persist is durable), and — unlike [`TraceCapture::check`]
    /// — any §5.3 scoped persistency bug (an acquire that observed a
    /// release whose scope excludes one of the threads) is reported as a
    /// violation outright. This is the online sanitizer's verdict.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), PmoViolation> {
        let graph = self.tb.clone().finish();
        if let Some(bug) = graph.scope_bugs().first() {
            return Err(PmoViolation {
                before: bug.release,
                after: bug.acquire,
                message: bug.to_string(),
            });
        }
        graph.check_crash_cut(&self.durable)?;
        if graph.persists().all(|p| self.durable_at.contains_key(&p)) {
            graph.check_durability_order(&self.durable_at)?;
        }
        Ok(())
    }

    /// Consumes the capture, verifying both model checks: durability
    /// completion order respects PMO, and the durable set is
    /// PMO-downward-closed (the crash-cut property; it subsumes complete
    /// runs, where the cut is "everything").
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn check(self) -> Result<(), PmoViolation> {
        let (graph, durable_at, durable) = self.into_parts();
        graph.check_crash_cut(&durable)?;
        // Durability-order can only be checked over the durable subset;
        // restrict the map accordingly (non-durable persists are legal in
        // crash states).
        let complete = graph.persists().all(|p| durable_at.contains_key(&p));
        if complete {
            graph.check_durability_order(&durable_at)?;
        }
        Ok(())
    }

    /// Consumes the capture, returning the PMO graph plus durability data
    /// for custom checks.
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (
        sbrp_core::formal::PmoGraph,
        HashMap<EventId, u64>,
        HashSet<EventId>,
    ) {
        (self.tb.finish(), self.durable_at, self.durable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th(block: u32, tid: u32) -> ThreadPos {
        ThreadPos::new(block, tid)
    }

    #[test]
    fn capture_and_crash_check() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        tc.fence(th(0, 0), PersistOpKind::OFence);
        let _w2 = tc.persist(th(0, 0), 0x2000);
        tc.durable(&[w1], 100);
        let (g, _, d) = tc.into_parts();
        assert!(g.check_crash_cut(&d).is_ok());
    }

    #[test]
    fn crash_check_catches_reordered_durability() {
        let mut tc = TraceCapture::new();
        let _w1 = tc.persist(th(0, 0), 0x1000);
        tc.fence(th(0, 0), PersistOpKind::OFence);
        let w2 = tc.persist(th(0, 0), 0x2000);
        tc.durable(&[w2], 100); // w2 durable, w1 not: violation
        let (g, _, d) = tc.into_parts();
        assert!(g.check_crash_cut(&d).is_err());
    }

    #[test]
    fn acquire_links_to_last_release() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        let rel = tc.prel(th(0, 0), Scope::Block, 0x80).expect("sampled");
        tc.flag_released(0x80, rel);
        tc.pacq(th(0, 32), Scope::Block, 0x80);
        let w2 = tc.persist(th(0, 32), 0x2000);
        let (g, _, _) = tc.into_parts();
        let (w1, w2) = (
            EventId::from_index(w1 as usize),
            EventId::from_index(w2 as usize),
        );
        assert!(g.pmo_holds(w1, w2));
    }

    #[test]
    fn acquire_without_visible_release_links_nothing() {
        let mut tc = TraceCapture::new();
        let w1 = tc.persist(th(0, 0), 0x1000);
        let _rel = tc.prel(th(0, 0), Scope::Block, 0x80).expect("sampled");
        // Flag write not yet applied: the acquire reads the initial value.
        tc.pacq(th(0, 32), Scope::Block, 0x80);
        let w2 = tc.persist(th(0, 32), 0x2000);
        let (g, _, _) = tc.into_parts();
        let (w1, w2) = (
            EventId::from_index(w1 as usize),
            EventId::from_index(w2 as usize),
        );
        assert!(!g.pmo_holds(w1, w2));
    }

    #[test]
    fn sampling_skips_whole_warps() {
        // sample=2 with the block-31 stripe: block 0 records warps
        // 0, 2, …; block 1 records odd warps (31+w ≡ 0 mod 2).
        let mut tc = TraceCapture::with_sample(2);
        assert!(tc.sampled(th(0, 0)));
        assert!(!tc.sampled(th(0, 32)));
        assert!(!tc.sampled(th(1, 0)));
        assert!(tc.sampled(th(1, 32)));

        let t0 = tc.persist(th(0, 0), 0x1000);
        let t1 = tc.persist(th(0, 32), 0x2000);
        assert_ne!(t0, SKIP_TOKEN);
        assert_eq!(t1, SKIP_TOKEN);
        assert_eq!(tc.persist_count(), 1);
        assert_eq!(tc.skipped_count(), 1);
        // Durable marking ignores the skip token.
        tc.durable(&[t0, t1], 100);
        assert!(tc.verify().is_ok());
    }

    #[test]
    fn verify_is_non_consuming_and_matches_check() {
        let mut tc = TraceCapture::new();
        let _w1 = tc.persist(th(0, 0), 0x1000);
        tc.fence(th(0, 0), PersistOpKind::OFence);
        let w2 = tc.persist(th(0, 0), 0x2000);
        tc.durable(&[w2], 100); // successor durable, predecessor not
        assert!(tc.verify().is_err());
        assert!(tc.verify().is_err(), "verify leaves the capture intact");
        assert!(tc.check().is_err());
    }

    #[test]
    fn verify_reports_scope_bugs_as_violations() {
        let mut tc = TraceCapture::new();
        tc.persist(th(0, 0), 0x1000);
        // Block-scoped release/acquire across different blocks: the
        // value flows, but no PMO edge exists (§5.3).
        let rel = tc.prel(th(0, 0), Scope::Block, 0x80).expect("sampled");
        tc.flag_released(0x80, rel);
        tc.pacq(th(1, 0), Scope::Block, 0x80);
        let err = tc.verify().expect_err("scope bug must surface");
        assert!(err.message.contains("scope"), "{err}");
    }
}
