//! Crash injection and recovery orchestration.
//!
//! The failure model matches the paper's (§2, ADR): on a power failure,
//! everything volatile — caches, persist buffers, registers, in-flight
//! requests — is lost; the WPQ's accepted writes and the NVM contents
//! survive. The simulator maintains that durable image continuously, so
//! a crash is simply "stop and take the image".

use crate::config::GpuConfig;
use crate::gpu::{Gpu, RunOutcome, SimError};
use crate::mem::Backing;
use sbrp_isa::{Kernel, LaunchConfig};

/// The persistent state surviving a crash.
#[derive(Clone, Debug)]
pub struct CrashImage {
    /// Durable NVM contents.
    pub nvm: Backing,
    /// Cycle at which the crash occurred.
    pub cycle: u64,
}

/// Outcome of [`run_with_crash`].
#[derive(Debug)]
pub enum CrashRun {
    /// The kernel finished before the crash point; no crash happened.
    Completed {
        /// The GPU, for stats/inspection.
        gpu: Box<Gpu>,
    },
    /// Power failed at the crash point.
    Crashed {
        /// What survived.
        image: CrashImage,
        /// The crashed GPU (volatile state is *not* meaningful for
        /// recovery; exposed for stats/trace extraction only).
        gpu: Box<Gpu>,
    },
}

/// Launches `kernel` on a fresh GPU configured by `cfg`, with initial
/// NVM/GDDR images, and crashes it at `crash_cycle`.
///
/// # Errors
/// Propagates simulator deadlocks.
pub fn run_with_crash(
    cfg: &GpuConfig,
    init: impl FnOnce(&mut Gpu),
    kernel: &Kernel,
    launch: LaunchConfig,
    crash_cycle: u64,
) -> Result<CrashRun, SimError> {
    let mut gpu = Gpu::new(cfg);
    init(&mut gpu);
    gpu.launch(kernel, launch);
    let report = gpu.run_until(crash_cycle)?;
    Ok(match report.outcome {
        RunOutcome::Completed => CrashRun::Completed { gpu: Box::new(gpu) },
        RunOutcome::Crashed => CrashRun::Crashed {
            image: CrashImage {
                nvm: gpu.durable_image(),
                cycle: report.cycles,
            },
            gpu: Box::new(gpu),
        },
    })
}

/// Boots a recovery GPU from a crash image and runs `recovery` to
/// completion, returning the recovered GPU.
///
/// # Errors
/// Propagates simulator deadlocks/timeouts from the recovery kernel.
pub fn recover(
    cfg: &GpuConfig,
    image: &CrashImage,
    init_volatile: impl FnOnce(&mut Gpu),
    recovery: &Kernel,
    launch: LaunchConfig,
    max_cycles: u64,
) -> Result<Gpu, SimError> {
    let mut gpu = Gpu::from_image(cfg, &image.nvm);
    init_volatile(&mut gpu);
    gpu.launch(recovery, launch);
    gpu.run(max_cycles)?;
    Ok(gpu)
}
