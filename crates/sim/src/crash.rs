//! Crash injection and recovery orchestration.
//!
//! The failure model matches the paper's (§2, ADR): on a power failure,
//! everything volatile — caches, persist buffers, registers, in-flight
//! requests — is lost; the WPQ's accepted writes and the NVM contents
//! survive. The simulator maintains that durable image continuously, so
//! a crash is simply "stop and take the image".

use crate::config::GpuConfig;
use crate::fault::FaultPlan;
use crate::gpu::{Gpu, RunOutcome, SimError};
use crate::mem::Backing;
use sbrp_isa::{Kernel, LaunchConfig};

/// The persistent state surviving a crash.
#[derive(Clone, Debug)]
pub struct CrashImage {
    /// Durable NVM contents.
    pub nvm: Backing,
    /// Cycle at which the crash occurred.
    pub cycle: u64,
}

/// Outcome of [`run_with_crash`].
#[derive(Debug)]
pub enum CrashRun {
    /// The kernel finished before the crash point; no crash happened.
    Completed {
        /// The GPU, for stats/inspection.
        gpu: Box<Gpu>,
    },
    /// Power failed at the crash point.
    Crashed {
        /// What survived.
        image: CrashImage,
        /// The crashed GPU (volatile state is *not* meaningful for
        /// recovery; exposed for stats/trace extraction only).
        gpu: Box<Gpu>,
    },
}

/// Launches `kernel` on a fresh GPU configured by `cfg`, with initial
/// NVM/GDDR images, and crashes it at `crash_cycle`.
///
/// # Errors
/// Propagates simulator deadlocks.
pub fn run_with_crash(
    cfg: &GpuConfig,
    init: impl FnOnce(&mut Gpu),
    kernel: &Kernel,
    launch: LaunchConfig,
    crash_cycle: u64,
) -> Result<CrashRun, SimError> {
    let mut gpu = Gpu::new(cfg);
    init(&mut gpu);
    gpu.launch(kernel, launch);
    let report = gpu.run_until(crash_cycle)?;
    Ok(match report.outcome {
        RunOutcome::Completed => CrashRun::Completed { gpu: Box::new(gpu) },
        RunOutcome::Crashed => CrashRun::Crashed {
            image: CrashImage {
                nvm: gpu.durable_image(),
                cycle: report.cycles,
            },
            gpu: Box::new(gpu),
        },
    })
}

/// Like [`run_with_crash`], but the crash point (and any injected
/// machine bugs) come from a [`FaultPlan`] — crash at the k-th WPQ
/// accept / PB drain / dFence wait instead of at a raw cycle number.
///
/// # Errors
/// Propagates simulator deadlocks and timeouts.
pub fn run_with_plan(
    cfg: &GpuConfig,
    init: impl FnOnce(&mut Gpu),
    kernel: &Kernel,
    launch: LaunchConfig,
    plan: FaultPlan,
    max_cycles: u64,
) -> Result<CrashRun, SimError> {
    let mut gpu = Gpu::new(cfg);
    init(&mut gpu);
    gpu.set_fault_plan(plan);
    gpu.launch(kernel, launch);
    let report = gpu.run_faulted(max_cycles)?;
    Ok(match report.outcome {
        RunOutcome::Completed => CrashRun::Completed { gpu: Box::new(gpu) },
        RunOutcome::Crashed => CrashRun::Crashed {
            image: CrashImage {
                nvm: gpu.durable_image(),
                cycle: report.cycles,
            },
            gpu: Box::new(gpu),
        },
    })
}

/// Why [`recover`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// The recovery run hit a simulator error (deadlock/timeout).
    Sim(SimError),
    /// The recovery run stopped without completing — e.g. a fault plan
    /// installed by `init_volatile` crashed it again. Recovery must
    /// never be reported successful in this case.
    Incomplete {
        /// How the run actually ended.
        outcome: RunOutcome,
        /// Cycles elapsed when it stopped.
        cycles: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Sim(e) => write!(f, "recovery run failed: {e}"),
            RecoverError::Incomplete { outcome, cycles } => {
                write!(
                    f,
                    "recovery ended {outcome:?} (not Completed) at cycle {cycles}"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<SimError> for RecoverError {
    fn from(e: SimError) -> Self {
        RecoverError::Sim(e)
    }
}

/// Boots a recovery GPU from a crash image and runs `recovery` to
/// completion, returning the recovered GPU. `init_volatile` may install
/// a [`FaultPlan`] to crash the recovery run itself (nested-crash
/// campaigns); the run honours it.
///
/// # Errors
/// [`RecoverError::Sim`] for simulator deadlocks/timeouts, and
/// [`RecoverError::Incomplete`] if the recovery run ended any way other
/// than [`RunOutcome::Completed`] — an incomplete recovery is a
/// failure, never silently accepted.
pub fn recover(
    cfg: &GpuConfig,
    image: &CrashImage,
    init_volatile: impl FnOnce(&mut Gpu),
    recovery: &Kernel,
    launch: LaunchConfig,
    max_cycles: u64,
) -> Result<Gpu, RecoverError> {
    let mut gpu = Gpu::from_image(cfg, &image.nvm);
    init_volatile(&mut gpu);
    gpu.launch(recovery, launch);
    let report = gpu.run_faulted(max_cycles)?;
    if report.outcome != RunOutcome::Completed {
        return Err(RecoverError::Incomplete {
            outcome: report.outcome,
            cycles: report.cycles,
        });
    }
    Ok(gpu)
}
