//! Aggregate simulation statistics.

use crate::sm::SmCounters;
use sbrp_core::pbuffer::PbStats;
use sbrp_core::stall::StallBreakdown;
use std::fmt::Write as _;

/// Counters collected over a run; the evaluation figures are computed
/// from these.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated (runtime — Figs. 6/7/9/10/11).
    pub cycles: u64,
    /// Dynamic warp instructions retired (each instruction once —
    /// engine-stall retries and multi-group continuations don't count).
    pub instructions: u64,
    /// L1 read accesses, all spaces (`l1_hits + l1_misses`).
    pub l1_reads: u64,
    /// L1 hits, all accesses.
    pub l1_hits: u64,
    /// L1 misses, all accesses.
    pub l1_misses: u64,
    /// L1 *read* accesses to NVM data.
    pub l1_pm_reads: u64,
    /// L1 *read misses* for NVM data (Fig. 8).
    pub l1_pm_read_misses: u64,
    /// Cache-line writebacks into the persistence domain.
    pub persist_flushes: u64,
    /// Volatile L1 writebacks (GPM barrier traffic + evictions).
    pub volatile_writebacks: u64,
    /// Epoch barrier rounds executed.
    pub epoch_rounds: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Bytes written toward NVM.
    pub nvm_write_bytes: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Writes accepted into memory-controller WPQs (durable commits).
    pub wpq_accepts: u64,
    /// Warps that blocked waiting on durability (dFence/epoch barrier).
    pub dfence_waits: u64,
    /// PCIe retransmissions recovering injected transient link faults.
    pub pcie_retries: u64,
    /// Cycles spent in PCIe retry backoff.
    pub pcie_backoff_cycles: u64,
    /// Aggregated persist-buffer statistics (SBRP runs).
    pub pb: PbStats,
    /// Warp-stall cycles attributed by cause (see
    /// [`sbrp_core::stall::StallCause`]).
    pub stall: StallBreakdown,
}

impl SimStats {
    /// L1 miss ratio over all accesses.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// Adds per-SM persist-buffer stats into the aggregate. Destructures
    /// exhaustively (no `..`): adding a `PbStats` field is a compile
    /// error here until it is merged, so new counters cannot silently
    /// vanish from aggregates.
    pub fn merge_pb(&mut self, other: PbStats) {
        let PbStats {
            stores,
            coalesced,
            entries,
            stall_ordered,
            stall_full,
            stall_evict,
            flushes,
            acks,
            ofences,
            dfences,
            pacqs,
            prels,
        } = other;
        let a = &mut self.pb;
        a.stores += stores;
        a.coalesced += coalesced;
        a.entries += entries;
        a.stall_ordered += stall_ordered;
        a.stall_full += stall_full;
        a.stall_evict += stall_evict;
        a.flushes += flushes;
        a.acks += acks;
        a.ofences += ofences;
        a.dfences += dfences;
        a.pacqs += pacqs;
        a.prels += prels;
    }

    /// Adds one SM's scalar counters into the aggregate, exhaustively.
    pub fn merge_sm(&mut self, c: SmCounters) {
        let SmCounters {
            instructions,
            reads,
            read_misses,
            pm_reads,
            pm_read_misses,
            persist_flushes,
            volatile_writebacks,
            dfence_waits,
        } = c;
        self.instructions += instructions;
        self.l1_reads += reads;
        self.l1_hits += reads - read_misses;
        self.l1_misses += read_misses;
        self.l1_pm_reads += pm_reads;
        self.l1_pm_read_misses += pm_read_misses;
        self.persist_flushes += persist_flushes;
        self.volatile_writebacks += volatile_writebacks;
        self.dfence_waits += dfence_waits;
    }

    /// Adds a stall breakdown into the aggregate (exhaustive merge in
    /// [`StallBreakdown::merge`]).
    pub fn merge_stall(&mut self, other: StallBreakdown) {
        self.stall.merge(other);
    }

    /// Deterministic JSON rendering (field declaration order, nested
    /// `pb` and `stall` objects) — the golden-snapshot format checked
    /// in CI. Destructures exhaustively so adding a stat field breaks
    /// the build here until the snapshot format carries it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let SimStats {
            cycles,
            instructions,
            l1_reads,
            l1_hits,
            l1_misses,
            l1_pm_reads,
            l1_pm_read_misses,
            persist_flushes,
            volatile_writebacks,
            epoch_rounds,
            pcie_bytes,
            nvm_write_bytes,
            nvm_read_bytes,
            wpq_accepts,
            dfence_waits,
            pcie_retries,
            pcie_backoff_cycles,
            pb,
            stall,
        } = *self;
        let PbStats {
            stores,
            coalesced,
            entries,
            stall_ordered,
            stall_full,
            stall_evict,
            flushes,
            acks,
            ofences,
            dfences,
            pacqs,
            prels,
        } = pb;
        let StallBreakdown {
            ofence,
            dfence,
            pacqrel,
            l1_miss,
            pb_full,
            pb_ordered,
            wpq_backpressure,
            pcie_backoff,
            scoreboard,
            total,
        } = stall;
        let mut out = String::from("{\n");
        let mut field = |name: &str, v: u64, indent: &str, last: bool| {
            let _ = writeln!(
                out,
                "{indent}\"{name}\": {v}{}",
                if last { "" } else { "," }
            );
        };
        field("cycles", cycles, "  ", false);
        field("instructions", instructions, "  ", false);
        field("l1_reads", l1_reads, "  ", false);
        field("l1_hits", l1_hits, "  ", false);
        field("l1_misses", l1_misses, "  ", false);
        field("l1_pm_reads", l1_pm_reads, "  ", false);
        field("l1_pm_read_misses", l1_pm_read_misses, "  ", false);
        field("persist_flushes", persist_flushes, "  ", false);
        field("volatile_writebacks", volatile_writebacks, "  ", false);
        field("epoch_rounds", epoch_rounds, "  ", false);
        field("pcie_bytes", pcie_bytes, "  ", false);
        field("nvm_write_bytes", nvm_write_bytes, "  ", false);
        field("nvm_read_bytes", nvm_read_bytes, "  ", false);
        field("wpq_accepts", wpq_accepts, "  ", false);
        field("dfence_waits", dfence_waits, "  ", false);
        field("pcie_retries", pcie_retries, "  ", false);
        field("pcie_backoff_cycles", pcie_backoff_cycles, "  ", false);
        out.push_str("  \"pb\": {\n");
        let mut field = |name: &str, v: u64, last: bool| {
            let _ = writeln!(out, "    \"{name}\": {v}{}", if last { "" } else { "," });
        };
        field("stores", stores, false);
        field("coalesced", coalesced, false);
        field("entries", entries, false);
        field("stall_ordered", stall_ordered, false);
        field("stall_full", stall_full, false);
        field("stall_evict", stall_evict, false);
        field("flushes", flushes, false);
        field("acks", acks, false);
        field("ofences", ofences, false);
        field("dfences", dfences, false);
        field("pacqs", pacqs, false);
        field("prels", prels, true);
        out.push_str("  },\n  \"stall\": {\n");
        let mut field = |name: &str, v: u64, last: bool| {
            let _ = writeln!(out, "    \"{name}\": {v}{}", if last { "" } else { "," });
        };
        field("ofence", ofence, false);
        field("dfence", dfence, false);
        field("pacqrel", pacqrel, false);
        field("l1_miss", l1_miss, false);
        field("pb_full", pb_full, false);
        field("pb_ordered", pb_ordered, false);
        field("wpq_backpressure", wpq_backpressure, false);
        field("pcie_backoff", pcie_backoff, false);
        field("scoreboard", scoreboard, false);
        field("total", total, true);
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the [`SimStats::to_json`] rendering back into stats — the
    /// read side of the sweep engine's on-disk result cache.
    ///
    /// Every quoted field name in the rendering is unique across the
    /// whole document (including the nested `pb`/`stall` objects), so
    /// extraction is by exact `"name"` token rather than by structural
    /// parsing. Construction is exhaustive: adding a stats field breaks
    /// this function until the cache format round-trips it, which is
    /// exactly the invalidation pressure the cache wants.
    ///
    /// ```
    /// use sbrp_gpu_sim::stats::SimStats;
    /// let stats = SimStats::default();
    /// assert_eq!(SimStats::from_json(&stats.to_json()).unwrap(), stats);
    /// ```
    ///
    /// # Errors
    /// Names the first field missing from (or malformed in) `json`.
    pub fn from_json(json: &str) -> Result<SimStats, String> {
        let field = |name: &str| -> Result<u64, String> {
            let token = format!("\"{name}\"");
            let at = json
                .find(&token)
                .ok_or_else(|| format!("missing stats field {name}"))?;
            let rest = json[at + token.len()..]
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| format!("field {name} is not a key"))?
                .trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits
                .parse()
                .map_err(|_| format!("field {name} is not a number"))
        };
        Ok(SimStats {
            cycles: field("cycles")?,
            instructions: field("instructions")?,
            l1_reads: field("l1_reads")?,
            l1_hits: field("l1_hits")?,
            l1_misses: field("l1_misses")?,
            l1_pm_reads: field("l1_pm_reads")?,
            l1_pm_read_misses: field("l1_pm_read_misses")?,
            persist_flushes: field("persist_flushes")?,
            volatile_writebacks: field("volatile_writebacks")?,
            epoch_rounds: field("epoch_rounds")?,
            pcie_bytes: field("pcie_bytes")?,
            nvm_write_bytes: field("nvm_write_bytes")?,
            nvm_read_bytes: field("nvm_read_bytes")?,
            wpq_accepts: field("wpq_accepts")?,
            dfence_waits: field("dfence_waits")?,
            pcie_retries: field("pcie_retries")?,
            pcie_backoff_cycles: field("pcie_backoff_cycles")?,
            pb: PbStats {
                stores: field("stores")?,
                coalesced: field("coalesced")?,
                entries: field("entries")?,
                stall_ordered: field("stall_ordered")?,
                stall_full: field("stall_full")?,
                stall_evict: field("stall_evict")?,
                flushes: field("flushes")?,
                acks: field("acks")?,
                ofences: field("ofences")?,
                dfences: field("dfences")?,
                pacqs: field("pacqs")?,
                prels: field("prels")?,
            },
            stall: StallBreakdown {
                ofence: field("ofence")?,
                dfence: field("dfence")?,
                pacqrel: field("pacqrel")?,
                l1_miss: field("l1_miss")?,
                pb_full: field("pb_full")?,
                pb_ordered: field("pb_ordered")?,
                wpq_backpressure: field("wpq_backpressure")?,
                pcie_backoff: field("pcie_backoff")?,
                scoreboard: field("scoreboard")?,
                total: field("total")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrp_core::stall::StallCause;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(SimStats::default().l1_miss_ratio(), 0.0);
        let s = SimStats {
            l1_hits: 3,
            l1_misses: 1,
            ..SimStats::default()
        };
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_pb_accumulates() {
        let mut s = SimStats::default();
        s.merge_pb(PbStats {
            stores: 5,
            flushes: 2,
            ..PbStats::default()
        });
        s.merge_pb(PbStats {
            stores: 3,
            acks: 1,
            ..PbStats::default()
        });
        assert_eq!(s.pb.stores, 8);
        assert_eq!(s.pb.flushes, 2);
        assert_eq!(s.pb.acks, 1);
    }

    #[test]
    fn merge_sm_accumulates_and_splits_hits() {
        let mut s = SimStats::default();
        s.merge_sm(SmCounters {
            instructions: 10,
            reads: 7,
            read_misses: 2,
            pm_reads: 3,
            pm_read_misses: 1,
            persist_flushes: 4,
            volatile_writebacks: 5,
            dfence_waits: 6,
        });
        assert_eq!(s.instructions, 10);
        assert_eq!(s.l1_reads, 7);
        assert_eq!(s.l1_hits, 5);
        assert_eq!(s.l1_misses, 2);
        assert_eq!(s.l1_hits + s.l1_misses, s.l1_reads);
        assert_eq!(s.dfence_waits, 6);
    }

    #[test]
    fn json_round_trips_every_field() {
        // Distinct values per field so a swapped pair cannot cancel out.
        let mut s = SimStats::default();
        for (i, f) in [
            &mut s.cycles,
            &mut s.instructions,
            &mut s.l1_reads,
            &mut s.l1_hits,
            &mut s.l1_misses,
            &mut s.l1_pm_reads,
            &mut s.l1_pm_read_misses,
            &mut s.persist_flushes,
            &mut s.volatile_writebacks,
            &mut s.epoch_rounds,
            &mut s.pcie_bytes,
            &mut s.nvm_write_bytes,
            &mut s.nvm_read_bytes,
            &mut s.wpq_accepts,
            &mut s.dfence_waits,
            &mut s.pcie_retries,
            &mut s.pcie_backoff_cycles,
            &mut s.pb.stores,
            &mut s.pb.coalesced,
            &mut s.pb.entries,
            &mut s.pb.stall_ordered,
            &mut s.pb.stall_full,
            &mut s.pb.stall_evict,
            &mut s.pb.flushes,
            &mut s.pb.acks,
            &mut s.pb.ofences,
            &mut s.pb.dfences,
            &mut s.pb.pacqs,
            &mut s.pb.prels,
            &mut s.stall.ofence,
            &mut s.stall.dfence,
            &mut s.stall.pacqrel,
            &mut s.stall.l1_miss,
            &mut s.stall.pb_full,
            &mut s.stall.pb_ordered,
            &mut s.stall.wpq_backpressure,
            &mut s.stall.pcie_backoff,
            &mut s.stall.scoreboard,
            &mut s.stall.total,
        ]
        .into_iter()
        .enumerate()
        {
            *f = i as u64 + 1;
        }
        let back = SimStats::from_json(&s.to_json()).expect("parses");
        assert_eq!(back, s);
        assert!(SimStats::from_json("{}").is_err());
    }

    #[test]
    fn json_is_deterministic_and_carries_breakdown() {
        let mut s = SimStats {
            cycles: 100,
            ..SimStats::default()
        };
        s.stall.charge(StallCause::DFence, 42);
        let j = s.to_json();
        assert_eq!(j, s.to_json(), "rendering is deterministic");
        assert!(j.contains("\"cycles\": 100"));
        assert!(j.contains("\"dfence\": 42"));
        assert!(j.contains("\"total\": 42"));
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
    }
}
