//! Aggregate simulation statistics.

use crate::sm::SmCounters;
use sbrp_core::pbuffer::PbStats;
use sbrp_core::stall::StallBreakdown;
use std::fmt::Write as _;

/// Counters collected over a run; the evaluation figures are computed
/// from these.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated (runtime — Figs. 6/7/9/10/11).
    pub cycles: u64,
    /// Dynamic warp instructions retired (each instruction once —
    /// engine-stall retries and multi-group continuations don't count).
    pub instructions: u64,
    /// L1 read accesses, all spaces (`l1_hits + l1_misses`).
    pub l1_reads: u64,
    /// L1 hits, all accesses.
    pub l1_hits: u64,
    /// L1 misses, all accesses.
    pub l1_misses: u64,
    /// L1 *read* accesses to NVM data.
    pub l1_pm_reads: u64,
    /// L1 *read misses* for NVM data (Fig. 8).
    pub l1_pm_read_misses: u64,
    /// Cache-line writebacks into the persistence domain.
    pub persist_flushes: u64,
    /// Volatile L1 writebacks (GPM barrier traffic + evictions).
    pub volatile_writebacks: u64,
    /// Epoch barrier rounds executed.
    pub epoch_rounds: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Bytes written toward NVM.
    pub nvm_write_bytes: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Writes accepted into memory-controller WPQs (durable commits).
    pub wpq_accepts: u64,
    /// Warps that blocked waiting on durability (dFence/epoch barrier).
    pub dfence_waits: u64,
    /// PCIe retransmissions recovering injected transient link faults.
    pub pcie_retries: u64,
    /// Cycles spent in PCIe retry backoff.
    pub pcie_backoff_cycles: u64,
    /// Aggregated persist-buffer statistics (SBRP runs).
    pub pb: PbStats,
    /// Warp-stall cycles attributed by cause (see
    /// [`sbrp_core::stall::StallCause`]).
    pub stall: StallBreakdown,
}

impl SimStats {
    /// L1 miss ratio over all accesses.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// Adds per-SM persist-buffer stats into the aggregate. Destructures
    /// exhaustively (no `..`): adding a `PbStats` field is a compile
    /// error here until it is merged, so new counters cannot silently
    /// vanish from aggregates.
    pub fn merge_pb(&mut self, other: PbStats) {
        let PbStats {
            stores,
            coalesced,
            entries,
            stall_ordered,
            stall_full,
            stall_evict,
            flushes,
            acks,
            ofences,
            dfences,
            pacqs,
            prels,
        } = other;
        let a = &mut self.pb;
        a.stores += stores;
        a.coalesced += coalesced;
        a.entries += entries;
        a.stall_ordered += stall_ordered;
        a.stall_full += stall_full;
        a.stall_evict += stall_evict;
        a.flushes += flushes;
        a.acks += acks;
        a.ofences += ofences;
        a.dfences += dfences;
        a.pacqs += pacqs;
        a.prels += prels;
    }

    /// Adds one SM's scalar counters into the aggregate, exhaustively.
    pub fn merge_sm(&mut self, c: SmCounters) {
        let SmCounters {
            instructions,
            reads,
            read_misses,
            pm_reads,
            pm_read_misses,
            persist_flushes,
            volatile_writebacks,
            dfence_waits,
        } = c;
        self.instructions += instructions;
        self.l1_reads += reads;
        self.l1_hits += reads - read_misses;
        self.l1_misses += read_misses;
        self.l1_pm_reads += pm_reads;
        self.l1_pm_read_misses += pm_read_misses;
        self.persist_flushes += persist_flushes;
        self.volatile_writebacks += volatile_writebacks;
        self.dfence_waits += dfence_waits;
    }

    /// Adds a stall breakdown into the aggregate (exhaustive merge in
    /// [`StallBreakdown::merge`]).
    pub fn merge_stall(&mut self, other: StallBreakdown) {
        self.stall.merge(other);
    }

    /// Deterministic JSON rendering (field declaration order, nested
    /// `pb` and `stall` objects) — the golden-snapshot format checked
    /// in CI. Destructures exhaustively so adding a stat field breaks
    /// the build here until the snapshot format carries it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let SimStats {
            cycles,
            instructions,
            l1_reads,
            l1_hits,
            l1_misses,
            l1_pm_reads,
            l1_pm_read_misses,
            persist_flushes,
            volatile_writebacks,
            epoch_rounds,
            pcie_bytes,
            nvm_write_bytes,
            nvm_read_bytes,
            wpq_accepts,
            dfence_waits,
            pcie_retries,
            pcie_backoff_cycles,
            pb,
            stall,
        } = *self;
        let PbStats {
            stores,
            coalesced,
            entries,
            stall_ordered,
            stall_full,
            stall_evict,
            flushes,
            acks,
            ofences,
            dfences,
            pacqs,
            prels,
        } = pb;
        let StallBreakdown {
            ofence,
            dfence,
            pacqrel,
            l1_miss,
            pb_full,
            pb_ordered,
            wpq_backpressure,
            pcie_backoff,
            scoreboard,
            total,
        } = stall;
        let mut out = String::from("{\n");
        let mut field = |name: &str, v: u64, indent: &str, last: bool| {
            let _ = writeln!(
                out,
                "{indent}\"{name}\": {v}{}",
                if last { "" } else { "," }
            );
        };
        field("cycles", cycles, "  ", false);
        field("instructions", instructions, "  ", false);
        field("l1_reads", l1_reads, "  ", false);
        field("l1_hits", l1_hits, "  ", false);
        field("l1_misses", l1_misses, "  ", false);
        field("l1_pm_reads", l1_pm_reads, "  ", false);
        field("l1_pm_read_misses", l1_pm_read_misses, "  ", false);
        field("persist_flushes", persist_flushes, "  ", false);
        field("volatile_writebacks", volatile_writebacks, "  ", false);
        field("epoch_rounds", epoch_rounds, "  ", false);
        field("pcie_bytes", pcie_bytes, "  ", false);
        field("nvm_write_bytes", nvm_write_bytes, "  ", false);
        field("nvm_read_bytes", nvm_read_bytes, "  ", false);
        field("wpq_accepts", wpq_accepts, "  ", false);
        field("dfence_waits", dfence_waits, "  ", false);
        field("pcie_retries", pcie_retries, "  ", false);
        field("pcie_backoff_cycles", pcie_backoff_cycles, "  ", false);
        out.push_str("  \"pb\": {\n");
        let mut field = |name: &str, v: u64, last: bool| {
            let _ = writeln!(out, "    \"{name}\": {v}{}", if last { "" } else { "," });
        };
        field("stores", stores, false);
        field("coalesced", coalesced, false);
        field("entries", entries, false);
        field("stall_ordered", stall_ordered, false);
        field("stall_full", stall_full, false);
        field("stall_evict", stall_evict, false);
        field("flushes", flushes, false);
        field("acks", acks, false);
        field("ofences", ofences, false);
        field("dfences", dfences, false);
        field("pacqs", pacqs, false);
        field("prels", prels, true);
        out.push_str("  },\n  \"stall\": {\n");
        let mut field = |name: &str, v: u64, last: bool| {
            let _ = writeln!(out, "    \"{name}\": {v}{}", if last { "" } else { "," });
        };
        field("ofence", ofence, false);
        field("dfence", dfence, false);
        field("pacqrel", pacqrel, false);
        field("l1_miss", l1_miss, false);
        field("pb_full", pb_full, false);
        field("pb_ordered", pb_ordered, false);
        field("wpq_backpressure", wpq_backpressure, false);
        field("pcie_backoff", pcie_backoff, false);
        field("scoreboard", scoreboard, false);
        field("total", total, true);
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbrp_core::stall::StallCause;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(SimStats::default().l1_miss_ratio(), 0.0);
        let s = SimStats {
            l1_hits: 3,
            l1_misses: 1,
            ..SimStats::default()
        };
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_pb_accumulates() {
        let mut s = SimStats::default();
        s.merge_pb(PbStats {
            stores: 5,
            flushes: 2,
            ..PbStats::default()
        });
        s.merge_pb(PbStats {
            stores: 3,
            acks: 1,
            ..PbStats::default()
        });
        assert_eq!(s.pb.stores, 8);
        assert_eq!(s.pb.flushes, 2);
        assert_eq!(s.pb.acks, 1);
    }

    #[test]
    fn merge_sm_accumulates_and_splits_hits() {
        let mut s = SimStats::default();
        s.merge_sm(SmCounters {
            instructions: 10,
            reads: 7,
            read_misses: 2,
            pm_reads: 3,
            pm_read_misses: 1,
            persist_flushes: 4,
            volatile_writebacks: 5,
            dfence_waits: 6,
        });
        assert_eq!(s.instructions, 10);
        assert_eq!(s.l1_reads, 7);
        assert_eq!(s.l1_hits, 5);
        assert_eq!(s.l1_misses, 2);
        assert_eq!(s.l1_hits + s.l1_misses, s.l1_reads);
        assert_eq!(s.dfence_waits, 6);
    }

    #[test]
    fn json_is_deterministic_and_carries_breakdown() {
        let mut s = SimStats {
            cycles: 100,
            ..SimStats::default()
        };
        s.stall.charge(StallCause::DFence, 42);
        let j = s.to_json();
        assert_eq!(j, s.to_json(), "rendering is deterministic");
        assert!(j.contains("\"cycles\": 100"));
        assert!(j.contains("\"dfence\": 42"));
        assert!(j.contains("\"total\": 42"));
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
    }
}
