//! Aggregate simulation statistics.

use sbrp_core::pbuffer::PbStats;

/// Counters collected over a run; the evaluation figures are computed
/// from these.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated (runtime — Figs. 6/7/9/10/11).
    pub cycles: u64,
    /// Dynamic warp instructions retired.
    pub instructions: u64,
    /// L1 hits, all accesses.
    pub l1_hits: u64,
    /// L1 misses, all accesses.
    pub l1_misses: u64,
    /// L1 *read* accesses to NVM data.
    pub l1_pm_reads: u64,
    /// L1 *read misses* for NVM data (Fig. 8).
    pub l1_pm_read_misses: u64,
    /// Cache-line writebacks into the persistence domain.
    pub persist_flushes: u64,
    /// Volatile L1 writebacks (GPM barrier traffic + evictions).
    pub volatile_writebacks: u64,
    /// Epoch barrier rounds executed.
    pub epoch_rounds: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Bytes written toward NVM.
    pub nvm_write_bytes: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Writes accepted into memory-controller WPQs (durable commits).
    pub wpq_accepts: u64,
    /// Warps that blocked waiting on durability (dFence/epoch barrier).
    pub dfence_waits: u64,
    /// PCIe retransmissions recovering injected transient link faults.
    pub pcie_retries: u64,
    /// Cycles spent in PCIe retry backoff.
    pub pcie_backoff_cycles: u64,
    /// Aggregated persist-buffer statistics (SBRP runs).
    pub pb: PbStats,
}

impl SimStats {
    /// L1 miss ratio over all accesses.
    #[must_use]
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// Adds per-SM persist-buffer stats into the aggregate.
    pub fn merge_pb(&mut self, other: PbStats) {
        let a = &mut self.pb;
        a.stores += other.stores;
        a.coalesced += other.coalesced;
        a.entries += other.entries;
        a.stall_ordered += other.stall_ordered;
        a.stall_full += other.stall_full;
        a.stall_evict += other.stall_evict;
        a.flushes += other.flushes;
        a.acks += other.acks;
        a.ofences += other.ofences;
        a.dfences += other.dfences;
        a.pacqs += other.pacqs;
        a.prels += other.prels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(SimStats::default().l1_miss_ratio(), 0.0);
        let s = SimStats {
            l1_hits: 3,
            l1_misses: 1,
            ..SimStats::default()
        };
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_pb_accumulates() {
        let mut s = SimStats::default();
        s.merge_pb(PbStats {
            stores: 5,
            flushes: 2,
            ..PbStats::default()
        });
        s.merge_pb(PbStats {
            stores: 3,
            acks: 1,
            ..PbStats::default()
        });
        assert_eq!(s.pb.stores, 8);
        assert_eq!(s.pb.flushes, 2);
        assert_eq!(s.pb.acks, 1);
    }
}
