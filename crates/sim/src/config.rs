//! Simulator configuration — Table 1 of the paper plus the sweep knobs
//! of Figure 10.

use sbrp_core::pbuffer::{DrainPolicy, PbConfig};
use sbrp_core::ModelKind;

/// Base of the persistent (NVM) address range. Everything below is
/// volatile GDDR; everything at or above is PM, mirroring Intel's
/// app-direct mode where both memories share the physical address space
/// (§3, "Software model").
pub const PM_BASE: u64 = 1 << 40;

/// Whether a byte address refers to persistent memory.
#[must_use]
pub fn is_pm(addr: u64) -> bool {
    addr >= PM_BASE
}

/// Where the NVM sits relative to the GPU (§3, Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemDesign {
    /// NVM attached to the CPU, accessed by the GPU across PCIe (GPM's
    /// system).
    PmFar,
    /// NVM on board the GPU, next to GDDR.
    PmNear,
}

impl std::fmt::Display for SystemDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemDesign::PmFar => f.write_str("far"),
            SystemDesign::PmNear => f.write_str("near"),
        }
    }
}

/// Full simulator configuration. [`GpuConfig::table1`] reproduces the
/// paper's simulated hardware; the public fields are the sweep knobs.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Persistency model to simulate.
    pub model: ModelKind,
    /// PM-far or PM-near system design.
    pub system: SystemDesign,
    /// Enhanced ADR: persists are durable at the host LLC (PM-far only,
    /// Fig. 9).
    pub eadr: bool,

    /// Number of SMs (30).
    pub num_sms: u32,
    /// Core clock in MHz (1365).
    pub clock_mhz: u32,
    /// Warps an SM schedules per cycle.
    pub issue_width: u32,
    /// Max resident warps per SM (32 ⇒ 1024 threads).
    pub max_warps_per_sm: u32,

    /// L1 size per SM in KiB (64).
    pub l1_kb: u32,
    /// L2 size in KiB (3072).
    pub l2_kb: u32,
    /// Cache line size in bytes (128).
    pub line_bytes: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u32,
    /// Interconnect + L2 access latency in cycles.
    pub l2_latency: u32,

    /// GDDR bandwidth in GB/s (336).
    pub gddr_bw_gbps: f64,
    /// GDDR access latency in ns (100).
    pub gddr_latency_ns: f64,
    /// NVM read bandwidth in GB/s (84).
    pub nvm_read_bw_gbps: f64,
    /// NVM write bandwidth in GB/s (42).
    pub nvm_write_bw_gbps: f64,
    /// NVM access latency in ns (300).
    pub nvm_latency_ns: f64,
    /// PCIe bandwidth in GB/s (28, PCIe 4.0).
    pub pcie_bw_gbps: f64,
    /// PCIe latency in ns (300).
    pub pcie_latency_ns: f64,
    /// Multiplier on both NVM bandwidths (Fig. 10b: 0.5 / 1.0 / 2.0).
    pub nvm_bw_scale: f64,

    /// SBRP persist-buffer configuration; `capacity` as a fraction of L1
    /// lines is the Fig. 10a knob, `policy` the Fig. 10c knob.
    pub pb: PbConfig,
    /// Record persist events for the formal checker (tests only; slows
    /// simulation and grows memory with trace length).
    pub trace: bool,
    /// Record warp-state intervals and memory-subsystem events into a
    /// [`crate::timeline::Timeline`] (Chrome-trace export; grows memory
    /// with run length).
    pub timeline: bool,
    /// Online persistency sanitizer: record persist/fence/acquire-release
    /// events (sampled per warp by [`GpuConfig::sanitize_sample`]) and
    /// verify the trace against the formal PMO model when a run
    /// completes or crashes. A violation — durability inverting PMO, a
    /// crash image that is not PMO-downward-closed, or a §5.3 scoped
    /// persistency bug — surfaces as
    /// [`crate::gpu::SimError::PmoViolation`].
    pub sanitize: bool,
    /// Per-warp sampling modulus for the sanitizer's trace: record every
    /// `n`-th warp (`0`/`1` = all warps). Sampling bounds trace memory on
    /// long runs and can only hide violations, never invent them.
    /// Ignored when [`GpuConfig::trace`] is set (full traces are
    /// required for external checking).
    pub sanitize_sample: u32,
}

impl GpuConfig {
    /// The configuration of the paper's Table 1 for a given model and
    /// system design.
    #[must_use]
    pub fn table1(model: ModelKind, system: SystemDesign) -> Self {
        let line_bytes = 128;
        let l1_kb = 64;
        let l1_lines = l1_kb * 1024 / line_bytes;
        GpuConfig {
            model,
            system,
            eadr: false,
            num_sms: 30,
            clock_mhz: 1365,
            issue_width: 4,
            max_warps_per_sm: 32,
            l1_kb,
            l2_kb: 3 * 1024,
            line_bytes,
            l1_hit_latency: 4,
            l2_latency: 40,
            gddr_bw_gbps: 336.0,
            gddr_latency_ns: 100.0,
            nvm_read_bw_gbps: 84.0,
            nvm_write_bw_gbps: 42.0,
            nvm_latency_ns: 300.0,
            pcie_bw_gbps: 28.0,
            pcie_latency_ns: 300.0,
            nvm_bw_scale: 1.0,
            pb: PbConfig {
                capacity: (l1_lines / 2) as usize,
                policy: DrainPolicy::default(),
                ..PbConfig::default()
            },
            trace: false,
            timeline: false,
            sanitize: false,
            sanitize_sample: 1,
        }
    }

    /// A scaled-down configuration for fast tests: fewer SMs, smaller
    /// caches, same relative timing. Device bandwidths scale with the SM
    /// count so the per-SM balance — in particular the drain window vs.
    /// the bandwidth-delay product of the persist path — matches the
    /// Table 1 machine.
    #[must_use]
    pub fn small(model: ModelKind, system: SystemDesign) -> Self {
        let mut c = Self::table1(model, system);
        let ratio = 4.0 / f64::from(c.num_sms);
        c.num_sms = 4;
        c.l1_kb = 16;
        c.l2_kb = 256;
        c.pb.capacity = (c.l1_kb * 1024 / c.line_bytes / 2) as usize;
        c.gddr_bw_gbps *= ratio;
        c.nvm_read_bw_gbps *= ratio;
        c.nvm_write_bw_gbps *= ratio;
        c.pcie_bw_gbps *= ratio;
        c
    }

    /// L1 lines per SM.
    #[must_use]
    pub fn l1_lines(&self) -> u32 {
        self.l1_kb * 1024 / self.line_bytes
    }

    /// Converts nanoseconds to core cycles (rounding up).
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * f64::from(self.clock_mhz) / 1000.0).ceil() as u64
    }

    /// Converts GB/s to bytes per core cycle.
    #[must_use]
    pub fn gbps_to_bytes_per_cycle(&self, gbps: f64) -> f64 {
        gbps * 1e9 / (f64::from(self.clock_mhz) * 1e6)
    }

    /// Sets the PB capacity as a fraction of L1 lines (Fig. 10a).
    pub fn set_pb_coverage(&mut self, fraction: f64) {
        let lines = f64::from(self.l1_lines());
        self.pb.capacity = ((lines * fraction).round() as usize).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_range_partition() {
        assert!(!is_pm(0));
        assert!(!is_pm(PM_BASE - 1));
        assert!(is_pm(PM_BASE));
        assert!(is_pm(PM_BASE + 12345));
    }

    #[test]
    fn table1_matches_the_paper() {
        let c = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.clock_mhz, 1365);
        assert_eq!(c.l1_kb, 64);
        assert_eq!(c.l2_kb, 3072);
        assert_eq!(c.max_warps_per_sm, 32);
        assert_eq!(c.pb.capacity, 256, "PB covers half of 512 L1 lines");
        assert_eq!(c.pb.policy, DrainPolicy::Window(6));
        assert!((c.nvm_write_bw_gbps - 42.0).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions() {
        let c = GpuConfig::table1(ModelKind::Epoch, SystemDesign::PmFar);
        // 300 ns at 1365 MHz ≈ 410 cycles.
        assert_eq!(c.ns_to_cycles(300.0), 410);
        // 336 GB/s at 1365 MHz ≈ 246 B/cycle.
        let bpc = c.gbps_to_bytes_per_cycle(336.0);
        assert!((bpc - 246.15).abs() < 0.1, "got {bpc}");
    }

    #[test]
    fn pb_coverage_knob() {
        let mut c = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
        c.set_pb_coverage(0.125);
        assert_eq!(c.pb.capacity, 64);
        c.set_pb_coverage(1.0);
        assert_eq!(c.pb.capacity, 512);
    }
}
