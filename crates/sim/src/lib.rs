//! # sbrp-gpu-sim
//!
//! A from-scratch, cycle-level GPU timing simulator purpose-built to
//! evaluate GPU persistency models — the reproduction's stand-in for the
//! paper's GPGPU-Sim 4.0 setup.
//!
//! ## What is modelled
//!
//! * **SMs** running warps of the [`sbrp_isa`] ISA in lockstep, with a
//!   loose round-robin scheduler issuing several warps per cycle, SIMT
//!   divergence, block-wide barriers, and block dispatch across SMs.
//! * **Per-SM L1 caches** (non-coherent, as on real GPUs) and a shared
//!   L2, both set-associative with LRU. Caches are *tag-only*: timing and
//!   residency are modelled precisely, while values live in a functional
//!   backing store. Flushes snapshot the line's bytes at flush time and a
//!   separate **durable NVM image** is updated only when the persistence
//!   domain acknowledges the write — so crash states are exact even
//!   though data does not travel through the cache model.
//! * **Memory devices** behind latency+bandwidth channels: GDDR, NVM
//!   (split read/write bandwidth), and the PCIe link of the PM-far
//!   design (§3). ADR means a persist is durable when the memory
//!   controller accepts it; eADR (Fig. 9) moves the durability point to
//!   the host LLC.
//! * **Persistency engines** per model: the SBRP persist buffer
//!   ([`sbrp_core::pbuffer`]) or the unbuffered epoch engine
//!   ([`sbrp_core::epoch`]) for the GPM/Epoch baselines.
//! * **Crash injection**: stop at any cycle, extract the durable image,
//!   and boot a fresh GPU on it to run recovery kernels.
//! * **Persist tracing** for the formal PMO checker of `sbrp-core`.
//!
//! ## Example
//!
//! ```
//! use sbrp_gpu_sim::config::{GpuConfig, SystemDesign, PM_BASE};
//! use sbrp_gpu_sim::Gpu;
//! use sbrp_core::ModelKind;
//! use sbrp_isa::{KernelBuilder, LaunchConfig, MemWidth, Special};
//!
//! // Persist tid into pArr[tid], with an oFence ordering a log write first.
//! let mut b = KernelBuilder::new();
//! let arr = b.param(0);
//! let tid = b.special(Special::GlobalTid);
//! let off = b.muli(tid, 8);
//! let addr = b.add(arr, off);
//! b.st(addr, 0, tid, MemWidth::W8);
//! b.ofence();
//! b.st(addr, 4096, tid, MemWidth::W8);
//! let mut kernel = b.build("quick");
//! kernel = kernel.with_params(vec![PM_BASE]);
//!
//! let cfg = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
//! let mut gpu = Gpu::new(&cfg);
//! gpu.launch(&kernel, LaunchConfig::new(2, 64));
//! let report = gpu.run(1_000_000).expect("kernel finishes");
//! assert!(report.cycles > 0);
//! assert_eq!(gpu.read_nvm_u64(PM_BASE + 8 * 8), 8);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod crash;
pub mod fault;
mod gpu;
pub mod mem;
pub mod pmem;
mod sm;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use gpu::{Gpu, RunOutcome, RunReport, SimError};
pub use sm::SmCounters;
pub use timeline::Timeline;
