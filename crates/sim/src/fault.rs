//! Fault injection: event-triggered crash points, torn NVM writes,
//! ADR-violation faults, and transient PCIe link faults.
//!
//! The paper's failure model (§2) is a clean power cut: everything
//! volatile is lost atomically, while the WPQ's accepted writes and NVM
//! contents survive. Cycle-numbered crashes (`Gpu::run_until`) sample
//! that model, but interesting crash states cluster around *machine
//! events* — a write being accepted into the WPQ, a persist buffer
//! draining a line, a warp blocking on a `dFence`. A [`FaultPlan`]
//! names such an event directly ("crash at the 17th WPQ accept"), which
//! makes sweeps dense where the durable image actually changes and lets
//! a failing crash point be shrunk to the minimal event index.
//!
//! Beyond clean crashes, the plan can inject *machine bugs* that the
//! failure model forbids, as negative controls for the checkers:
//!
//! * [`NvmFault::DropWpqEntry`] models an ADR violation — the WPQ
//!   acknowledges a write (the persist buffer and fences all observe a
//!   durability ack) but the bytes never reach the durable image.
//! * [`NvmFault::TornWrite`] persists only a prefix of a line's 8-byte
//!   chunks, modelling a torn media write at the crash.
//!
//! Both deliver the acknowledgement — the machine proceeds believing
//! the persist is durable — so a later, genuinely durable persist that
//! was ordered *after* the faulted one makes the crash image violate
//! the model's downward-closure. The formal trace checker and the
//! workload verifiers are expected to detect this; tests that inject
//! these faults and observe no violation are failing tests.
//!
//! Finally, [`PcieFaultConfig`] models *transient* PM-far link faults:
//! every n-th PCIe transfer is corrupted a configurable number of
//! consecutive times and retried with exponential backoff, re-charging
//! link bandwidth per attempt. Exceeding the retry budget declares the
//! link dead, which the machine treats as a power-cut-equivalent crash.

use std::collections::HashSet;

/// A machine event at which the simulated power fails.
///
/// Event counters are global across the GPU and count from 1: a trigger
/// with `k = 1` crashes at the very first matching event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Crash at a fixed cycle (equivalent to `Gpu::run_until`).
    AtCycle(u64),
    /// Crash immediately after the `k`-th write is accepted into a
    /// memory controller's WPQ (the accepted write itself is durable —
    /// ADR — but nothing after it is).
    WpqAccept(u64),
    /// Crash when the `k`-th persist-buffer drain (line flush into the
    /// persistence domain) is issued; the in-flight flush is lost.
    PbDrain(u64),
    /// Crash when the `k`-th warp blocks waiting on durability (a
    /// `dFence` with drains pending, or an epoch barrier).
    DFenceWait(u64),
}

/// A seeded NVM-side fault, applied to one WPQ accept (counted from 1,
/// same counter as [`CrashTrigger::WpqAccept`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NvmFault {
    /// No NVM fault.
    #[default]
    None,
    /// ADR violation: the `k`-th accepted write is acknowledged but its
    /// bytes are silently dropped from the durable image.
    DropWpqEntry(u64),
    /// Torn write: the `entry`-th accepted write persists only its
    /// first `chunks` 8-byte chunks; the rest are lost. Acknowledged as
    /// if fully durable.
    TornWrite {
        /// Which WPQ accept to tear (1-based).
        entry: u64,
        /// How many leading 8-byte chunks actually persist.
        chunks: u32,
    },
}

/// Transient PCIe link-fault model for the PM-far design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcieFaultConfig {
    /// Every `period`-th transfer over the link is faulted (0 disables).
    pub period: u64,
    /// How many consecutive attempts of a faulted transfer fail before
    /// the link recovers.
    pub burst: u32,
    /// Retry budget per transfer; a transfer still failing after this
    /// many retries declares the link dead (power-cut-equivalent).
    pub max_retries: u32,
    /// Base backoff in cycles; retry `i` waits `backoff_base << i`.
    pub backoff_base: u64,
}

impl Default for PcieFaultConfig {
    fn default() -> Self {
        PcieFaultConfig {
            period: 0,
            burst: 1,
            max_retries: 8,
            backoff_base: 32,
        }
    }
}

/// A complete fault-injection plan for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// When (if ever) the power fails.
    pub trigger: Option<CrashTrigger>,
    /// A seeded NVM-side fault (ADR violation or torn write).
    pub nvm: NvmFault,
    /// Transient PCIe link faults (PM-far only; ignored by PM-near).
    pub pcie: Option<PcieFaultConfig>,
}

impl FaultPlan {
    /// A plan that only crashes at `trigger` (no injected machine bugs).
    #[must_use]
    pub fn crash_at(trigger: CrashTrigger) -> Self {
        FaultPlan {
            trigger: Some(trigger),
            ..FaultPlan::default()
        }
    }

    /// Adds an NVM fault to the plan.
    #[must_use]
    pub fn with_nvm(mut self, nvm: NvmFault) -> Self {
        self.nvm = nvm;
        self
    }

    /// Adds transient PCIe link faults to the plan.
    #[must_use]
    pub fn with_pcie(mut self, pcie: PcieFaultConfig) -> Self {
        self.pcie = Some(pcie);
        self
    }
}

/// Totals of the countable crash-trigger events observed in a run.
///
/// A campaign first runs each configuration crash-free to learn these
/// totals, then sweeps `k` over `1..=total` for each trigger family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEventCounts {
    /// Writes accepted into WPQs (durable commits).
    pub wpq_accepts: u64,
    /// Persist-buffer drains (line flushes into the persistence domain).
    pub pb_drains: u64,
    /// Warps that blocked waiting on durability (dFence/epoch barrier).
    pub dfence_waits: u64,
}

/// What the memory subsystem should do with an accepted WPQ write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DurableAction {
    /// Commit all segments to the durable image (the normal case).
    Commit,
    /// ADR violation: acknowledge but commit nothing.
    Drop,
    /// Torn write: commit only the first `n` 8-byte chunks.
    Torn(u32),
}

/// Live fault-injection state, owned by the memory subsystem.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// WPQ accepts observed so far (1-based after increment).
    pub wpq_accepts: u64,
    /// Persist-buffer drains observed so far.
    pub pb_drains: u64,
    /// PCIe transfers observed so far (for the fault period).
    pub pcie_transfers: u64,
    /// PCIe retransmissions performed.
    pub pcie_retries: u64,
    /// Cycles spent in retry backoff.
    pub pcie_backoff_cycles: u64,
    /// Power has failed: no further events are delivered or committed.
    pub crashed: bool,
    /// The PCIe link exhausted its retry budget.
    pub link_dead: bool,
    /// Ack ids whose durable commit was dropped or torn; the trace must
    /// not mark their persists durable.
    suppressed: HashSet<u64>,
}

impl FaultState {
    pub(crate) fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Notes a persist-buffer drain; may arm the crash.
    pub(crate) fn on_pb_drain(&mut self) {
        self.pb_drains += 1;
        if let Some(CrashTrigger::PbDrain(k)) = self.plan.trigger {
            if self.pb_drains >= k {
                self.crashed = true;
            }
        }
    }

    /// Notes a WPQ accept; decides the commit action for it and may arm
    /// the crash (the accepted write itself still commits — ADR).
    pub(crate) fn on_wpq_accept(&mut self, ack_id: Option<u64>) -> DurableAction {
        self.wpq_accepts += 1;
        let n = self.wpq_accepts;
        let action = match self.plan.nvm {
            NvmFault::DropWpqEntry(k) if n == k => DurableAction::Drop,
            NvmFault::TornWrite { entry, chunks } if n == entry => DurableAction::Torn(chunks),
            _ => DurableAction::Commit,
        };
        if action != DurableAction::Commit {
            if let Some(id) = ack_id {
                self.suppressed.insert(id);
            }
        }
        if let Some(CrashTrigger::WpqAccept(k)) = self.plan.trigger {
            if n >= k {
                self.crashed = true;
            }
        }
        action
    }

    /// Whether fault injection suppressed the durable commit behind this
    /// acknowledgement (the ack lies; the trace must not trust it).
    pub(crate) fn ack_suppressed(&self, ack_id: u64) -> bool {
        self.suppressed.contains(&ack_id)
    }

    /// Whether the next PCIe transfer is faulted; if so, returns the
    /// link-fault configuration to drive the retry loop.
    pub(crate) fn pcie_glitch(&mut self) -> Option<PcieFaultConfig> {
        let f = self.plan.pcie?;
        if f.period == 0 {
            return None;
        }
        self.pcie_transfers += 1;
        self.pcie_transfers.is_multiple_of(f.period).then_some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpq_trigger_fires_at_k_and_commits_kth() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::crash_at(CrashTrigger::WpqAccept(2)));
        assert_eq!(st.on_wpq_accept(Some(0)), DurableAction::Commit);
        assert!(!st.crashed);
        assert_eq!(st.on_wpq_accept(Some(1)), DurableAction::Commit);
        assert!(st.crashed, "k-th accept commits, then power dies");
    }

    #[test]
    fn drop_fault_suppresses_exactly_one_ack() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::default().with_nvm(NvmFault::DropWpqEntry(2)));
        assert_eq!(st.on_wpq_accept(Some(10)), DurableAction::Commit);
        assert_eq!(st.on_wpq_accept(Some(11)), DurableAction::Drop);
        assert_eq!(st.on_wpq_accept(Some(12)), DurableAction::Commit);
        assert!(!st.ack_suppressed(10));
        assert!(st.ack_suppressed(11));
        assert!(!st.ack_suppressed(12));
    }

    #[test]
    fn torn_fault_reports_chunk_budget() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::default().with_nvm(NvmFault::TornWrite {
            entry: 1,
            chunks: 3,
        }));
        assert_eq!(st.on_wpq_accept(Some(0)), DurableAction::Torn(3));
        assert!(st.ack_suppressed(0));
    }

    #[test]
    fn pb_drain_trigger_counts() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::crash_at(CrashTrigger::PbDrain(3)));
        st.on_pb_drain();
        st.on_pb_drain();
        assert!(!st.crashed);
        st.on_pb_drain();
        assert!(st.crashed);
    }

    #[test]
    fn pcie_glitch_period() {
        let mut st = FaultState::default();
        st.set_plan(FaultPlan::default().with_pcie(PcieFaultConfig {
            period: 3,
            ..PcieFaultConfig::default()
        }));
        assert!(st.pcie_glitch().is_none());
        assert!(st.pcie_glitch().is_none());
        assert!(st.pcie_glitch().is_some());
        assert!(st.pcie_glitch().is_none());
    }
}
