//! Optional timeline tracer: warp-state intervals (running vs. stalled,
//! by [`StallCause`]) and memory-subsystem events (persist-flush
//! lifetimes, PCIe retry backoff), exported as Chrome-trace JSON that
//! loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! Enabled by [`crate::config::GpuConfig::timeline`]; drained with
//! [`crate::Gpu::take_timeline`]. Each SM is a Perfetto "process" whose
//! "threads" are warp slots; the memory subsystem is one extra process
//! whose lanes carry flush lifetime slices. Timestamps are GPU core
//! cycles (rendered as microseconds, 1 cycle = 1 µs).

use sbrp_core::stall::StallCause;
use std::fmt::Write as _;

/// The Perfetto "process" id used for memory-subsystem tracks.
pub const MEM_PID: u32 = 9999;
/// Flush lifetime slices are spread round-robin over this many lanes so
/// concurrent flushes don't overlap on one track.
pub const MEM_LANES: u64 = 24;

/// What a warp slot is doing over an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarpState {
    /// The warp can issue (or is issuing).
    Running,
    /// The warp cannot issue, charged to the given cause.
    Stalled(StallCause),
}

impl WarpState {
    /// Slice name shown in the trace viewer.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WarpState::Running => "run",
            WarpState::Stalled(c) => c.label(),
        }
    }
}

/// One closed interval on a (pid, tid) track.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slice {
    /// Perfetto process id (SM id, or [`MEM_PID`]).
    pub pid: u32,
    /// Perfetto thread id (warp slot, or a memory lane).
    pub tid: u32,
    /// Slice name.
    pub name: &'static str,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
}

/// Per-SM run-length recorder of warp states. The SM calls
/// [`SmTimeline::observe`] once per tick per slot; identical
/// consecutive states extend the open slice, changes close it.
#[derive(Debug)]
pub struct SmTimeline {
    sm: u32,
    open: Vec<Option<(WarpState, u64)>>,
    slices: Vec<Slice>,
}

impl SmTimeline {
    /// A recorder for `warp_slots` slots of SM `sm`.
    #[must_use]
    pub fn new(sm: u32, warp_slots: usize) -> Self {
        SmTimeline {
            sm,
            open: vec![None; warp_slots],
            slices: Vec::new(),
        }
    }

    /// Records slot `slot` being in `state` from cycle `now` onward
    /// (`None` = no resident warp). Called every tick; cycle jumps from
    /// fast-forwarding extend the open interval.
    pub fn observe(&mut self, slot: usize, state: Option<WarpState>, now: u64) {
        let open = &mut self.open[slot];
        match (*open, state) {
            (Some((cur, _)), Some(next)) if cur == next => {}
            (prev, next) => {
                if let Some((cur, since)) = prev {
                    if now > since {
                        self.slices.push(Slice {
                            pid: self.sm,
                            tid: slot as u32,
                            name: cur.name(),
                            start: since,
                            end: now,
                        });
                    }
                }
                *open = next.map(|s| (s, now));
            }
        }
    }

    /// Closes every open interval at `now` and returns all slices.
    pub fn finish(&mut self, now: u64) -> Vec<Slice> {
        for slot in 0..self.open.len() {
            self.observe(slot, None, now);
        }
        std::mem::take(&mut self.slices)
    }
}

/// A complete recorded timeline, ready for export.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// All recorded intervals.
    pub slices: Vec<Slice>,
    /// Total cycles the run covered.
    pub cycles: u64,
    /// SM count (for process metadata).
    pub num_sms: u32,
}

impl Timeline {
    /// Renders the timeline as Chrome-trace JSON (the `traceEvents`
    /// array format), loadable in Perfetto.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for pid in 0..self.num_sms {
            let _ = writeln!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"SM{pid}\"}}}},"
            );
        }
        let _ = writeln!(
            out,
            "{{\"ph\":\"M\",\"pid\":{MEM_PID},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"MemSubsystem\"}}}},"
        );
        for (i, s) in self.slices.iter().enumerate() {
            let Slice {
                pid,
                tid,
                name,
                start,
                end,
            } = s;
            let dur = end - start;
            let comma = if i + 1 == self.slices.len() { "" } else { "," };
            let cat = if *pid == MEM_PID { "mem" } else { "warp" };
            let _ = writeln!(
                out,
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start},\
                 \"dur\":{dur},\"name\":\"{name}\",\"cat\":\"{cat}\"}}{comma}"
            );
        }
        let _ = writeln!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"cycles\":{}}}}}",
            self.cycles
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_encoding_merges_identical_states() {
        let mut tl = SmTimeline::new(0, 2);
        tl.observe(0, Some(WarpState::Running), 0);
        tl.observe(0, Some(WarpState::Running), 5);
        tl.observe(0, Some(WarpState::Stalled(StallCause::DFence)), 10);
        tl.observe(0, Some(WarpState::Stalled(StallCause::DFence)), 20);
        let slices = tl.finish(30);
        assert_eq!(
            slices,
            vec![
                Slice {
                    pid: 0,
                    tid: 0,
                    name: "run",
                    start: 0,
                    end: 10
                },
                Slice {
                    pid: 0,
                    tid: 0,
                    name: "dfence",
                    start: 10,
                    end: 30
                },
            ]
        );
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        let mut tl = SmTimeline::new(1, 1);
        tl.observe(0, Some(WarpState::Running), 7);
        tl.observe(0, None, 7);
        assert!(tl.finish(7).is_empty());
    }

    #[test]
    fn chrome_json_shape() {
        let tl = Timeline {
            slices: vec![Slice {
                pid: 0,
                tid: 3,
                name: "pb_full",
                start: 10,
                end: 25,
            }],
            cycles: 100,
            num_sms: 2,
        };
        let j = tl.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"name\":\"pb_full\""));
        assert!(j.contains("\"ts\":10,\"dur\":15"));
        assert!(j.contains("\"name\":\"SM1\""));
        assert!(j.contains("MemSubsystem"));
        assert!(j.trim_end().ends_with('}'));
    }
}
