//! Memory hierarchy: backing stores, caches, device channels, and the
//! shared memory subsystem (L2 + memory controllers + PCIe).

mod backing;
mod cache;
mod channel;
mod subsystem;

pub use backing::Backing;
pub use cache::{Cache, CacheStats, Victim};
pub use channel::Channel;
pub use subsystem::{Completion, MemSubsystem, PersistDest, ReqTag};
