//! Tag-only set-associative cache with LRU replacement.
//!
//! Values live in the functional [`Backing`](super::Backing) stores, so
//! the cache tracks only residency and per-line metadata: a dirty bit and
//! the PM bit the paper adds to every L1 line (§6, Fig. 5). The persist
//! buffer's per-line entry index is kept inside
//! [`sbrp_core::pbuffer::PersistUnit`] keyed by the global line index.

/// Description of a line that must leave the cache to make room.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the victim.
    pub addr: u64,
    /// Whether the victim holds unwritten-back data.
    pub dirty: bool,
    /// Whether the victim caches PM data.
    pub pm: bool,
    /// Global line index of the victim.
    pub line: u32,
}

/// Aggregate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Lines installed.
    pub fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    addr: u64,
    valid: bool,
    dirty: bool,
    pm: bool,
    lru: u64,
}

/// The cache proper.
#[derive(Debug)]
pub struct Cache {
    sets: u32,
    ways: u32,
    line_bytes: u32,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` associativity.
    ///
    /// # Panics
    /// Panics unless `size_bytes` is a multiple of `ways * line_bytes`.
    #[must_use]
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(ways > 0 && line_bytes > 0);
        assert_eq!(size_bytes % (ways * line_bytes), 0, "ragged cache geometry");
        // Sets are indexed by modulo, so non-power-of-two counts (e.g.
        // the 3 MiB L2) are fine.
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets > 0, "cache too small for its geometry");
        Cache {
            sets,
            ways,
            line_bytes,
            lines: vec![Line::default(); (sets * ways) as usize],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total lines.
    #[must_use]
    pub fn num_lines(&self) -> u32 {
        self.sets * self.ways
    }

    /// Aligns an address to its line.
    #[must_use]
    pub fn line_align(&self, addr: u64) -> u64 {
        addr & !u64::from(self.line_bytes - 1)
    }

    /// The line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    fn set_of(&self, addr: u64) -> u32 {
        ((addr / u64::from(self.line_bytes)) % u64::from(self.sets)) as u32
    }

    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let s = self.set_of(addr) as usize * self.ways as usize;
        s..s + self.ways as usize
    }

    /// Looks an address up, updating LRU and hit/miss counters. Returns
    /// the global line index on a hit.
    pub fn lookup(&mut self, addr: u64) -> Option<u32> {
        let aligned = self.line_align(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        for i in self.set_range(addr) {
            if self.lines[i].valid && self.lines[i].addr == aligned {
                self.lines[i].lru = stamp;
                self.stats.hits += 1;
                return Some(i as u32);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Looks an address up without touching LRU or counters.
    #[must_use]
    pub fn peek(&self, addr: u64) -> Option<u32> {
        let aligned = self.line_align(addr);
        self.set_range(addr)
            .find(|&i| self.lines[i].valid && self.lines[i].addr == aligned)
            .map(|i| i as u32)
    }

    /// Chooses the line a fill of `addr` would replace, without modifying
    /// anything. Returns the way's global index and, if it currently
    /// holds a valid line, that line's description.
    ///
    /// Victim preference: invalid ways first, then LRU among lines that
    /// are *not* dirty PM (those can leave silently or with a cheap
    /// writeback), and only then dirty PM lines — whose eviction must
    /// consult the persist engine and may stall. Preferring unpinned
    /// ways keeps persist-heavy working sets from wedging the cache.
    #[must_use]
    pub fn choose_victim(&self, addr: u64) -> (u32, Option<Victim>) {
        debug_assert!(
            self.peek(addr).is_none(),
            "choose_victim on a resident line"
        );
        let mut best_unpinned = None::<usize>;
        let mut best_any = None::<usize>;
        for i in self.set_range(addr) {
            if !self.lines[i].valid {
                return (i as u32, None);
            }
            if !(self.lines[i].pm && self.lines[i].dirty)
                && best_unpinned.is_none_or(|b| self.lines[i].lru < self.lines[b].lru)
            {
                best_unpinned = Some(i);
            }
            if best_any.is_none_or(|b| self.lines[i].lru < self.lines[b].lru) {
                best_any = Some(i);
            }
        }
        let i = best_unpinned.or(best_any).expect("non-empty set");
        let l = &self.lines[i];
        (
            i as u32,
            Some(Victim {
                addr: l.addr,
                dirty: l.dirty,
                pm: l.pm,
                line: i as u32,
            }),
        )
    }

    /// Installs `addr` into way `line` (obtained from
    /// [`Cache::choose_victim`]), evicting whatever was there.
    pub fn install(&mut self, line: u32, addr: u64, dirty: bool, pm: bool) {
        let aligned = self.line_align(addr);
        debug_assert_eq!(self.set_of(aligned), self.set_of(self.way_base(line)));
        self.stamp += 1;
        let l = &mut self.lines[line as usize];
        if l.valid {
            self.stats.evictions += 1;
        }
        *l = Line {
            addr: aligned,
            valid: true,
            dirty,
            pm,
            lru: self.stamp,
        };
        self.stats.fills += 1;
    }

    fn way_base(&self, line: u32) -> u64 {
        // Reconstruct an address in the same set for the debug assert.
        u64::from(line / self.ways) * u64::from(self.line_bytes)
    }

    /// Marks a resident line dirty (and PM if `pm`).
    pub fn mark_dirty(&mut self, line: u32, pm: bool) {
        let l = &mut self.lines[line as usize];
        debug_assert!(l.valid);
        l.dirty = true;
        l.pm = pm;
    }

    /// Clears the dirty bit (after a writeback that keeps the line).
    pub fn clean(&mut self, line: u32) {
        self.lines[line as usize].dirty = false;
    }

    /// Invalidates a line by index.
    pub fn invalidate(&mut self, line: u32) {
        self.lines[line as usize].valid = false;
    }

    /// Invalidates the line holding `addr`, if resident. Returns whether
    /// a line was dropped.
    pub fn invalidate_addr(&mut self, addr: u64) -> bool {
        if let Some(i) = self.peek(addr) {
            self.invalidate(i);
            true
        } else {
            false
        }
    }

    /// The line-aligned address held by a valid line.
    ///
    /// # Panics
    /// Panics if the line is invalid.
    #[must_use]
    pub fn addr_of(&self, line: u32) -> u64 {
        let l = &self.lines[line as usize];
        assert!(l.valid, "addr_of on an invalid line");
        l.addr
    }

    /// Whether the line is valid.
    #[must_use]
    pub fn is_valid(&self, line: u32) -> bool {
        self.lines[line as usize].valid
    }

    /// Whether a valid line is dirty.
    #[must_use]
    pub fn is_dirty(&self, line: u32) -> bool {
        self.lines[line as usize].valid && self.lines[line as usize].dirty
    }

    /// Whether a valid line holds PM data.
    #[must_use]
    pub fn is_pm(&self, line: u32) -> bool {
        self.lines[line as usize].valid && self.lines[line as usize].pm
    }

    /// Indices of all valid dirty lines, optionally restricted to PM
    /// lines (the epoch barrier's flush snapshot).
    #[must_use]
    pub fn dirty_lines(&self, pm_only: bool) -> Vec<u32> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid && l.dirty && (!pm_only || l.pm))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        // 4 sets × 2 ways × 128 B = 1 KiB
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert_eq!(c.lookup(0x100), None);
        let (way, victim) = c.choose_victim(0x100);
        assert!(victim.is_none());
        c.install(way, 0x100, false, false);
        assert_eq!(c.lookup(0x13f), Some(way), "same line hits");
        assert_eq!(c.lookup(0x180), None, "next line misses");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_victim_selection() {
        let mut c = cache();
        // Three addresses mapping to set 0 (stride = sets*line = 512).
        let a = 0x0000;
        let b = 0x0200;
        let d = 0x0400;
        for &addr in &[a, b] {
            let (w, _) = c.choose_victim(addr);
            c.install(w, addr, false, false);
        }
        c.lookup(a); // touch a: b becomes LRU
        let (_, victim) = c.choose_victim(d);
        assert_eq!(victim.unwrap().addr, b);
    }

    #[test]
    fn victims_prefer_unpinned_lines() {
        let mut c = cache();
        let (w, _) = c.choose_victim(0x0000);
        c.install(w, 0x0000, false, false);
        c.mark_dirty(w, true); // dirty PM: pinned
        let (w2, _) = c.choose_victim(0x0200);
        c.install(w2, 0x0200, false, false);
        // Even though 0x0000 is LRU, the clean line is evicted first.
        let (_, victim) = c.choose_victim(0x0400);
        assert_eq!(victim.unwrap().addr, 0x0200);
    }

    #[test]
    fn pinned_victim_chosen_when_no_alternative() {
        let mut c = cache();
        for (i, addr) in [0x0000u64, 0x0200].into_iter().enumerate() {
            let (w, _) = c.choose_victim(addr);
            c.install(w, addr, false, false);
            c.mark_dirty(w, true);
            let _ = i;
        }
        let (_, victim) = c.choose_victim(0x0400);
        let v = victim.unwrap();
        assert!(v.dirty && v.pm);
        assert_eq!(v.addr, 0x0000, "LRU among pinned lines");
    }

    #[test]
    fn invalidate_addr_drops_the_line() {
        let mut c = cache();
        let (w, _) = c.choose_victim(0x300);
        c.install(w, 0x300, false, false);
        assert!(c.invalidate_addr(0x340));
        assert!(!c.invalidate_addr(0x340));
        assert_eq!(c.peek(0x300), None);
    }

    #[test]
    fn dirty_lines_filters_pm() {
        let mut c = cache();
        let (w1, _) = c.choose_victim(0x000);
        c.install(w1, 0x000, true, false);
        let (w2, _) = c.choose_victim(0x080);
        c.install(w2, 0x080, true, true);
        assert_eq!(c.dirty_lines(false).len(), 2);
        assert_eq!(c.dirty_lines(true), vec![w2]);
        c.clean(w2);
        assert!(c.dirty_lines(true).is_empty());
    }

    #[test]
    fn line_alignment() {
        let c = cache();
        assert_eq!(c.line_align(0x17f), 0x100);
        assert_eq!(c.line_align(0x180), 0x180);
    }
}
