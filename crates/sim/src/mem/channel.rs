//! Latency + bandwidth channel model.

/// A memory device or link modelled as a serialization queue (bandwidth)
/// followed by a fixed latency pipe.
///
/// `access(now, bytes)` returns the cycle at which the transfer is
/// *accepted* (has fully passed the bandwidth bottleneck — the ADR
/// durability point for a memory controller's WPQ) and the cycle at
/// which it *completes* (data available — what loads wait for).
#[derive(Clone, Debug)]
pub struct Channel {
    bytes_per_cycle: f64,
    latency: u64,
    next_free: f64,
    /// Total bytes transferred (stats).
    bytes: u64,
}

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    /// Panics if `bytes_per_cycle` is not positive.
    #[must_use]
    pub fn new(bytes_per_cycle: f64, latency: u64) -> Self {
        assert!(bytes_per_cycle > 0.0, "channel bandwidth must be positive");
        Channel {
            bytes_per_cycle,
            latency,
            next_free: 0.0,
            bytes: 0,
        }
    }

    /// Schedules a transfer of `bytes` starting no earlier than `now`.
    /// Returns `(accept_cycle, complete_cycle)`.
    pub fn access(&mut self, now: u64, bytes: u64) -> (u64, u64) {
        let start = self.next_free.max(now as f64);
        self.next_free = start + bytes as f64 / self.bytes_per_cycle;
        self.bytes += bytes;
        let accept = self.next_free.ceil() as u64;
        (accept, accept + self.latency)
    }

    /// The earliest cycle a new transfer could start.
    #[must_use]
    pub fn next_free(&self) -> u64 {
        self.next_free.ceil() as u64
    }

    /// Total bytes moved through the channel.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// The fixed latency component in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_costs_serialization_plus_latency() {
        let mut ch = Channel::new(32.0, 100);
        let (accept, complete) = ch.access(0, 128);
        assert_eq!(accept, 4); // 128 B at 32 B/cycle
        assert_eq!(complete, 104);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut ch = Channel::new(32.0, 100);
        let (a1, _) = ch.access(0, 128);
        let (a2, c2) = ch.access(0, 128);
        assert_eq!(a1, 4);
        assert_eq!(a2, 8, "second transfer waits for the first");
        assert_eq!(c2, 108);
    }

    #[test]
    fn idle_channel_starts_at_now() {
        let mut ch = Channel::new(32.0, 10);
        ch.access(0, 32);
        let (accept, _) = ch.access(1000, 32);
        assert_eq!(accept, 1001);
    }

    #[test]
    fn fractional_bandwidth_accumulates() {
        let mut ch = Channel::new(0.5, 0);
        let (a1, _) = ch.access(0, 1); // 2 cycles/byte
        let (a2, _) = ch.access(0, 1);
        assert_eq!(a1, 2);
        assert_eq!(a2, 4);
        assert_eq!(ch.total_bytes(), 2);
    }
}
