//! The shared memory subsystem: L2, memory controllers with ADR WPQs,
//! GDDR and NVM devices, and the PCIe link of the PM-far design.

use super::backing::Backing;
use super::cache::Cache;
use super::channel::Channel;
use crate::config::{is_pm, GpuConfig, SystemDesign};
use crate::fault::{DurableAction, FaultPlan, FaultState};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Extra cycles for a memory controller to accept a write into its
/// capacitor-backed WPQ (the ADR durability point).
const MC_ACCEPT_LATENCY: u64 = 10;
/// Cycles of L2 occupancy per atomic operation.
const ATOMIC_OP_LATENCY: u64 = 8;

/// Routing information returned with a completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqTag {
    /// A line fill for a warp's load; `token` routes back to the warp.
    LoadFill {
        /// Destination SM.
        sm: u32,
        /// Opaque warp token assigned by the GPU.
        token: u64,
    },
    /// Durability acknowledgement for a persist flush; resolve the
    /// destination with [`MemSubsystem::take_persist_dest`].
    PersistAck {
        /// Handle into the persist-destination registry.
        ack_id: u64,
    },
    /// Fast downstream-accept signal for an SBRP flush: a drain-window
    /// credit for the SM's persist unit.
    PersistAccept {
        /// SM whose persist unit regains a window slot.
        sm: u32,
    },
    /// Completion of a GPM epoch-barrier *volatile* writeback.
    EpochVol {
        /// SM whose epoch engine gets the ack.
        sm: u32,
    },
    /// An atomic operation finished at the L2.
    Atomic {
        /// Destination SM.
        sm: u32,
        /// Opaque warp token.
        token: u64,
    },
    /// Fire-and-forget (plain volatile writeback).
    None,
}

/// A delivered memory-system event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the event fired.
    pub at: u64,
    /// Routing tag.
    pub tag: ReqTag,
}

/// Who is waiting on a persist flush's durability acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistDest {
    /// An SBRP persist unit: deliver `ack_persist(line)` to SM `sm`.
    Sbrp {
        /// Destination SM.
        sm: u32,
        /// The L1 line index the flush drained from.
        line: u32,
    },
    /// An epoch engine's barrier round on SM `sm`.
    Epoch {
        /// Destination SM.
        sm: u32,
    },
    /// Nobody waits (final drain / natural eviction); the tokens still
    /// mark persists durable in the trace.
    Detached,
}

#[derive(Debug)]
enum EventKind {
    Deliver(ReqTag),
    /// Commit byte segments to the durable NVM image, then deliver the
    /// tag.
    Durable {
        segments: Vec<(u64, Vec<u8>)>,
        tag: ReqTag,
    },
}

#[derive(Debug)]
struct Event {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The GPU's shared memory system.
pub struct MemSubsystem {
    system: SystemDesign,
    eadr: bool,
    l2_latency: u64,
    line_bytes: u32,

    l2: Cache,
    gddr: Channel,
    nvm_read: Channel,
    nvm_write: Channel,
    pcie: Channel,
    pcie_latency: u64,

    /// Functional contents of volatile memory.
    pub gddr_mem: Backing,
    /// Functional contents of NVM (what running code observes).
    pub nvm_mem: Backing,
    /// Durable contents of NVM (what survives a crash).
    pub nvm_durable: Backing,

    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    persist_dests: std::collections::HashMap<u64, (PersistDest, Vec<u64>)>,
    next_ack_id: u64,
    fault: FaultState,
    /// Latest cycle up to which the PCIe link is busy retransmitting
    /// after injected transient faults (for stall attribution).
    backoff_until: u64,
    /// Flush lifetime recording (submit → durable) when tracing is on:
    /// `ack_id → submit cycle`, drained into `mem_slices`.
    flush_starts: Option<std::collections::HashMap<u64, u64>>,
    mem_slices: Vec<crate::timeline::Slice>,
}

impl std::fmt::Debug for MemSubsystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSubsystem")
            .field("system", &self.system)
            .field("events", &self.events.len())
            .finish()
    }
}

impl MemSubsystem {
    /// Builds the subsystem from a configuration.
    #[must_use]
    pub fn new(cfg: &GpuConfig) -> Self {
        let bpc = |gbps: f64| cfg.gbps_to_bytes_per_cycle(gbps);
        MemSubsystem {
            system: cfg.system,
            eadr: cfg.eadr,
            l2_latency: u64::from(cfg.l2_latency),
            line_bytes: cfg.line_bytes,
            l2: Cache::new(cfg.l2_kb * 1024, 16, cfg.line_bytes),
            gddr: Channel::new(bpc(cfg.gddr_bw_gbps), cfg.ns_to_cycles(cfg.gddr_latency_ns)),
            nvm_read: Channel::new(
                bpc(cfg.nvm_read_bw_gbps * cfg.nvm_bw_scale),
                cfg.ns_to_cycles(cfg.nvm_latency_ns),
            ),
            nvm_write: Channel::new(
                bpc(cfg.nvm_write_bw_gbps * cfg.nvm_bw_scale),
                cfg.ns_to_cycles(cfg.nvm_latency_ns),
            ),
            pcie: Channel::new(bpc(cfg.pcie_bw_gbps), cfg.ns_to_cycles(cfg.pcie_latency_ns)),
            pcie_latency: cfg.ns_to_cycles(cfg.pcie_latency_ns),
            gddr_mem: Backing::new(),
            nvm_mem: Backing::new(),
            nvm_durable: Backing::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            persist_dests: std::collections::HashMap::new(),
            next_ack_id: 0,
            fault: FaultState::default(),
            backoff_until: 0,
            flush_starts: cfg.timeline.then(std::collections::HashMap::new),
            mem_slices: Vec::new(),
        }
    }

    /// Installs a fault-injection plan (see [`crate::fault`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault.set_plan(plan);
    }

    /// Whether an injected fault has cut power (or killed the PCIe
    /// link): no further events are delivered or committed.
    #[must_use]
    pub fn fault_crashed(&self) -> bool {
        self.fault.crashed
    }

    /// Whether the PCIe link died by exhausting its retry budget.
    #[must_use]
    pub fn fault_link_dead(&self) -> bool {
        self.fault.link_dead
    }

    /// Whether fault injection suppressed the durable commit behind a
    /// persist acknowledgement (its persists must not be marked durable
    /// in the trace).
    #[must_use]
    pub fn fault_ack_suppressed(&self, ack_id: u64) -> bool {
        self.fault.ack_suppressed(ack_id)
    }

    /// (WPQ accepts, persist-buffer drains) observed so far — the
    /// event-trigger counters of [`crate::fault::CrashTrigger`].
    #[must_use]
    pub fn fault_event_counts(&self) -> (u64, u64) {
        (self.fault.wpq_accepts, self.fault.pb_drains)
    }

    /// (retries, backoff cycles) spent recovering transient PCIe faults.
    #[must_use]
    pub fn pcie_retry_stats(&self) -> (u64, u64) {
        (self.fault.pcie_retries, self.fault.pcie_backoff_cycles)
    }

    /// A PCIe transfer, subject to transient link faults: a faulted
    /// transfer is retransmitted with exponential backoff (re-charging
    /// link bandwidth each attempt); exhausting the retry budget kills
    /// the link, which the machine treats as a power cut.
    fn pcie_transfer(&mut self, now: u64, bytes: u64) -> (u64, u64) {
        let (accept, done) = self.pcie.access(now, bytes);
        let Some(glitch) = self.fault.pcie_glitch() else {
            return (accept, done);
        };
        let (mut accept, mut done) = (accept, done);
        for attempt in 0..glitch.burst {
            if attempt >= glitch.max_retries {
                self.fault.link_dead = true;
                self.fault.crashed = true;
                break;
            }
            let backoff = glitch.backoff_base << attempt.min(16);
            self.fault.pcie_retries += 1;
            self.fault.pcie_backoff_cycles += backoff;
            let (a, d) = self.pcie.access(done + backoff, bytes);
            accept = a;
            done = d;
        }
        self.backoff_until = self.backoff_until.max(done);
        if self.flush_starts.is_some() && done > now {
            self.mem_slices.push(crate::timeline::Slice {
                pid: crate::timeline::MEM_PID,
                tid: crate::timeline::MEM_LANES as u32,
                name: "pcie_retry",
                start: now,
                end: done,
            });
        }
        (accept, done)
    }

    /// Whether the PCIe link is (still) in fault-retry backoff at
    /// `now` — warps waiting on memory or durability during such a
    /// window are charged to [`sbrp_core::stall::StallCause::PcieBackoff`].
    #[must_use]
    pub fn pcie_backoff_active(&self, now: u64) -> bool {
        now < self.backoff_until
    }

    /// First cycle at which the PCIe fault-retry backoff is over (0 when
    /// no backoff ever happened). Fast-forward jumps must not cross this
    /// boundary: stall attribution samples the cause at the landing
    /// cycle, and it differs on either side.
    #[must_use]
    pub fn pcie_backoff_until(&self) -> u64 {
        self.backoff_until
    }

    fn schedule(&mut self, at: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { at, seq, kind }));
    }

    /// Reads functional memory (routed by address range).
    #[must_use]
    pub fn read_mem(&self, addr: u64, width: u64) -> u64 {
        if is_pm(addr) {
            self.nvm_mem.read_uint(addr, width)
        } else {
            self.gddr_mem.read_uint(addr, width)
        }
    }

    /// Writes functional memory (routed by address range).
    pub fn write_mem(&mut self, addr: u64, value: u64, width: u64) {
        if is_pm(addr) {
            self.nvm_mem.write_uint(addr, value, width);
        } else {
            self.gddr_mem.write_uint(addr, value, width);
        }
    }

    /// Initializes NVM contents as already-durable (pre-launch state).
    pub fn init_nvm(&mut self, addr: u64, bytes: &[u8]) {
        self.nvm_mem.write_bytes(addr, bytes);
        self.nvm_durable.write_bytes(addr, bytes);
    }

    /// Handles an L2 fill, returning the cycle the data is available at
    /// the L2 and charging the device channels on a miss.
    fn l2_access(&mut self, now: u64, addr: u64, is_write: bool) -> u64 {
        let at_l2 = now + self.l2_latency;
        if self.l2.lookup(addr).is_some() {
            return at_l2;
        }
        // Install the line, writing back a dirty volatile victim.
        let (way, victim) = self.l2.choose_victim(addr);
        if let Some(v) = victim {
            if v.dirty && !v.pm {
                let _ = self.gddr.access(at_l2, u64::from(self.line_bytes));
            }
        }
        self.l2.install(way, addr, false, is_pm(addr));
        if is_write {
            // Write-allocate without fetch: no device read needed.
            return at_l2;
        }
        let line = u64::from(self.line_bytes);
        if !is_pm(addr) {
            let (_, done) = self.gddr.access(at_l2, line);
            done
        } else {
            match self.system {
                SystemDesign::PmNear => {
                    let (_, done) = self.nvm_read.access(at_l2, line);
                    done
                }
                SystemDesign::PmFar => {
                    // Request over PCIe (latency), read at host NVM, data
                    // returns over PCIe (bandwidth + latency).
                    let t_req = at_l2 + self.pcie_latency;
                    let (_, t_nvm) = self.nvm_read.access(t_req, line);
                    let (_, t_ret) = self.pcie_transfer(t_nvm, line);
                    t_ret
                }
            }
        }
    }

    /// Submits a line fill for a load that missed the L1.
    pub fn submit_load(&mut self, now: u64, addr: u64, tag: ReqTag) {
        let done = self.l2_access(now, addr, false);
        self.schedule(done, EventKind::Deliver(tag));
    }

    /// Submits a persist writeback (an L1 PM line flush). `segments`
    /// are the (address, bytes) runs the flushing SM actually wrote in
    /// the line, snapshotted at flush time; they are committed to the
    /// durable image when the persistence domain accepts the write.
    /// (Byte-masking matters: a whole-line snapshot of the functional
    /// image would leak *other* SMs' not-yet-flushed writes into the
    /// durable image when lines are falsely shared.) At the durability
    /// cycle a [`ReqTag::PersistAck`] fires, resolvable to
    /// `dest`/`tokens` via [`MemSubsystem::take_persist_dest`]. Returns
    /// the ack handle.
    pub fn submit_persist_flush(
        &mut self,
        now: u64,
        addr: u64,
        segments: Vec<(u64, Vec<u8>)>,
        dest: PersistDest,
        tokens: Vec<u64>,
    ) -> u64 {
        self.fault.on_pb_drain();
        let ack_id = self.next_ack_id;
        self.next_ack_id += 1;
        if let Some(starts) = self.flush_starts.as_mut() {
            starts.insert(ack_id, now);
        }
        let sbrp_sm = match dest {
            PersistDest::Sbrp { sm, .. } => Some(sm),
            _ => None,
        };
        self.persist_dests.insert(ack_id, (dest, tokens));
        let tag = ReqTag::PersistAck { ack_id };
        // Persists write through the L2 (§6: no L2 persist buffer).
        let at_l2 = self.l2_access(now, addr, true);
        if let Some(sm) = sbrp_sm {
            // Window credit once the L2/egress accepts the line.
            self.schedule(at_l2, EventKind::Deliver(ReqTag::PersistAccept { sm }));
        }
        // Charge the channels for the bytes actually written, rounded up
        // to a 32 B sector — a partially-written line does not consume a
        // full line of NVM/PCIe write bandwidth (symmetric across
        // persistency models, since every flush carries a byte mask).
        let payload: u64 = segments.iter().map(|(_, d)| d.len() as u64).sum();
        let line = payload.div_ceil(32).max(1) * 32;
        let durable_at = match self.system {
            SystemDesign::PmNear => {
                let (accept, _) = self.nvm_write.access(at_l2, line);
                accept + MC_ACCEPT_LATENCY
            }
            SystemDesign::PmFar => {
                let (_, over_pcie) = self.pcie_transfer(at_l2, line);
                if self.eadr {
                    // eADR: durable once it reaches the host LLC; the NVM
                    // write still happens, consuming bandwidth.
                    let _ = self.nvm_write.access(over_pcie, line);
                    over_pcie + MC_ACCEPT_LATENCY + self.pcie_latency
                } else {
                    let (accept, _) = self.nvm_write.access(over_pcie, line);
                    accept + MC_ACCEPT_LATENCY + self.pcie_latency
                }
            }
        };
        self.schedule(durable_at, EventKind::Durable { segments, tag });
        ack_id
    }

    /// Resolves (and removes) a persist ack's destination and tokens.
    /// `None` means the ack was never issued by
    /// [`MemSubsystem::submit_persist_flush`] or was already taken — a
    /// completion-protocol violation the GPU reports as a typed error
    /// rather than a panic.
    pub fn take_persist_dest(&mut self, ack_id: u64) -> Option<(PersistDest, Vec<u64>)> {
        self.persist_dests.remove(&ack_id)
    }

    /// Drains the flush-lifetime / PCIe-retry slices recorded while
    /// timeline tracing is on (empty otherwise).
    pub fn take_timeline_slices(&mut self) -> Vec<crate::timeline::Slice> {
        std::mem::take(&mut self.mem_slices)
    }

    /// Submits a volatile L1 writeback (dirty line to L2). The tag is
    /// delivered when the L2 accepts the line (used by GPM's barrier).
    pub fn submit_volatile_wb(&mut self, now: u64, addr: u64, tag: ReqTag) {
        let at_l2 = self.l2_access(now, addr, true);
        if let Some(i) = self.l2.peek(addr) {
            self.l2.mark_dirty(i, false);
        }
        if !matches!(tag, ReqTag::None) {
            self.schedule(at_l2, EventKind::Deliver(tag));
        }
    }

    /// Submits an atomic read-modify-write (performed at the L2).
    pub fn submit_atomic(&mut self, now: u64, addr: u64, tag: ReqTag) {
        let at_l2 = self.l2_access(now, addr, true);
        if let Some(i) = self.l2.peek(addr) {
            self.l2.mark_dirty(i, false);
        }
        self.schedule(at_l2 + ATOMIC_OP_LATENCY, EventKind::Deliver(tag));
    }

    /// Delivers all events due at or before `now`. If an injected fault
    /// cuts power mid-batch, delivery stops at that exact event: later
    /// events (even same-cycle ones) never commit or deliver.
    pub fn poll(&mut self, now: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`MemSubsystem::poll`] into a caller-owned buffer: the GPU's step
    /// loop reuses one scratch vector so event delivery never allocates
    /// on the per-cycle path. Completions are appended in timestamp
    /// order (`(at, seq)`, the heap order).
    pub fn poll_into(&mut self, now: u64, out: &mut Vec<Completion>) {
        while let Some(Reverse(e)) = self.events.peek() {
            if e.at > now || self.fault.crashed {
                break;
            }
            let Reverse(e) = self.events.pop().expect("peeked event");
            match e.kind {
                EventKind::Deliver(tag) => out.push(Completion { at: e.at, tag }),
                EventKind::Durable { segments, tag } => {
                    let ack_id = match tag {
                        ReqTag::PersistAck { ack_id } => Some(ack_id),
                        _ => None,
                    };
                    if let (Some(starts), Some(id)) = (self.flush_starts.as_mut(), ack_id) {
                        if let Some(start) = starts.remove(&id) {
                            self.mem_slices.push(crate::timeline::Slice {
                                pid: crate::timeline::MEM_PID,
                                tid: (id % crate::timeline::MEM_LANES) as u32,
                                name: "flush",
                                start,
                                end: e.at.max(start + 1),
                            });
                        }
                    }
                    match self.fault.on_wpq_accept(ack_id) {
                        DurableAction::Commit => {
                            for (addr, data) in segments {
                                self.nvm_durable.write_bytes(addr, &data);
                            }
                        }
                        DurableAction::Drop => {}
                        DurableAction::Torn(chunks) => {
                            Self::commit_torn(&mut self.nvm_durable, &segments, chunks);
                        }
                    }
                    // The ack is delivered even for dropped/torn commits:
                    // the machine believes the persist is durable.
                    out.push(Completion { at: e.at, tag });
                }
            }
        }
    }

    /// Commits only the first `chunks` 8-byte-aligned chunks of the
    /// flush's segments — a torn media write.
    fn commit_torn(durable: &mut Backing, segments: &[(u64, Vec<u8>)], mut chunks: u32) {
        for (addr, data) in segments {
            let mut off = 0usize;
            while off < data.len() {
                if chunks == 0 {
                    return;
                }
                let a = addr + off as u64;
                // Run up to the next 8-byte boundary (or segment end).
                let take = (((a / 8 + 1) * 8 - a) as usize).min(data.len() - off);
                durable.write_bytes(a, &data[off..off + take]);
                off += take;
                chunks -= 1;
            }
        }
    }

    /// The next pending event's cycle, for fast-forwarding.
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(e)| e.at)
    }

    /// Total bytes moved over PCIe (Fig. 9 analysis).
    #[must_use]
    pub fn pcie_bytes(&self) -> u64 {
        self.pcie.total_bytes()
    }

    /// Total bytes written toward NVM.
    #[must_use]
    pub fn nvm_write_bytes(&self) -> u64 {
        self.nvm_write.total_bytes()
    }

    /// Total bytes read from NVM.
    #[must_use]
    pub fn nvm_read_bytes(&self) -> u64 {
        self.nvm_read.total_bytes()
    }

    /// L2 hit/miss counters.
    #[must_use]
    pub fn l2_stats(&self) -> super::cache::CacheStats {
        self.l2.stats()
    }

    /// Invalidate an address from the L2 (used by tests).
    pub fn l2_invalidate(&mut self, addr: u64) {
        self.l2.invalidate_addr(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PM_BASE;
    use sbrp_core::ModelKind;

    fn subsystem(system: SystemDesign) -> MemSubsystem {
        MemSubsystem::new(&GpuConfig::table1(ModelKind::Sbrp, system))
    }

    fn drain_until(ms: &mut MemSubsystem, tagged: ReqTag) -> u64 {
        for _ in 0..100 {
            let Some(at) = ms.next_event() else {
                panic!("no events")
            };
            for c in ms.poll(at) {
                if c.tag == tagged {
                    return c.at;
                }
            }
        }
        panic!("completion never arrived");
    }

    #[test]
    fn volatile_load_miss_charges_gddr() {
        let mut ms = subsystem(SystemDesign::PmNear);
        let tag = ReqTag::LoadFill { sm: 0, token: 1 };
        ms.submit_load(0, 0x1000, tag);
        let t = drain_until(&mut ms, tag);
        // l2 (40) + gddr serialization + 137-cycle latency
        assert!(t >= 40 + 137, "got {t}");
        assert!(t < 300, "got {t}");
    }

    #[test]
    fn l2_hit_is_fast() {
        let mut ms = subsystem(SystemDesign::PmNear);
        let t1 = ReqTag::LoadFill { sm: 0, token: 1 };
        ms.submit_load(0, 0x1000, t1);
        let first = drain_until(&mut ms, t1);
        let t2 = ReqTag::LoadFill { sm: 0, token: 2 };
        ms.submit_load(first, 0x1000, t2);
        let second = drain_until(&mut ms, t2);
        assert_eq!(second - first, 40, "L2 hit costs only the L2 latency");
    }

    #[test]
    fn pm_far_load_is_much_slower_than_near() {
        let mut near = subsystem(SystemDesign::PmNear);
        let tag = ReqTag::LoadFill { sm: 0, token: 1 };
        near.submit_load(0, PM_BASE, tag);
        let t_near = drain_until(&mut near, tag);

        let mut far = subsystem(SystemDesign::PmFar);
        far.submit_load(0, PM_BASE, tag);
        let t_far = drain_until(&mut far, tag);
        assert!(
            t_far > t_near + 400,
            "PCIe adds round-trip cost: {t_far} vs {t_near}"
        );
    }

    #[test]
    fn persist_flush_commits_durable_image_at_ack() {
        let mut ms = subsystem(SystemDesign::PmNear);
        ms.nvm_mem.write_u64(PM_BASE, 42);
        let data = ms.nvm_mem.read_bytes(PM_BASE, 128);
        let id = ms.submit_persist_flush(
            0,
            PM_BASE,
            vec![(PM_BASE, data)],
            PersistDest::Detached,
            vec![7],
        );
        assert_eq!(ms.nvm_durable.read_u64(PM_BASE), 0, "not durable yet");
        let t = drain_until(&mut ms, ReqTag::PersistAck { ack_id: id });
        assert!(t > 0);
        assert_eq!(ms.nvm_durable.read_u64(PM_BASE), 42, "durable at ack");
        let (dest, tokens) = ms.take_persist_dest(id).expect("ack registered");
        assert_eq!(dest, PersistDest::Detached);
        assert_eq!(tokens, vec![7]);
        assert_eq!(ms.take_persist_dest(id), None, "acks resolve once");
    }

    #[test]
    fn ack_is_wpq_accept_not_media_latency() {
        // ADR: the ack arrives at WPQ accept (bandwidth + small constant),
        // far sooner than the 410-cycle media latency.
        let mut ms = subsystem(SystemDesign::PmNear);
        let id = ms.submit_persist_flush(
            0,
            PM_BASE,
            vec![(PM_BASE, vec![0; 128])],
            PersistDest::Detached,
            vec![],
        );
        let t = drain_until(&mut ms, ReqTag::PersistAck { ack_id: id });
        assert!(t < 100, "WPQ accept should be fast, got {t}");
    }

    #[test]
    fn far_persists_pay_pcie_and_queue_at_bandwidth() {
        let mut ms = subsystem(SystemDesign::PmFar);
        let mut last = 0;
        for i in 0..8u32 {
            let _ = ms.submit_persist_flush(
                0,
                PM_BASE + u64::from(i) * 128,
                vec![(PM_BASE + u64::from(i) * 128, vec![0; 128])],
                PersistDest::Detached,
                vec![],
            );
        }
        for _ in 0..8 {
            let at = ms.next_event().unwrap();
            for c in ms.poll(at) {
                last = last.max(c.at);
            }
        }
        // 8 lines × 128 B over 20.5 B/cycle PCIe ≈ 50 cycles of
        // serialization + 2×410 ns of latency ⇒ well over 800 cycles.
        assert!(last > 800, "got {last}");
    }

    #[test]
    fn eadr_acks_before_nvm_accept_under_backlog() {
        let mk = |eadr: bool| {
            let mut cfg = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmFar);
            cfg.eadr = eadr;
            // Make NVM write bandwidth the bottleneck so the WPQ queues.
            cfg.nvm_write_bw_gbps = 4.0;
            MemSubsystem::new(&cfg)
        };
        let run = |ms: &mut MemSubsystem| {
            let mut last = 0;
            for i in 0..16u32 {
                let _ = ms.submit_persist_flush(
                    0,
                    PM_BASE + u64::from(i) * 128,
                    vec![(PM_BASE + u64::from(i) * 128, vec![0; 128])],
                    PersistDest::Detached,
                    vec![],
                );
            }
            while let Some(at) = ms.next_event() {
                for c in ms.poll(at) {
                    last = last.max(c.at);
                }
            }
            last
        };
        let t_eadr = run(&mut mk(true));
        let t_adr = run(&mut mk(false));
        assert!(
            t_eadr < t_adr,
            "eADR ack at LLC precedes NVM accept ({t_eadr} vs {t_adr})"
        );
    }

    #[test]
    fn functional_memory_routes_by_address() {
        let mut ms = subsystem(SystemDesign::PmNear);
        ms.write_mem(0x100, 7, 8);
        ms.write_mem(PM_BASE + 0x100, 9, 8);
        assert_eq!(ms.read_mem(0x100, 8), 7);
        assert_eq!(ms.read_mem(PM_BASE + 0x100, 8), 9);
        assert_eq!(ms.gddr_mem.read_u64(0x100), 7);
        assert_eq!(ms.nvm_mem.read_u64(PM_BASE + 0x100), 9);
    }

    #[test]
    fn init_nvm_is_durable() {
        let mut ms = subsystem(SystemDesign::PmNear);
        ms.init_nvm(PM_BASE, &[1, 2, 3]);
        assert_eq!(ms.nvm_durable.read_bytes(PM_BASE, 3), vec![1, 2, 3]);
        assert_eq!(ms.nvm_mem.read_bytes(PM_BASE, 3), vec![1, 2, 3]);
    }

    #[test]
    fn nvm_bw_scale_knob_slows_writes() {
        let mut cfg = GpuConfig::table1(ModelKind::Sbrp, SystemDesign::PmNear);
        cfg.nvm_bw_scale = 0.5;
        let mut slow = MemSubsystem::new(&cfg);
        let mut fast = subsystem(SystemDesign::PmNear);
        let run = |ms: &mut MemSubsystem| {
            for i in 0..32u32 {
                let _ = ms.submit_persist_flush(
                    0,
                    PM_BASE + u64::from(i) * 128,
                    vec![(PM_BASE + u64::from(i) * 128, vec![0; 128])],
                    PersistDest::Detached,
                    vec![],
                );
            }
            let mut last = 0;
            while let Some(at) = ms.next_event() {
                for c in ms.poll(at) {
                    last = last.max(c.at);
                }
            }
            last
        };
        assert!(run(&mut slow) > run(&mut fast));
    }
}
