//! Sparse byte-addressable backing store.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiplicative hasher for page numbers. Page keys are small dense
/// integers, so SipHash is pure overhead on the per-access path; a
/// Fibonacci multiply spreads them across the table just as well.
#[derive(Default)]
pub struct PageKeyHasher(u64);

impl Hasher for PageKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageKeyHasher>>;

/// A sparse, byte-addressable memory image. Used for the functional GDDR
/// and NVM contents and for the durable NVM image that crash recovery
/// boots from.
///
/// Accesses that stay inside one 4 KiB page — all of them, in practice —
/// cost a single page-table lookup, not one per byte: the per-byte
/// variant dominated the simulator's completion-routing profile.
#[derive(Clone, Default)]
pub struct Backing {
    pages: PageMap,
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backing")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl Backing {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized 4 KiB pages.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(AsRef::as_ref)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = v;
    }

    /// Reads `len` bytes into a vector (little-endian order in memory).
    #[must_use]
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let a = addr + done as u64;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let run = (PAGE_SIZE - off).min(len - done);
            if let Some(p) = self.page(a) {
                out[done..done + run].copy_from_slice(&p[off..off + run]);
            }
            done += run;
        }
        out
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr + done as u64;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let run = (PAGE_SIZE - off).min(bytes.len() - done);
            self.page_mut(a)[off..off + run].copy_from_slice(&bytes[done..done + run]);
            done += run;
        }
    }

    /// Reads a little-endian value of `width` bytes (≤ 8), zero-extended.
    #[must_use]
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        debug_assert!(width <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let w = width as usize;
        if off + w <= PAGE_SIZE {
            let Some(p) = self.page(addr) else { return 0 };
            let mut v = 0u64;
            for i in (0..w).rev() {
                v = (v << 8) | u64::from(p[off + i]);
            }
            v
        } else {
            // Crosses a page boundary: fall back to byte reads.
            let mut v = 0u64;
            for i in (0..width).rev() {
                v = (v << 8) | u64::from(self.read_u8(addr + i));
            }
            v
        }
    }

    /// Writes the low `width` bytes of `v` little-endian.
    pub fn write_uint(&mut self, addr: u64, v: u64, width: u64) {
        debug_assert!(width <= 8);
        let off = (addr as usize) & (PAGE_SIZE - 1);
        let w = width as usize;
        if off + w <= PAGE_SIZE {
            let p = self.page_mut(addr);
            for i in 0..w {
                p[off + i] = (v >> (8 * i)) as u8;
            }
        } else {
            for i in 0..width {
                self.write_u8(addr + i, (v >> (8 * i)) as u8);
            }
        }
    }

    /// Reads a `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_uint(addr, v, 8);
    }

    /// Reads a `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_uint(addr, u64::from(v), 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let b = Backing::new();
        assert_eq!(b.read_u64(0xdead_beef), 0);
        assert_eq!(b.pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut b = Backing::new();
        b.write_u64(0x1234, 0xdead_beef_cafe_f00d);
        assert_eq!(b.read_u64(0x1234), 0xdead_beef_cafe_f00d);
        assert_eq!(b.read_u32(0x1234), 0xcafe_f00d);
    }

    #[test]
    fn cross_page_writes() {
        let mut b = Backing::new();
        let addr = PAGE_SIZE as u64 - 3;
        b.write_u64(addr, u64::MAX);
        assert_eq!(b.read_u64(addr), u64::MAX);
        assert_eq!(b.pages(), 2);
    }

    #[test]
    fn cross_page_uint_round_trip() {
        let mut b = Backing::new();
        let addr = PAGE_SIZE as u64 - 5;
        b.write_uint(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(b.read_uint(addr, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn partial_width_round_trip() {
        let mut b = Backing::new();
        b.write_uint(0x10, 0xaabb_ccdd_eeff, 4);
        assert_eq!(b.read_uint(0x10, 4), 0xccdd_eeff);
        assert_eq!(b.read_u8(0x14), 0, "width-4 write does not spill");
    }

    #[test]
    fn byte_slices() {
        let mut b = Backing::new();
        b.write_bytes(0x100, &[1, 2, 3, 4]);
        assert_eq!(b.read_bytes(0x0ff, 6), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn byte_slices_across_pages() {
        let mut b = Backing::new();
        let addr = PAGE_SIZE as u64 - 2;
        b.write_bytes(addr, &[9, 8, 7, 6]);
        assert_eq!(b.read_bytes(addr, 4), vec![9, 8, 7, 6]);
        assert_eq!(b.pages(), 2);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut b = Backing::new();
        b.write_u64(0, 7);
        let snap = b.clone();
        b.write_u64(0, 9);
        assert_eq!(snap.read_u64(0), 7);
        assert_eq!(b.read_u64(0), 9);
    }
}
