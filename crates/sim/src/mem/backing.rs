//! Sparse byte-addressable backing store.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, byte-addressable memory image. Used for the functional GDDR
/// and NVM contents and for the durable NVM image that crash recovery
/// boots from.
#[derive(Clone, Default)]
pub struct Backing {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backing")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl Backing {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized 4 KiB pages.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(AsRef::as_ref)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = v;
    }

    /// Reads `len` bytes into a vector (little-endian order in memory).
    #[must_use]
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads a little-endian value of `width` bytes (≤ 8), zero-extended.
    #[must_use]
    pub fn read_uint(&self, addr: u64, width: u64) -> u64 {
        debug_assert!(width <= 8);
        let mut v = 0u64;
        for i in (0..width).rev() {
            v = (v << 8) | u64::from(self.read_u8(addr + i));
        }
        v
    }

    /// Writes the low `width` bytes of `v` little-endian.
    pub fn write_uint(&mut self, addr: u64, v: u64, width: u64) {
        debug_assert!(width <= 8);
        for i in 0..width {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Reads a `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_uint(addr, v, 8);
    }

    /// Reads a `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_uint(addr, u64::from(v), 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let b = Backing::new();
        assert_eq!(b.read_u64(0xdead_beef), 0);
        assert_eq!(b.pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut b = Backing::new();
        b.write_u64(0x1234, 0xdead_beef_cafe_f00d);
        assert_eq!(b.read_u64(0x1234), 0xdead_beef_cafe_f00d);
        assert_eq!(b.read_u32(0x1234), 0xcafe_f00d);
    }

    #[test]
    fn cross_page_writes() {
        let mut b = Backing::new();
        let addr = PAGE_SIZE as u64 - 3;
        b.write_u64(addr, u64::MAX);
        assert_eq!(b.read_u64(addr), u64::MAX);
        assert_eq!(b.pages(), 2);
    }

    #[test]
    fn partial_width_round_trip() {
        let mut b = Backing::new();
        b.write_uint(0x10, 0xaabb_ccdd_eeff, 4);
        assert_eq!(b.read_uint(0x10, 4), 0xccdd_eeff);
        assert_eq!(b.read_u8(0x14), 0, "width-4 write does not spill");
    }

    #[test]
    fn byte_slices() {
        let mut b = Backing::new();
        b.write_bytes(0x100, &[1, 2, 3, 4]);
        assert_eq!(b.read_bytes(0x0ff, 6), vec![0, 1, 2, 3, 4, 0]);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut b = Backing::new();
        b.write_u64(0, 7);
        let snap = b.clone();
        b.write_u64(0, 9);
        assert_eq!(snap.read_u64(0), 7);
        assert_eq!(b.read_u64(0), 9);
    }
}
