//! The streaming multiprocessor: warp scheduling, the L1, and the
//! persistency engine (SBRP persist unit or epoch engine).

use crate::config::{is_pm, GpuConfig};
use crate::mem::{MemSubsystem, PersistDest, ReqTag};
use crate::timeline::{SmTimeline, WarpState};
use crate::trace::TraceCapture;
use sbrp_core::epoch::{EpochAck, EpochEngine, FlushScope};
use sbrp_core::formal::EventId;
use sbrp_core::ops::PersistOpKind;
use sbrp_core::pbuffer::{
    BlockReason, DrainAction, EvictOutcome, LineIdx, OpOutcome, PersistUnit, StoreOutcome,
};
use sbrp_core::scope::{Scope, ThreadPos, WarpSlot};
use sbrp_core::stall::{StallBreakdown, StallCause};
use sbrp_core::ModelKind;
use sbrp_isa::{
    AccessKind, FenceAccess, Kernel, LaneAccess, LaunchConfig, MemWidth, StepResult, WarpInterp,
};
use std::collections::HashMap;

/// The per-SM persistency hardware. One instance per SM, held inline:
/// the PersistUnit's size is fine unboxed and stays off the heap on
/// the per-cycle hot path.
#[allow(clippy::large_enum_variant)]
enum Engine {
    Sbrp(PersistUnit),
    Epoch(EpochEngine),
}

/// One pending release's flag writes (applied when the release takes
/// effect per the model's rules).
struct RelBatch {
    lanes: Vec<(u64, u64, Option<EventId>)>,
}

/// A coalesced group of lanes touching one cache line.
struct Group {
    addr: u64,
    lane_idx: Vec<usize>,
    /// Pre-allocated trace tokens for PM store groups.
    tokens: Vec<u64>,
}

enum OpKind {
    Load {
        pacq: Option<Scope>,
    },
    /// L1-bypassing load (flag spins; goes straight to the L2).
    LoadBypass,
    Store,
    Atomic {
        olds: Vec<u64>,
    },
}

/// An in-flight memory instruction, processed one group per issue slot.
struct MemOp {
    kind: OpKind,
    width: MemWidth,
    lanes: Vec<LaneAccess>,
    groups: Vec<Group>,
    next: usize,
    outstanding: u32,
}

enum WaitingOp {
    Mem(MemOp),
    /// Device-scope release awaiting `OpDone`; flags applied then.
    RelFlags(RelBatch),
    /// dFence / other engine-stalled fence awaiting `OpDone`.
    Fence,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocked {
    /// Waiting for outstanding fills/atomics.
    Mem,
    /// Waiting for the persist engine (resume via `take_resumable`).
    Engine,
    /// Waiting for an epoch barrier round.
    EpochWait,
    /// Waiting at a `__syncthreads`.
    Barrier,
    /// Asleep until the given cycle (compute or L1-hit latency).
    Sleep(u64),
}

struct WarpCtx {
    interp: WarpInterp,
    block_slot: usize,
    blocked: Option<Blocked>,
    op: Option<WaitingOp>,
    done: bool,
    /// The interpreter will re-present an already-counted instruction
    /// (engine-stall retry): don't count it again.
    retried: bool,
    /// Which fence put this warp into `Blocked::EpochWait`, for stall
    /// attribution.
    fence_cause: Option<StallCause>,
}

struct ResidentBlock {
    slots: Vec<usize>,
    live: u32,
    arrived: Vec<usize>,
}

/// Per-SM counters that are not part of the cache or engine stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmCounters {
    /// Warp instructions issued.
    pub instructions: u64,
    /// L1 read accesses (loads), all spaces.
    pub reads: u64,
    /// L1 read misses (loads), all spaces.
    pub read_misses: u64,
    /// L1 read accesses to PM data.
    pub pm_reads: u64,
    /// L1 read misses for PM data (Fig. 8).
    pub pm_read_misses: u64,
    /// Lines flushed into the persistence domain from this SM.
    pub persist_flushes: u64,
    /// Volatile writebacks (evictions + GPM barrier flushes).
    pub volatile_writebacks: u64,
    /// Warps that entered a durability wait: a dFence blocking on
    /// pending drains, or an epoch barrier ([`crate::fault`] counts
    /// these as crash-trigger events).
    pub dfence_waits: u64,
}

/// A streaming multiprocessor.
pub struct Sm {
    id: u32,
    l1: crate::mem::Cache,
    engine: Engine,
    warps: Vec<Option<WarpCtx>>,
    blocks: Vec<Option<ResidentBlock>>,
    /// Trace tokens of dirty PM lines (epoch engines only).
    line_tokens: HashMap<u32, Vec<u64>>,
    /// Per dirty PM line: which bytes *this SM* wrote (bit i = byte i of
    /// the line). Flushes commit only these bytes to the durable image,
    /// so falsely-shared lines cannot leak other SMs' unflushed writes.
    line_written: HashMap<u32, u128>,
    rr: usize,
    issue_width: u32,
    l1_hit_latency: u64,
    line_bytes: u32,
    /// Resident warps that can issue right now (`blocked == None`,
    /// `!done`). Maintained by [`Sm::set_blocked`]/[`Sm::clear_blocked`]
    /// and the warp lifecycle, so the per-cycle issue scan and the GPU's
    /// ready check are O(1) instead of O(warp slots).
    ready: u32,
    /// Resident warps currently blocked (any cause). Zero lets
    /// `charge_stalls` skip its slot scan entirely.
    blocked_count: u32,
    /// Bit per warp slot: set iff that slot holds a blocked warp
    /// (slots ≥ 128 unsupported; `charge_stalls` then falls back to a
    /// full scan). Lets stall charging visit only blocked slots.
    blocked_mask: u128,
    /// Cached minimum of all `Blocked::Sleep(until)` targets
    /// (`u64::MAX` when no warp sleeps). Sleepers only wake in the tick
    /// scan, which recomputes the minimum, so the cache is exact.
    next_sleep_wake: u64,
    /// Vacant warp slots, so a failing `try_place_block` is a single
    /// compare instead of a slot scan plus an allocation.
    free_slots: u32,
    /// Reused lane-value buffer for load completions, so `finish_mem`
    /// does not allocate per completed memory op.
    scratch_vals: Vec<u64>,
    /// Blocks completed on this SM.
    pub completed_blocks: u64,
    counters: SmCounters,
    /// Stall cycles charged by cause, whole SM.
    stall: StallBreakdown,
    /// Stall cycles charged by cause, per warp slot.
    warp_stalls: Vec<StallBreakdown>,
    /// Last cycle stalls were charged up to (ticks can jump when the
    /// GPU fast-forwards; the gap is charged in one delta).
    last_charge: u64,
    /// Warp-state interval recorder (None unless tracing is on).
    timeline: Option<SmTimeline>,
}

impl Sm {
    /// Creates an SM per the configuration.
    #[must_use]
    pub fn new(id: u32, cfg: &GpuConfig) -> Self {
        let engine = match cfg.model {
            ModelKind::Sbrp => Engine::Sbrp(PersistUnit::new(cfg.pb)),
            ModelKind::Epoch => Engine::Epoch(EpochEngine::new(FlushScope::PmOnly)),
            ModelKind::Gpm => Engine::Epoch(EpochEngine::new(FlushScope::All)),
        };
        let slots = cfg.max_warps_per_sm as usize;
        Sm {
            id,
            l1: crate::mem::Cache::new(cfg.l1_kb * 1024, 4, cfg.line_bytes),
            engine,
            warps: (0..slots).map(|_| None).collect(),
            blocks: Vec::new(),
            line_tokens: HashMap::new(),
            line_written: HashMap::new(),
            rr: 0,
            issue_width: cfg.issue_width,
            l1_hit_latency: u64::from(cfg.l1_hit_latency),
            line_bytes: cfg.line_bytes,
            ready: 0,
            blocked_count: 0,
            blocked_mask: 0,
            next_sleep_wake: u64::MAX,
            free_slots: slots as u32,
            scratch_vals: Vec::new(),
            completed_blocks: 0,
            counters: SmCounters::default(),
            stall: StallBreakdown::default(),
            warp_stalls: vec![StallBreakdown::default(); slots],
            last_charge: 0,
            timeline: cfg.timeline.then(|| SmTimeline::new(id, slots)),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> SmCounters {
        self.counters
    }

    /// SM-wide stall cycles by cause.
    #[must_use]
    pub fn stall_breakdown(&self) -> StallBreakdown {
        self.stall
    }

    /// Per-warp-slot stall cycles by cause.
    #[must_use]
    pub fn warp_stall_breakdowns(&self) -> &[StallBreakdown] {
        &self.warp_stalls
    }

    /// Closes and drains the timeline recorder (empty if tracing off).
    pub fn take_timeline(&mut self, now: u64) -> Vec<crate::timeline::Slice> {
        match self.timeline.as_mut() {
            Some(tl) => tl.finish(now),
            None => Vec::new(),
        }
    }

    /// Persist-buffer stats (zero for epoch engines).
    #[must_use]
    pub fn pb_stats(&self) -> sbrp_core::pbuffer::PbStats {
        match &self.engine {
            Engine::Sbrp(u) => u.stats(),
            Engine::Epoch(_) => sbrp_core::pbuffer::PbStats::default(),
        }
    }

    /// Epoch barrier rounds executed (zero for SBRP).
    #[must_use]
    pub fn epoch_rounds(&self) -> u64 {
        match &self.engine {
            Engine::Sbrp(_) => 0,
            Engine::Epoch(e) => e.rounds(),
        }
    }

    /// Buffered PB entries (debug).
    #[must_use]
    pub fn debug_buffered(&self) -> usize {
        match &self.engine {
            Engine::Sbrp(u) => u.buffered(),
            Engine::Epoch(_) => 0,
        }
    }

    /// Whether the persist engine has no buffered or in-flight persists.
    #[must_use]
    pub fn engine_quiescent(&self) -> bool {
        match &self.engine {
            Engine::Sbrp(u) => u.is_quiescent(),
            Engine::Epoch(e) => !e.round_active(),
        }
    }

    /// Begins the end-of-kernel drain: SBRP units ignore the window;
    /// epoch SMs flush their remaining dirty PM lines.
    pub fn begin_final_drain(&mut self, ms: &mut MemSubsystem, now: u64) {
        match &mut self.engine {
            Engine::Sbrp(u) => u.set_drain_all(true),
            Engine::Epoch(_) => {
                for line in self.l1.dirty_lines(true) {
                    let addr = self.l1.addr_of(line);
                    let segments = self.take_line_segments(line, ms);
                    let tokens = self.line_tokens.remove(&line).unwrap_or_default();
                    ms.submit_persist_flush(now, addr, segments, PersistDest::Detached, tokens);
                    self.counters.persist_flushes += 1;
                    self.l1.invalidate(line);
                }
            }
        }
    }

    /// Ends the drain mode after a launch completes.
    pub fn end_final_drain(&mut self) {
        if let Engine::Sbrp(u) = &mut self.engine {
            u.set_drain_all(false);
        }
    }

    /// Places a block on this SM if enough warp slots are free.
    pub fn try_place_block(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        block_id: u32,
    ) -> bool {
        let need = launch.warps_per_block() as usize;
        // The maintained count makes the common failing case (every SM
        // probed each dispatch cycle while blocks queue) a bare compare,
        // with no slot scan and no allocation.
        if (self.free_slots as usize) < need {
            return false;
        }
        let free: Vec<usize> = (0..self.warps.len())
            .filter(|&i| self.warps[i].is_none())
            .take(need)
            .collect();
        debug_assert_eq!(free.len(), need);
        let block_slot = match self.blocks.iter().position(Option::is_none) {
            Some(i) => i,
            None => {
                self.blocks.push(None);
                self.blocks.len() - 1
            }
        };
        for (w, &slot) in free.iter().enumerate() {
            self.warps[slot] = Some(WarpCtx {
                interp: WarpInterp::new(kernel, launch, block_id, w as u32),
                block_slot,
                blocked: None,
                op: None,
                done: false,
                retried: false,
                fence_cause: None,
            });
        }
        self.blocks[block_slot] = Some(ResidentBlock {
            slots: free,
            live: need as u32,
            arrived: Vec::new(),
        });
        self.free_slots -= need as u32;
        self.ready += need as u32;
        true
    }

    /// Extracts the (address, bytes) runs this SM wrote in `line`,
    /// snapshotting current functional NVM contents.
    fn take_line_segments(&mut self, line: u32, ms: &MemSubsystem) -> Vec<(u64, Vec<u8>)> {
        let base = self.l1.addr_of(line);
        let mask = self.line_written.remove(&line).unwrap_or(0);
        let mut segments = Vec::new();
        let mut i = 0u32;
        while i < self.line_bytes {
            if mask >> i & 1 == 1 {
                let start = i;
                while i < self.line_bytes && mask >> i & 1 == 1 {
                    i += 1;
                }
                let addr = base + u64::from(start);
                segments.push((addr, ms.nvm_mem.read_bytes(addr, (i - start) as usize)));
            } else {
                i += 1;
            }
        }
        segments
    }

    fn thread_pos(&self, slot: usize, lane: u8) -> ThreadPos {
        let ctx = self.warps[slot].as_ref().expect("warp present");
        ThreadPos::new(
            ctx.interp.block_id(),
            ctx.interp.warp_in_block() * 32 + u32::from(lane),
        )
    }

    fn coalesce(&self, lanes: &[LaneAccess]) -> Vec<Group> {
        // A warp touches at most 32 lines, so a linear scan beats a
        // HashMap here; insertion order (first-touch) is preserved.
        let mut groups: Vec<Group> = Vec::new();
        for (i, la) in lanes.iter().enumerate() {
            let line = la.addr & !u64::from(self.line_bytes - 1);
            match groups.iter_mut().find(|g| g.addr == line) {
                Some(g) => g.lane_idx.push(i),
                None => groups.push(Group {
                    addr: line,
                    lane_idx: vec![i],
                    tokens: Vec::new(),
                }),
            }
        }
        groups
    }

    /// Makes `addr`'s line resident, handling the victim. `Err(())`
    /// means the issuing warp was stalled by the persist engine.
    fn ensure_line(
        &mut self,
        slot: usize,
        addr: u64,
        ms: &mut MemSubsystem,
        now: u64,
    ) -> Result<u32, ()> {
        if let Some(i) = self.l1.peek(addr) {
            return Ok(i);
        }
        let (way, victim) = self.l1.choose_victim(addr);
        if let Some(v) = victim {
            if v.pm && v.dirty {
                match &mut self.engine {
                    Engine::Sbrp(unit) => {
                        match unit.evict_request(WarpSlot::new(slot), LineIdx(v.line)) {
                            EvictOutcome::Flushed { tokens, .. } => {
                                let segments = self.take_line_segments(v.line, ms);
                                ms.submit_persist_flush(
                                    now,
                                    v.addr,
                                    segments,
                                    PersistDest::Sbrp {
                                        sm: self.id,
                                        line: v.line,
                                    },
                                    tokens,
                                );
                                self.counters.persist_flushes += 1;
                            }
                            EvictOutcome::NotBuffered => {
                                unreachable!("dirty PM line without a PB entry under SBRP");
                            }
                            EvictOutcome::Stall => return Err(()),
                        }
                    }
                    Engine::Epoch(_) => {
                        let segments = self.take_line_segments(v.line, ms);
                        let tokens = self.line_tokens.remove(&v.line).unwrap_or_default();
                        ms.submit_persist_flush(
                            now,
                            v.addr,
                            segments,
                            PersistDest::Detached,
                            tokens,
                        );
                        self.counters.persist_flushes += 1;
                    }
                }
            } else if v.dirty {
                ms.submit_volatile_wb(now, v.addr, ReqTag::None);
                self.counters.volatile_writebacks += 1;
            }
        }
        self.l1.install(way, addr, false, is_pm(addr));
        Ok(way)
    }

    // ------------------------------------------------------------------
    // Completion routing (called by the GPU)
    // ------------------------------------------------------------------

    /// A line fill (or atomic response) for warp `slot` arrived.
    ///
    /// # Errors
    ///
    /// A fill routed to a warp with no in-flight memory op is a
    /// completion-protocol violation, reported instead of panicking so
    /// campaign runs can record the cell as failed and continue.
    pub fn on_fill(
        &mut self,
        slot: usize,
        tracer: &mut Option<TraceCapture>,
        ms: &MemSubsystem,
    ) -> Result<(), String> {
        let finish = {
            let Some(ctx) = self.warps[slot].as_mut() else {
                return Err(format!("fill for vacant warp slot {slot}"));
            };
            let Some(WaitingOp::Mem(op)) = ctx.op.as_mut() else {
                return Err(format!("fill for warp slot {slot} with no memory op"));
            };
            op.outstanding -= 1;
            op.outstanding == 0 && op.next == op.groups.len()
        };
        if finish {
            self.finish_mem(slot, tracer, ms);
        }
        Ok(())
    }

    /// The L2 accepted one of this SM's persist flushes (window credit).
    pub fn on_flush_accepted(&mut self) {
        if let Engine::Sbrp(unit) = &mut self.engine {
            unit.flush_accepted();
        }
    }

    /// A durability ack for an SBRP flush of `line`.
    ///
    /// # Errors
    ///
    /// Delivering an SBRP ack to an epoch SM is a completion-protocol
    /// violation.
    pub fn on_persist_ack(&mut self, line: u32) -> Result<(), String> {
        match &mut self.engine {
            Engine::Sbrp(unit) => {
                unit.ack_persist(LineIdx(line));
                Ok(())
            }
            Engine::Epoch(_) => Err(format!("SBRP ack delivered to epoch SM {}", self.id)),
        }
    }

    /// An epoch barrier writeback (PM or volatile) completed.
    ///
    /// # Errors
    ///
    /// Delivering an epoch ack to an SBRP SM is a completion-protocol
    /// violation.
    pub fn on_epoch_ack(&mut self, ms: &mut MemSubsystem, now: u64) -> Result<(), String> {
        let ack = match &mut self.engine {
            Engine::Epoch(e) => e.ack(),
            Engine::Sbrp(_) => {
                return Err(format!("epoch ack delivered to SBRP SM {}", self.id));
            }
        };
        self.handle_epoch_ack(ack, ms, now);
        Ok(())
    }

    fn handle_epoch_ack(&mut self, ack: EpochAck, ms: &mut MemSubsystem, now: u64) {
        for w in ack.released.iter() {
            let slot = w.index();
            if self.warps[slot].is_some() {
                debug_assert_eq!(
                    self.warps[slot].as_ref().expect("warp").blocked,
                    Some(Blocked::EpochWait)
                );
                self.clear_blocked(slot);
                let ctx = self.warps[slot].as_mut().expect("warp");
                ctx.fence_cause = None;
                ctx.interp.complete();
            }
        }
        if ack.start_next {
            let count = self.epoch_flush_round(ms, now);
            let next = match &mut self.engine {
                Engine::Epoch(e) => e.begin_round(count),
                Engine::Sbrp(_) => unreachable!(),
            };
            self.handle_epoch_ack(next, ms, now);
        }
    }

    /// Snapshots and flushes dirty lines for an epoch barrier round.
    fn epoch_flush_round(&mut self, ms: &mut MemSubsystem, now: u64) -> u32 {
        let pm_only = match &self.engine {
            Engine::Epoch(e) => e.flush_scope() == FlushScope::PmOnly,
            Engine::Sbrp(_) => unreachable!(),
        };
        let mut count = 0u32;
        for line in self.l1.dirty_lines(false) {
            let addr = self.l1.addr_of(line);
            if self.l1.is_pm(line) {
                let segments = self.take_line_segments(line, ms);
                let tokens = self.line_tokens.remove(&line).unwrap_or_default();
                ms.submit_persist_flush(
                    now,
                    addr,
                    segments,
                    PersistDest::Epoch { sm: self.id },
                    tokens,
                );
                self.counters.persist_flushes += 1;
                self.l1.invalidate(line);
                count += 1;
            } else if !pm_only {
                ms.submit_volatile_wb(now, addr, ReqTag::EpochVol { sm: self.id });
                self.counters.volatile_writebacks += 1;
                self.l1.invalidate(line);
                count += 1;
            }
        }
        count
    }

    // ------------------------------------------------------------------
    // The per-cycle tick
    // ------------------------------------------------------------------

    /// Blocks warp `slot`, maintaining the ready/blocked counters and
    /// the cached sleep minimum. Callers only block currently-ready
    /// warps (a warp must have issued to hit a stall condition).
    fn set_blocked(&mut self, slot: usize, b: Blocked) {
        let ctx = self.warps[slot].as_mut().expect("warp");
        debug_assert!(!ctx.done, "blocking a finished warp");
        if ctx.blocked.is_none() {
            self.ready -= 1;
            self.blocked_count += 1;
            if slot < 128 {
                self.blocked_mask |= 1 << slot;
            }
        }
        ctx.blocked = Some(b);
        if let Blocked::Sleep(until) = b {
            self.next_sleep_wake = self.next_sleep_wake.min(until);
        }
    }

    /// Unblocks warp `slot`. Idempotent: completion paths can reach a
    /// warp the wake scan already released (an all-hit load finishing at
    /// its sleep deadline).
    fn clear_blocked(&mut self, slot: usize) {
        let ctx = self.warps[slot].as_mut().expect("warp");
        if ctx.blocked.take().is_some() {
            debug_assert!(!ctx.done, "a finished warp cannot be blocked");
            self.ready += 1;
            self.blocked_count -= 1;
            if slot < 128 {
                self.blocked_mask &= !(1 << slot);
            }
        }
    }

    /// Runs one cycle: engine drain, wakeups, and warp issue. Returns
    /// whether any externally visible progress happened.
    pub fn tick(
        &mut self,
        cycle: u64,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
    ) -> bool {
        self.charge_stalls(cycle, ms);
        let mut progress = self.engine_tick(cycle, ms, tracer);

        // Wake sleepers — only when the cached minimum says one is due,
        // recomputing it over the sleepers that remain.
        if self.next_sleep_wake <= cycle {
            let mut next = u64::MAX;
            for slot in 0..self.warps.len() {
                let until = match self.warps[slot].as_ref().and_then(|c| c.blocked) {
                    Some(Blocked::Sleep(until)) => until,
                    _ => continue,
                };
                if until > cycle {
                    next = next.min(until);
                    continue;
                }
                self.clear_blocked(slot);
                // An all-hit load that was waiting out its L1 latency.
                let finished = matches!(
                    self.warps[slot].as_ref().and_then(|c| c.op.as_ref()),
                    Some(WaitingOp::Mem(op)) if op.next == op.groups.len() && op.outstanding == 0
                );
                if finished {
                    self.finish_mem(slot, tracer, ms);
                }
                progress = true;
            }
            self.next_sleep_wake = next;
        }

        // Issue warps round-robin. With no ready warp the scan is a
        // no-op (issuing is the only thing that could unblock one
        // mid-scan), but the round-robin pointer still advances so
        // schedules are unchanged.
        let n = self.warps.len();
        let mut issued = 0;
        if self.ready > 0 {
            for k in 0..n {
                if issued >= self.issue_width {
                    break;
                }
                let slot = (self.rr + k) % n;
                let ready = matches!(
                    self.warps[slot].as_ref(),
                    Some(ctx) if ctx.blocked.is_none() && !ctx.done
                );
                if !ready {
                    continue;
                }
                self.issue(slot, cycle, ms, tracer);
                issued += 1;
            }
        }
        self.rr = (self.rr + 1) % n;
        progress | (issued > 0)
    }

    /// Attributes every warp-stall cycle since the last charge to one
    /// [`StallCause`], per SM and per warp. Runs before wakeups and
    /// issue so an interval that ends this cycle is still charged up to
    /// it; `last_charge` makes fast-forward jumps cost one delta.
    ///
    /// Charging is two-phase: the GPU calls this *before* routing a
    /// cycle's completions (up to `cycle - 1`, so a fast-forwarded span
    /// is attributed with the blocked state that actually held during
    /// it), and [`Sm::tick`] charges the final cycle with post-routing
    /// state. Serial stepping makes the pre-routing call a delta-0
    /// no-op, which is exactly why fast-forwarded and serial runs
    /// produce identical stall breakdowns.
    pub(crate) fn charge_stalls(&mut self, cycle: u64, ms: &MemSubsystem) {
        let delta = cycle.saturating_sub(self.last_charge);
        if delta == 0 && self.timeline.is_none() {
            return;
        }
        // Only blocked warps accrue stall cycles; with none resident the
        // scan is pure overhead (unless the timeline needs the per-slot
        // running/vacant states).
        if self.blocked_count == 0 && self.timeline.is_none() {
            self.last_charge = cycle;
            return;
        }
        let backoff = ms.pcie_backoff_active(cycle);
        // Without a timeline only blocked slots matter, so walk the
        // blocked-slot bitmask instead of every slot. Falls through to
        // the full scan for timeline runs (which must observe running
        // and vacant slots too) and for >128-slot configurations.
        if self.timeline.is_none() && self.warps.len() <= 128 {
            debug_assert_eq!(self.blocked_mask.count_ones(), self.blocked_count);
            let mut mask = self.blocked_mask;
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let ctx = self.warps[slot].as_ref().expect("masked slot has a warp");
                let b = ctx.blocked.expect("masked slot is blocked");
                let cause = Self::stall_cause_of(&self.engine, ctx, b, backoff, slot);
                self.stall.charge(cause, delta);
                self.warp_stalls[slot].charge(cause, delta);
            }
            self.last_charge = cycle;
            return;
        }
        for slot in 0..self.warps.len() {
            let state = match self.warps[slot].as_ref() {
                None => None,
                Some(ctx) if ctx.done => None,
                Some(ctx) => match ctx.blocked {
                    None => Some(WarpState::Running),
                    Some(b) => Some(WarpState::Stalled(Self::stall_cause_of(
                        &self.engine,
                        ctx,
                        b,
                        backoff,
                        slot,
                    ))),
                },
            };
            if delta > 0 {
                if let Some(WarpState::Stalled(cause)) = state {
                    self.stall.charge(cause, delta);
                    self.warp_stalls[slot].charge(cause, delta);
                }
            }
            if let Some(tl) = self.timeline.as_mut() {
                tl.observe(slot, state, cycle);
            }
        }
        self.last_charge = cycle;
    }

    /// Which cause a blocked warp is experiencing *right now*. Engine
    /// blocks refine dynamically: a durability wait whose buffer has
    /// fully drained is WPQ backpressure, and any durability or memory
    /// wait during PCIe fault-retry backoff is charged to the link.
    fn stall_cause_of(
        engine: &Engine,
        ctx: &WarpCtx,
        blocked: Blocked,
        backoff: bool,
        slot: usize,
    ) -> StallCause {
        match blocked {
            Blocked::Sleep(_) | Blocked::Barrier => StallCause::Scoreboard,
            Blocked::Mem => {
                if backoff {
                    StallCause::PcieBackoff
                } else {
                    StallCause::L1Miss
                }
            }
            Blocked::EpochWait => {
                let cause = ctx.fence_cause.unwrap_or(StallCause::DFence);
                if backoff {
                    StallCause::PcieBackoff
                } else {
                    cause
                }
            }
            Blocked::Engine => match engine {
                Engine::Sbrp(unit) => {
                    let cause = unit
                        .stall_cause(WarpSlot::new(slot))
                        .unwrap_or(StallCause::Scoreboard);
                    match cause {
                        StallCause::DFence | StallCause::PAcqRel => {
                            if backoff {
                                StallCause::PcieBackoff
                            } else if unit.buffered() == 0 && unit.outstanding() > 0 {
                                StallCause::WpqBackpressure
                            } else {
                                cause
                            }
                        }
                        other => other,
                    }
                }
                // Epoch engines never produce `Blocked::Engine`.
                Engine::Epoch(_) => StallCause::Scoreboard,
            },
        }
    }

    fn engine_tick(
        &mut self,
        cycle: u64,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
    ) -> bool {
        let (actions, resumable) = match &mut self.engine {
            Engine::Sbrp(unit) => (unit.tick(1), unit.take_resumable()),
            Engine::Epoch(_) => return false,
        };
        let progress = !actions.is_empty() || !resumable.is_empty();
        for action in actions {
            match action {
                DrainAction::Flush { line, tokens, .. } => {
                    let addr = self.l1.addr_of(line.0);
                    let segments = self.take_line_segments(line.0, ms);
                    ms.submit_persist_flush(
                        cycle,
                        addr,
                        segments,
                        PersistDest::Sbrp {
                            sm: self.id,
                            line: line.0,
                        },
                        tokens,
                    );
                    self.counters.persist_flushes += 1;
                    // The drained line stays resident but clean: the data
                    // is now (about to be) durable, and keeping it cached
                    // is what lets intra-block consumers keep hitting in
                    // the L1 (§7.2, "writes under SBRP-near remain in L1
                    // cache"). A later store re-allocates a PB entry.
                    self.l1.clean(line.0);
                }
            }
        }
        for (w, reason) in resumable {
            let slot = w.index();
            debug_assert_eq!(
                self.warps[slot]
                    .as_ref()
                    .expect("blocked warp exists")
                    .blocked,
                Some(Blocked::Engine)
            );
            self.clear_blocked(slot);
            let ctx = self.warps[slot].as_mut().expect("blocked warp exists");
            match reason {
                BlockReason::RetryStore | BlockReason::RetryFull | BlockReason::RetryEvict => {
                    if ctx.op.is_none() {
                        // A fence refused for lack of space: re-issue it.
                        // The re-issue is the same dynamic instruction,
                        // so it must not be counted again.
                        ctx.interp.retry();
                        ctx.retried = true;
                    }
                    // Otherwise the in-flight MemOp resumes where it was.
                }
                BlockReason::OpDone => {
                    match ctx.op.take() {
                        Some(WaitingOp::RelFlags(batch)) => {
                            Self::apply_rel_batch(ms, tracer, &batch);
                        }
                        Some(WaitingOp::Fence) | None => {}
                        Some(WaitingOp::Mem(_)) => {
                            panic!("OpDone delivered to a warp with a memory op")
                        }
                    }
                    ctx.interp.complete();
                }
            }
        }
        progress
    }

    fn apply_rel_batch(ms: &mut MemSubsystem, tracer: &mut Option<TraceCapture>, batch: &RelBatch) {
        for &(addr, value, rel) in &batch.lanes {
            // Release flags are 32-bit, matching pAcq's load width.
            ms.write_mem(addr, value, 4);
            if let (Some(tc), Some(rel)) = (tracer.as_mut(), rel) {
                tc.flag_released(addr, rel);
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue path
    // ------------------------------------------------------------------

    fn issue(
        &mut self,
        slot: usize,
        cycle: u64,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
    ) {
        if matches!(
            self.warps[slot].as_ref().and_then(|c| c.op.as_ref()),
            Some(WaitingOp::Mem(_))
        ) {
            // Continuation of an in-flight memory instruction (further
            // coalesced groups, or resumption after an engine stall):
            // the instruction was counted when it first issued.
            self.progress_mem(slot, cycle, ms, tracer);
            return;
        }
        // Count each dynamic instruction exactly once: a fence that the
        // engine refused and re-presents via `retry()` is the same
        // instruction, not a new one.
        let retried = {
            let ctx = self.warps[slot].as_mut().expect("warp");
            std::mem::take(&mut ctx.retried)
        };
        if !retried {
            self.counters.instructions += 1;
        }
        let result = self.warps[slot].as_mut().expect("warp").interp.step();
        match result {
            StepResult::Alu => {}
            StepResult::Sleep(n) => {
                self.set_blocked(slot, Blocked::Sleep(cycle + u64::from(n)));
            }
            StepResult::Done => self.warp_done(slot),
            StepResult::Mem(access) => {
                let groups = self.coalesce(&access.lanes);
                let kind = match access.kind {
                    AccessKind::Load => OpKind::Load { pacq: None },
                    AccessKind::LoadVolatile => OpKind::LoadBypass,
                    AccessKind::Store => OpKind::Store,
                    AccessKind::AtomAdd => {
                        // Atomics execute functionally at issue, in lane
                        // order, capturing old values.
                        let width = access.width.bytes();
                        let olds = access
                            .lanes
                            .iter()
                            .map(|la| {
                                assert!(
                                    !is_pm(la.addr),
                                    "atomics on PM are unsupported (workloads use volatile \
                                     addresses for work distribution)"
                                );
                                let old = ms.read_mem(la.addr, width);
                                ms.write_mem(la.addr, old.wrapping_add(la.value), width);
                                old
                            })
                            .collect();
                        OpKind::Atomic { olds }
                    }
                };
                let op = MemOp {
                    kind,
                    width: access.width,
                    lanes: access.lanes,
                    groups,
                    next: 0,
                    outstanding: 0,
                };
                self.warps[slot].as_mut().expect("warp").op = Some(WaitingOp::Mem(op));
                self.progress_mem(slot, cycle, ms, tracer);
            }
            StepResult::Fence(f) => self.handle_fence(slot, f, cycle, ms, tracer),
        }
    }

    fn warp_done(&mut self, slot: usize) {
        let block_slot = {
            let ctx = self.warps[slot].as_mut().expect("warp");
            debug_assert!(ctx.blocked.is_none(), "a blocked warp cannot retire");
            ctx.done = true;
            ctx.block_slot
        };
        // The warp was issuing (hence ready); done warps are neither
        // ready nor blocked.
        self.ready -= 1;
        enum After {
            Nothing,
            Release(Vec<usize>),
            BlockComplete,
        }
        let after = {
            let blk = self.blocks[block_slot].as_mut().expect("resident block");
            blk.live -= 1;
            if blk.live == 0 {
                After::BlockComplete
            } else if !blk.arrived.is_empty() && blk.arrived.len() as u32 == blk.live {
                After::Release(std::mem::take(&mut blk.arrived))
            } else {
                After::Nothing
            }
        };
        match after {
            After::BlockComplete => {
                let blk = self.blocks[block_slot].take().expect("block");
                self.free_slots += blk.slots.len() as u32;
                for s in blk.slots {
                    debug_assert!(self.warps[s].as_ref().is_some_and(|c| c.done));
                    self.warps[s] = None;
                }
                self.completed_blocks += 1;
            }
            After::Release(arrived) => self.release_barrier(arrived),
            After::Nothing => {}
        }
    }

    fn release_barrier(&mut self, arrived: Vec<usize>) {
        for s in arrived {
            debug_assert_eq!(
                self.warps[s].as_ref().expect("warp at barrier").blocked,
                Some(Blocked::Barrier)
            );
            self.clear_blocked(s);
            self.warps[s].as_mut().expect("warp").interp.complete();
        }
    }

    // ------------------------------------------------------------------
    // Memory instructions
    // ------------------------------------------------------------------

    fn with_mem_op<R>(&mut self, slot: usize, f: impl FnOnce(&mut MemOp) -> R) -> R {
        let ctx = self.warps[slot].as_mut().expect("warp");
        match ctx.op.as_mut() {
            Some(WaitingOp::Mem(op)) => f(op),
            _ => panic!("warp has no memory op"),
        }
    }

    /// Processes the next group of the warp's memory op (one per issue
    /// slot, so scattered accesses cost proportional cycles).
    fn progress_mem(
        &mut self,
        slot: usize,
        cycle: u64,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
    ) {
        enum Plan {
            LoadHit { addr: u64, pm: bool },
            LoadMiss { addr: u64, pm: bool },
            LoadBypass { addr: u64 },
            StorePm { addr: u64 },
            StoreVol { addr: u64 },
            Atomic { addr: u64 },
            Finished,
        }
        let plan = self.with_mem_op(slot, |op| {
            if op.next >= op.groups.len() {
                Plan::Finished
            } else {
                let addr = op.groups[op.next].addr;
                match op.kind {
                    OpKind::Load { .. } => Plan::LoadMiss {
                        addr,
                        pm: is_pm(addr),
                    },
                    OpKind::LoadBypass => Plan::LoadBypass { addr },
                    OpKind::Store if is_pm(addr) => Plan::StorePm { addr },
                    OpKind::Store => Plan::StoreVol { addr },
                    OpKind::Atomic { .. } => Plan::Atomic { addr },
                }
            }
        });
        let plan = match plan {
            Plan::LoadMiss { addr, pm } if self.l1.peek(addr).is_some() => {
                Plan::LoadHit { addr, pm }
            }
            other => other,
        };

        match plan {
            Plan::Finished => {}
            Plan::LoadHit { addr, pm } => {
                if pm {
                    self.counters.pm_reads += 1;
                }
                self.counters.reads += 1;
                let _ = self.l1.lookup(addr); // LRU touch
                self.with_mem_op(slot, |op| op.next += 1);
            }
            Plan::LoadMiss { addr, pm } => {
                match self.ensure_line(slot, addr, ms, cycle) {
                    Ok(_) => {
                        // Count only once the access is accepted, so
                        // engine-stall retries do not inflate the stats.
                        self.counters.reads += 1;
                        self.counters.read_misses += 1;
                        if pm {
                            self.counters.pm_reads += 1;
                            self.counters.pm_read_misses += 1;
                        }
                        ms.submit_load(
                            cycle,
                            addr,
                            ReqTag::LoadFill {
                                sm: self.id,
                                token: slot as u64,
                            },
                        );
                        self.with_mem_op(slot, |op| {
                            op.outstanding += 1;
                            op.next += 1;
                        });
                    }
                    Err(()) => {
                        self.set_blocked(slot, Blocked::Engine);
                        return;
                    }
                }
            }
            Plan::StorePm { addr } => {
                let line = match self.ensure_line(slot, addr, ms, cycle) {
                    Ok(l) => l,
                    Err(()) => {
                        self.set_blocked(slot, Blocked::Engine);
                        return;
                    }
                };
                // Pre-allocate trace tokens once per group so engine
                // retries do not duplicate persist events.
                if tracer.is_some() {
                    let lane_info: Vec<(u8, u64)> = self.with_mem_op(slot, |op| {
                        let g = &op.groups[op.next];
                        if g.tokens.is_empty() {
                            g.lane_idx
                                .iter()
                                .map(|&i| (op.lanes[i].lane, op.lanes[i].addr))
                                .collect()
                        } else {
                            Vec::new()
                        }
                    });
                    if !lane_info.is_empty() {
                        let tokens: Vec<u64> = lane_info
                            .iter()
                            .map(|&(lane, a)| {
                                let pos = self.thread_pos(slot, lane);
                                tracer.as_mut().expect("tracer").persist(pos, a)
                            })
                            .collect();
                        self.with_mem_op(slot, |op| {
                            let next = op.next;
                            op.groups[next].tokens = tokens;
                        });
                    }
                }
                let tokens = self.with_mem_op(slot, |op| op.groups[op.next].tokens.clone());
                let accepted = match &mut self.engine {
                    Engine::Sbrp(unit) => matches!(
                        unit.persist_store_traced(WarpSlot::new(slot), LineIdx(line), &tokens),
                        StoreOutcome::Coalesced | StoreOutcome::NewEntry
                    ),
                    Engine::Epoch(_) => {
                        self.line_tokens.entry(line).or_default().extend(tokens);
                        true
                    }
                };
                if !accepted {
                    // The store stalled on the line's earlier persist:
                    // flush it out of order right now if legal, so the
                    // warp resumes after one round-trip instead of a
                    // whole FIFO drain.
                    if let Engine::Sbrp(unit) = &mut self.engine {
                        if let Some((_, tokens)) = unit.try_early_flush(LineIdx(line)) {
                            let flush_addr = self.l1.addr_of(line);
                            let segments = self.take_line_segments(line, ms);
                            ms.submit_persist_flush(
                                cycle,
                                flush_addr,
                                segments,
                                PersistDest::Sbrp { sm: self.id, line },
                                tokens,
                            );
                            self.counters.persist_flushes += 1;
                            self.l1.clean(line);
                        }
                    }
                    self.set_blocked(slot, Blocked::Engine);
                    return;
                }
                self.l1.mark_dirty(line, true);
                // Fold the group's written-byte ranges into one mask so
                // the line_written entry is touched once per group.
                let off_mask = u64::from(self.line_bytes - 1);
                let line_bytes = u64::from(self.line_bytes);
                let mask = self.with_mem_op(slot, |op| {
                    let width = op.width.bytes();
                    let g = &op.groups[op.next];
                    let mut m = 0u128;
                    for &i in &g.lane_idx {
                        let off = op.lanes[i].addr & off_mask;
                        debug_assert!(off + width <= line_bytes);
                        m |= ((1u128 << width) - 1) << off;
                    }
                    m
                });
                *self.line_written.entry(line).or_insert(0) |= mask;
                self.commit_store_group(slot, ms);
            }
            Plan::StoreVol { addr } => match self.ensure_line(slot, addr, ms, cycle) {
                Ok(line) => {
                    self.l1.mark_dirty(line, false);
                    self.commit_store_group(slot, ms);
                }
                Err(()) => {
                    self.set_blocked(slot, Blocked::Engine);
                    return;
                }
            },
            Plan::LoadBypass { addr } => {
                // Straight to the L2; no L1 residency or stats.
                ms.submit_load(
                    cycle,
                    addr,
                    ReqTag::LoadFill {
                        sm: self.id,
                        token: slot as u64,
                    },
                );
                self.with_mem_op(slot, |op| {
                    op.outstanding += 1;
                    op.next += 1;
                });
            }
            Plan::Atomic { addr } => {
                // Atomics bypass the L1.
                ms.submit_atomic(
                    cycle,
                    addr,
                    ReqTag::Atomic {
                        sm: self.id,
                        token: slot as u64,
                    },
                );
                self.with_mem_op(slot, |op| {
                    op.outstanding += 1;
                    op.next += 1;
                });
            }
        }

        // Completion checks.
        let (all_issued, outstanding, is_store) = self.with_mem_op(slot, |op| {
            (
                op.next >= op.groups.len(),
                op.outstanding,
                matches!(op.kind, OpKind::Store),
            )
        });
        if all_issued {
            if is_store {
                // Stores complete at L1 acceptance.
                let ctx = self.warps[slot].as_mut().expect("warp");
                ctx.op = None;
                ctx.interp.complete();
            } else if outstanding > 0 {
                self.set_blocked(slot, Blocked::Mem);
            } else {
                // All-hit load: wait out the L1 hit latency.
                self.set_blocked(slot, Blocked::Sleep(cycle + self.l1_hit_latency));
            }
        }
    }

    /// Applies the functional writes of the store group just accepted.
    fn commit_store_group(&mut self, slot: usize, ms: &mut MemSubsystem) {
        let ctx = self.warps[slot].as_mut().expect("warp");
        let Some(WaitingOp::Mem(op)) = ctx.op.as_mut() else {
            panic!("commit_store_group without a memory op")
        };
        let width = op.width.bytes();
        let g = &op.groups[op.next];
        for &i in &g.lane_idx {
            ms.write_mem(op.lanes[i].addr, op.lanes[i].value, width);
        }
        op.next += 1;
    }

    /// Finishes a load/pAcq/atomic: reads values and resumes the warp.
    fn finish_mem(&mut self, slot: usize, tracer: &mut Option<TraceCapture>, ms: &MemSubsystem) {
        self.clear_blocked(slot);
        let mut values = std::mem::take(&mut self.scratch_vals);
        values.clear();
        let ctx = self.warps[slot].as_mut().expect("warp");
        let Some(WaitingOp::Mem(op)) = ctx.op.take() else {
            panic!("finish_mem without a memory op")
        };
        match op.kind {
            OpKind::LoadBypass => {
                let width = op.width.bytes();
                values.extend(op.lanes.iter().map(|la| ms.read_mem(la.addr, width)));
                ctx.interp.complete_load(&values);
            }
            OpKind::Load { pacq } => {
                let width = op.width.bytes();
                values.extend(op.lanes.iter().map(|la| ms.read_mem(la.addr, width)));
                if let (Some(scope), Some(tc)) = (pacq, tracer.as_mut()) {
                    for la in &op.lanes {
                        let pos = ThreadPos::new(
                            ctx.interp.block_id(),
                            ctx.interp.warp_in_block() * 32 + u32::from(la.lane),
                        );
                        tc.pacq(pos, scope, la.addr);
                    }
                }
                ctx.interp.complete_load(&values);
            }
            OpKind::Atomic { olds } => ctx.interp.complete_load(&olds),
            OpKind::Store => panic!("stores have no completion"),
        }
        self.scratch_vals = values;
    }

    // ------------------------------------------------------------------
    // Fences
    // ------------------------------------------------------------------

    fn trace_fence_all_lanes(
        &self,
        slot: usize,
        tracer: &mut Option<TraceCapture>,
        op: PersistOpKind,
    ) {
        if let Some(tc) = tracer.as_mut() {
            for lane in 0..32u8 {
                let pos = self.thread_pos(slot, lane);
                tc.fence(pos, op);
            }
        }
    }

    fn handle_fence(
        &mut self,
        slot: usize,
        fence: FenceAccess,
        cycle: u64,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
    ) {
        match fence {
            FenceAccess::SyncBlock => self.sync_block(slot),
            FenceAccess::OFence => match &mut self.engine {
                Engine::Sbrp(unit) => {
                    let outcome = unit.ofence(WarpSlot::new(slot));
                    match outcome {
                        OpOutcome::Proceed => {
                            self.trace_fence_all_lanes(slot, tracer, PersistOpKind::OFence);
                            self.warps[slot].as_mut().expect("warp").interp.complete();
                        }
                        OpOutcome::StallRetry | OpOutcome::StallUntilDone => {
                            self.set_blocked(slot, Blocked::Engine);
                        }
                    }
                }
                Engine::Epoch(_) => self.epoch_barrier(slot, ms, tracer, cycle, StallCause::OFence),
            },
            FenceAccess::DFence => match &mut self.engine {
                Engine::Sbrp(unit) => match unit.dfence(WarpSlot::new(slot)) {
                    OpOutcome::Proceed => {
                        self.trace_fence_all_lanes(slot, tracer, PersistOpKind::DFence);
                        self.warps[slot].as_mut().expect("warp").interp.complete();
                    }
                    OpOutcome::StallUntilDone => {
                        self.trace_fence_all_lanes(slot, tracer, PersistOpKind::DFence);
                        self.counters.dfence_waits += 1;
                        self.warps[slot].as_mut().expect("warp").op = Some(WaitingOp::Fence);
                        self.set_blocked(slot, Blocked::Engine);
                    }
                    OpOutcome::StallRetry => {
                        self.set_blocked(slot, Blocked::Engine);
                    }
                },
                Engine::Epoch(_) => self.epoch_barrier(slot, ms, tracer, cycle, StallCause::DFence),
            },
            FenceAccess::EpochBarrier => match &self.engine {
                // Under SBRP an epoch barrier degrades to the strongest
                // primitive, a dFence.
                Engine::Sbrp(_) => self.handle_fence(slot, FenceAccess::DFence, cycle, ms, tracer),
                Engine::Epoch(_) => self.epoch_barrier(slot, ms, tracer, cycle, StallCause::DFence),
            },
            FenceAccess::PAcq { scope, lanes } => {
                if let Engine::Sbrp(unit) = &mut self.engine {
                    match unit.pacq(WarpSlot::new(slot), scope) {
                        OpOutcome::Proceed => {}
                        OpOutcome::StallRetry | OpOutcome::StallUntilDone => {
                            self.set_blocked(slot, Blocked::Engine);
                            return;
                        }
                    }
                }
                if matches!(scope, Scope::Device | Scope::System) {
                    // Device-scoped acquires must not read stale L1 data.
                    for la in &lanes {
                        if let Some(i) = self.l1.peek(la.addr) {
                            if !(self.l1.is_pm(i) && self.l1.is_dirty(i)) {
                                self.l1.invalidate(i);
                            }
                        }
                    }
                }
                let groups = self.coalesce(&lanes);
                let op = MemOp {
                    kind: OpKind::Load { pacq: Some(scope) },
                    width: MemWidth::W4,
                    lanes,
                    groups,
                    next: 0,
                    outstanding: 0,
                };
                self.warps[slot].as_mut().expect("warp").op = Some(WaitingOp::Mem(op));
                self.progress_mem(slot, cycle, ms, tracer);
            }
            FenceAccess::PRel { scope, lanes } => {
                let batch = RelBatch {
                    lanes: lanes
                        .iter()
                        .map(|la| {
                            let rel = tracer.as_mut().and_then(|tc| {
                                let pos = self.thread_pos(slot, la.lane);
                                tc.prel(pos, scope, la.addr)
                            });
                            (la.addr, la.value, rel)
                        })
                        .collect(),
                };
                match &mut self.engine {
                    Engine::Sbrp(unit) => match unit.prel(WarpSlot::new(slot), scope) {
                        OpOutcome::Proceed => {
                            // Block scope: the flag publishes immediately
                            // (visible in this SM's L1); the PB enforces
                            // the durability ordering in the background.
                            Self::apply_rel_batch(ms, tracer, &batch);
                            self.warps[slot].as_mut().expect("warp").interp.complete();
                        }
                        OpOutcome::StallUntilDone => {
                            self.warps[slot].as_mut().expect("warp").op =
                                Some(WaitingOp::RelFlags(batch));
                            self.set_blocked(slot, Blocked::Engine);
                        }
                        OpOutcome::StallRetry => {
                            self.set_blocked(slot, Blocked::Engine);
                        }
                    },
                    Engine::Epoch(_) => {
                        // Baselines have no pRel; apply immediately.
                        Self::apply_rel_batch(ms, tracer, &batch);
                        self.warps[slot].as_mut().expect("warp").interp.complete();
                    }
                }
            }
        }
    }

    fn sync_block(&mut self, slot: usize) {
        let block_slot = self.warps[slot].as_ref().expect("warp").block_slot;
        self.set_blocked(slot, Blocked::Barrier);
        let release = {
            let blk = self.blocks[block_slot].as_mut().expect("block");
            blk.arrived.push(slot);
            blk.arrived.len() as u32 == blk.live
        };
        if release {
            let arrived =
                std::mem::take(&mut self.blocks[block_slot].as_mut().expect("block").arrived);
            self.release_barrier(arrived);
        }
    }

    fn epoch_barrier(
        &mut self,
        slot: usize,
        ms: &mut MemSubsystem,
        tracer: &mut Option<TraceCapture>,
        cycle: u64,
        cause: StallCause,
    ) {
        self.trace_fence_all_lanes(slot, tracer, PersistOpKind::EpochBarrier);
        self.counters.dfence_waits += 1;
        self.set_blocked(slot, Blocked::EpochWait);
        self.warps[slot].as_mut().expect("warp").fence_cause = Some(cause);
        let starts = match &mut self.engine {
            Engine::Epoch(e) => e.barrier(WarpSlot::new(slot)),
            Engine::Sbrp(_) => unreachable!("epoch barrier on an SBRP SM"),
        };
        if starts {
            let count = self.epoch_flush_round(ms, cycle);
            let ack = match &mut self.engine {
                Engine::Epoch(e) => e.begin_round(count),
                Engine::Sbrp(_) => unreachable!(),
            };
            self.handle_epoch_ack(ack, ms, cycle);
        }
    }

    /// The earliest cycle a sleeping warp wakes, for fast-forwarding.
    #[must_use]
    pub fn next_wake(&self) -> Option<u64> {
        (self.next_sleep_wake != u64::MAX).then_some(self.next_sleep_wake)
    }

    /// Whether any warp can issue right now.
    #[must_use]
    pub fn has_ready_warp(&self) -> bool {
        self.ready > 0
    }
}
