//! Golden-stats snapshots: the full `SimStats` JSON of fixed cells is
//! checked bit-for-bit against snapshots under `tests/golden/`. Any
//! timing or accounting change — intended or not — shows up as a diff
//! here before it silently shifts the paper's figures.
//!
//! Regenerate after an intended change with
//! `SBRP_UPDATE_GOLDEN=1 cargo test -p sbrp-harness --test golden_stats`
//! and review the snapshot diff like any other code change.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::{run_workload, RunSpec};
use sbrp_workloads::WorkloadKind;
use std::path::PathBuf;

fn check(name: &str, model: ModelKind, system: SystemDesign) {
    let out = run_workload(&RunSpec {
        workload: WorkloadKind::Gpkvs,
        model,
        system,
        scale: 128,
        small_gpu: true,
        ..RunSpec::default()
    })
    .expect("run completes");
    assert!(out.verified);
    let json = out.stats.to_json();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(format!("{name}.json"));
    if std::env::var_os("SBRP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("golden dir");
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}; regenerate with SBRP_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        json, expected,
        "stats for {name} drifted from the golden snapshot; if the change \
         is intended, regenerate with SBRP_UPDATE_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn gpkvs_sbrp_near_matches_golden() {
    check("gpkvs_sbrp_near_128", ModelKind::Sbrp, SystemDesign::PmNear);
}

#[test]
fn gpkvs_epoch_far_matches_golden() {
    check("gpkvs_epoch_far_128", ModelKind::Epoch, SystemDesign::PmFar);
}
