//! Torture tests for the sweep engine's fault-tolerance layer:
//! injected panics, hangs, and transient failures must degrade to
//! typed [`CellOutcome`]s — never kill the sweep — while succeeding
//! cells keep producing byte-identical output at any `--jobs`, and the
//! resume journal recovers a killed sweep without re-running finished
//! cells.

use sbrp_harness::sweep::{
    retry_backoff_millis, sweep, unwrap_outcomes, CellOutcome, SweepCell, SweepOpts,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a torture cell does when executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Return `id * 10` successfully.
    Ok,
    /// Panic on every attempt.
    PanicAlways,
    /// Panic on the first `n` attempts, then succeed.
    PanicFirst(u32),
    /// Return a failure-classified output on the first `n` attempts.
    ErrFirst(u32),
    /// Sleep far past any test deadline (bounded so an engine bug can't
    /// wedge the test binary forever).
    Hang,
}

/// A fault-injection cell. `runs` counts executions across attempts and
/// clones (the deadline watchdog runs a clone), shared via `Arc` so
/// every copy reports into the same counter.
#[derive(Clone)]
struct TortureCell {
    id: u64,
    mode: Mode,
    runs: Arc<AtomicU32>,
}

impl TortureCell {
    fn new(id: u64, mode: Mode) -> Self {
        TortureCell {
            id,
            mode,
            runs: Arc::new(AtomicU32::new(0)),
        }
    }
}

impl SweepCell for TortureCell {
    type Out = Result<u64, String>;

    fn name(&self) -> String {
        format!("torture-{}", self.id)
    }

    fn fingerprint(&self) -> u64 {
        // Intentionally ignores `mode`: a "fixed" cell (different mode,
        // same id) resumes from a journal written by a failing run,
        // mirroring a re-invocation of the same sweep.
        0xBAD_F00D ^ self.id
    }

    fn run(&self) -> Self::Out {
        let attempt = self.runs.fetch_add(1, Ordering::SeqCst) + 1;
        match self.mode {
            Mode::Ok => Ok(self.id * 10),
            Mode::PanicAlways => panic!("injected panic in cell {}", self.id),
            Mode::PanicFirst(n) if attempt <= n => {
                panic!("transient panic {attempt} in cell {}", self.id)
            }
            Mode::PanicFirst(_) => Ok(self.id * 10),
            Mode::ErrFirst(n) if attempt <= n => Err(format!("transient error {attempt}")),
            Mode::ErrFirst(_) => Ok(self.id * 10),
            Mode::Hang => {
                std::thread::sleep(Duration::from_secs(60));
                Ok(self.id * 10)
            }
        }
    }

    fn failure(&self, out: &Self::Out) -> Option<String> {
        out.as_ref().err().cloned()
    }

    fn to_cache(&self, out: &Self::Out) -> Option<String> {
        let v = out.as_ref().ok()?;
        Some(format!("{{\"schema\":1,\"kind\":\"torture\",\"v\":{v}}}"))
    }

    fn parse_cached(&self, cached: &str) -> Option<Self::Out> {
        let v = sbrp_harness::json::Json::parse(cached).ok()?;
        if v.get("kind")?.as_str()? != "torture" {
            return None;
        }
        Some(Ok(v.get("v")?.as_u64()?))
    }
}

/// Serial opts with no cache and no journal — fault policy added by
/// each test as needed.
fn opts(jobs: usize) -> SweepOpts {
    SweepOpts {
        jobs,
        ..SweepOpts::serial()
    }
}

/// A unique throwaway directory; removed by the returned guard.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sbrp-fault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Renders outcomes to the bytes a report would carry — the comparison
/// key for determinism checks.
fn render(outcomes: &[CellOutcome<Result<u64, String>>]) -> String {
    outcomes
        .iter()
        .map(|o| match o {
            CellOutcome::Ok(v) => format!("ok={v:?}\n"),
            other => format!("err={}\n", other.error().unwrap()),
        })
        .collect()
}

#[test]
fn injected_panic_degrades_to_a_typed_outcome_not_a_dead_sweep() {
    let cells = vec![
        TortureCell::new(1, Mode::Ok),
        TortureCell::new(2, Mode::PanicAlways),
        TortureCell::new(3, Mode::Ok),
    ];
    let (outcomes, summary) = sweep(&opts(2), &cells);
    assert!(matches!(&outcomes[0], CellOutcome::Ok(Ok(10))));
    match &outcomes[1] {
        CellOutcome::Panicked { message, attempts } => {
            assert!(message.contains("injected panic in cell 2"), "{message}");
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(matches!(&outcomes[2], CellOutcome::Ok(Ok(30))));
    assert_eq!(summary.failed(), 1);
    assert!(summary.summary_line().contains("1 FAILED"));

    // The aggregated unwrap names the failing cell and keeps the rest.
    let err = unwrap_outcomes(&cells, outcomes).unwrap_err();
    assert_eq!(err.failures.len(), 1);
    assert_eq!(err.failures[0].0, "torture-2");
    assert!(err.failures[0].1.contains("panicked after 1 attempt(s)"));
}

#[test]
fn hanging_cell_is_caught_by_the_deadline_watchdog() {
    let cells = vec![
        TortureCell::new(1, Mode::Ok),
        TortureCell::new(2, Mode::Hang),
    ];
    let mut o = opts(1);
    o.fault.cell_timeout = Some(Duration::from_millis(100));
    let (outcomes, _) = sweep(&o, &cells);
    assert!(matches!(&outcomes[0], CellOutcome::Ok(Ok(10))));
    match &outcomes[1] {
        CellOutcome::DeadlineExceeded {
            limit_millis,
            attempts,
        } => {
            assert_eq!(*limit_millis, 100);
            assert_eq!(*attempts, 1);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn retries_recover_transient_failures_and_count_attempts() {
    // Panic twice then succeed: retries=2 means 3 attempts, success.
    let flaky = TortureCell::new(7, Mode::PanicFirst(2));
    let runs = flaky.runs.clone();
    let mut o = opts(1);
    o.fault.retries = 2;
    let (outcomes, _) = sweep(&o, &[flaky]);
    assert!(matches!(&outcomes[0], CellOutcome::Ok(Ok(70))));
    assert_eq!(runs.load(Ordering::SeqCst), 3, "2 panics + 1 success");

    // Error-classified outputs retry the same way.
    let flaky = TortureCell::new(8, Mode::ErrFirst(1));
    let (outcomes, _) = sweep(&o, &[flaky]);
    assert!(matches!(&outcomes[0], CellOutcome::Ok(Ok(80))));

    // An insufficient budget resolves to Err with the attempt count.
    let stubborn = TortureCell::new(9, Mode::ErrFirst(10));
    let (outcomes, _) = sweep(&o, &[stubborn]);
    match &outcomes[0] {
        CellOutcome::Err {
            out,
            message,
            attempts,
        } => {
            assert_eq!(out.as_ref().unwrap_err(), "transient error 3");
            assert_eq!(message, "transient error 3");
            assert_eq!(*attempts, 3);
        }
        other => panic!("expected Err, got {other:?}"),
    }
}

#[test]
fn backoff_schedule_is_a_pure_function_of_seed_fingerprint_attempt() {
    // Purity: same inputs, same schedule, across arbitrary call orders.
    let mut schedule = Vec::new();
    for attempt in 1..=10 {
        schedule.push(retry_backoff_millis(42, 0xFEED, attempt));
    }
    for attempt in (1..=10u32).rev() {
        let i = (attempt - 1) as usize;
        assert_eq!(schedule[i], retry_backoff_millis(42, 0xFEED, attempt));
    }
    // Bounded: never above the cap, never below the base.
    for seed in 0..50u64 {
        for attempt in 1..=20 {
            let ms = retry_backoff_millis(seed, seed.wrapping_mul(0x9E37), attempt);
            assert!(
                (10..=4096).contains(&ms),
                "seed {seed} attempt {attempt}: {ms}"
            );
        }
    }
    // Seed and fingerprint both steer the jitter.
    assert!((1..=6).any(|a| retry_backoff_millis(1, 5, a) != retry_backoff_millis(2, 5, a)));
    assert!((1..=6).any(|a| retry_backoff_millis(1, 5, a) != retry_backoff_millis(1, 6, a)));
}

#[test]
fn parallel_sweeps_with_injected_failures_stay_byte_identical() {
    let build = || {
        vec![
            TortureCell::new(1, Mode::Ok),
            TortureCell::new(2, Mode::PanicAlways),
            TortureCell::new(3, Mode::Ok),
            TortureCell::new(4, Mode::ErrFirst(100)),
            TortureCell::new(5, Mode::Ok),
            TortureCell::new(6, Mode::PanicFirst(1)),
            TortureCell::new(7, Mode::Ok),
            TortureCell::new(8, Mode::Ok),
        ]
    };
    let mut serial = opts(1);
    serial.fault.retries = 1;
    let mut parallel = opts(4);
    parallel.fault.retries = 1;
    let (a, _) = sweep(&serial, &build());
    let (b, _) = sweep(&parallel, &build());
    assert_eq!(
        render(&a),
        render(&b),
        "jobs=4 with injected failures must reproduce jobs=1 byte-for-byte"
    );
    // And the hook observes identical ordered content under both modes.
    let observe = |o: &SweepOpts| {
        let mut seen = Vec::new();
        sbrp_harness::sweep::sweep_with(o, &build(), |i, out| {
            seen.push(format!("{i}:{}", out.error().unwrap_or_default()));
        });
        seen
    };
    assert_eq!(observe(&serial), observe(&parallel));
}

#[test]
fn journal_resume_skips_completed_cells_and_reproduces_clean_output() {
    let journal = TempDir::new("resume");
    let mk = |modes: &[Mode]| -> Vec<TortureCell> {
        modes
            .iter()
            .enumerate()
            .map(|(i, &m)| TortureCell::new(i as u64 + 1, m))
            .collect()
    };
    let mut o = opts(2);
    o.journal_root = Some(journal.0.clone());

    // Phase A: cells 2 and 4 fail; the other three succeed and journal.
    let crashing = [
        Mode::Ok,
        Mode::PanicAlways,
        Mode::Ok,
        Mode::PanicAlways,
        Mode::Ok,
    ];
    let (outcomes, summary) = sweep(&o, &mk(&crashing));
    assert_eq!(summary.failed(), 2);
    assert_eq!(outcomes.iter().filter(|c| c.is_ok()).count(), 3);

    // Phase B: the flake is "fixed" (same ids/fingerprints, all Ok) and
    // the sweep resumes: only the two previously-failed cells execute.
    let fixed = mk(&[Mode::Ok; 5]);
    let counters: Vec<_> = fixed.iter().map(|c| c.runs.clone()).collect();
    o.resume = true;
    let (resumed, summary) = sweep(&o, &fixed);
    assert_eq!(summary.journal_hits(), 3, "three cells come from journal");
    let executed: Vec<u32> = counters.iter().map(|c| c.load(Ordering::SeqCst)).collect();
    assert_eq!(executed, vec![0, 1, 0, 1, 0], "only missing cells re-run");

    // The resumed output is byte-identical to an uninterrupted run.
    let (clean, _) = sweep(&opts(1), &mk(&[Mode::Ok; 5]));
    assert_eq!(render(&resumed), render(&clean));
}

#[test]
fn corrupt_journal_records_fall_back_to_live_runs() {
    let journal = TempDir::new("corrupt");
    let mut o = opts(1);
    o.journal_root = Some(journal.0.clone());
    let cells = vec![TortureCell::new(1, Mode::Ok), TortureCell::new(2, Mode::Ok)];
    let (reference, _) = sweep(&o, &cells);

    // Truncate every record mid-byte, as a kill mid-write would if the
    // writes were not atomic; resume must re-run, not crash or lie.
    let sweep_dir = std::fs::read_dir(&journal.0)
        .expect("journal root")
        .next()
        .expect("one sweep dir")
        .expect("entry")
        .path();
    for entry in std::fs::read_dir(&sweep_dir).expect("records") {
        let path = entry.expect("entry").path();
        std::fs::write(&path, "{\"schema\":1,\"kind\":\"jou").unwrap();
    }
    o.resume = true;
    let fresh = vec![TortureCell::new(1, Mode::Ok), TortureCell::new(2, Mode::Ok)];
    let counters: Vec<_> = fresh.iter().map(|c| c.runs.clone()).collect();
    let (recomputed, summary) = sweep(&o, &fresh);
    assert_eq!(summary.journal_hits(), 0, "torn records must not hit");
    assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    assert_eq!(render(&reference), render(&recomputed));
}

#[test]
fn cache_hits_are_mirrored_into_the_journal() {
    let cache = TempDir::new("cache-mirror");
    let journal = TempDir::new("journal-mirror");
    let cells = vec![TortureCell::new(1, Mode::Ok)];

    // Warm the cache without a journal.
    let mut o = opts(1);
    o.cache_dir = Some(cache.0.clone());
    let _ = sweep(&o, &cells);

    // A cache-hit sweep with a journal must still write its record, so
    // `--resume` works even if the cache is later wiped.
    o.journal_root = Some(journal.0.clone());
    let (_, summary) = sweep(&o, &cells);
    assert_eq!(summary.cache_hits(), 1);

    o.cache_dir = None;
    o.resume = true;
    let fresh = vec![TortureCell::new(1, Mode::Ok)];
    let runs = fresh[0].runs.clone();
    let (outcomes, summary) = sweep(&o, &fresh);
    assert_eq!(summary.journal_hits(), 1);
    assert_eq!(runs.load(Ordering::SeqCst), 0, "served from journal");
    assert!(matches!(&outcomes[0], CellOutcome::Ok(Ok(10))));
}
