//! The sweep engine's two load-bearing guarantees, end to end:
//!
//! 1. **Determinism under parallelism** — a sweep's aggregated output is
//!    byte-identical at `--jobs 1` and `--jobs 4`, for both plain
//!    `RunSpec` matrices and the crash-recovery campaign.
//! 2. **Cache correctness** — a warm cache serves every cell without
//!    changing a byte of output; corrupt or mismatched entries fall back
//!    to a live run; distinct specs never share an entry.

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::SystemDesign;
use sbrp_harness::campaign::{self, CampaignSpec};
use sbrp_harness::sweep::{run_specs, spec_fingerprint, SweepOpts};
use sbrp_harness::RunSpec;
use sbrp_workloads::WorkloadKind;
use std::path::PathBuf;

fn tiny_specs() -> Vec<RunSpec> {
    let base = RunSpec {
        scale: 128,
        small_gpu: true,
        ..RunSpec::default()
    };
    [
        (WorkloadKind::Gpkvs, ModelKind::Sbrp, SystemDesign::PmNear),
        (WorkloadKind::Gpkvs, ModelKind::Epoch, SystemDesign::PmNear),
        (WorkloadKind::Scan, ModelKind::Sbrp, SystemDesign::PmFar),
        (WorkloadKind::Scan, ModelKind::Epoch, SystemDesign::PmFar),
        (
            WorkloadKind::Reduction,
            ModelKind::Sbrp,
            SystemDesign::PmNear,
        ),
        (WorkloadKind::Hashmap, ModelKind::Gpm, SystemDesign::PmFar),
    ]
    .into_iter()
    .map(|(workload, model, system)| RunSpec {
        workload,
        model,
        system,
        ..base.clone()
    })
    .collect()
}

/// Renders a sweep's results to the bytes a figure binary would emit.
fn render(results: &[Result<sbrp_harness::RunOutput, sbrp_harness::HarnessError>]) -> String {
    results
        .iter()
        .map(|r| match r {
            Ok(out) => format!(
                "cycles={} verified={} stats={}\n",
                out.cycles,
                out.verified,
                out.stats.to_json()
            ),
            Err(e) => format!("error={e}\n"),
        })
        .collect()
}

fn opts(jobs: usize, cache_dir: Option<PathBuf>) -> SweepOpts {
    SweepOpts {
        jobs,
        cache_dir,
        ..SweepOpts::serial()
    }
}

/// A unique throwaway cache directory; removed by the returned guard.
struct TempCache(PathBuf);

impl TempCache {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sbrp-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempCache(dir)
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn parallel_run_spec_sweep_is_byte_identical_to_serial() {
    let specs = tiny_specs();
    let (serial, s1) = run_specs(&opts(1, None), &specs);
    let (parallel, s4) = run_specs(&opts(4, None), &specs);
    assert_eq!(s1.jobs, 1);
    assert_eq!(s4.jobs, 4.min(specs.len()));
    assert_eq!(
        render(&serial),
        render(&parallel),
        "jobs=4 must reproduce jobs=1 byte-for-byte"
    );
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let spec = CampaignSpec {
        workloads: vec![WorkloadKind::Gpkvs, WorkloadKind::Multiqueue],
        models: vec![ModelKind::Sbrp, ModelKind::Epoch],
        systems: vec![SystemDesign::PmNear],
        scale: Some(128),
        points_per_cell: 4,
        small_gpu: true,
        ..CampaignSpec::default()
    };
    let serial = campaign::run_with_opts(&spec, &opts(1, None), |_| {});
    let parallel = campaign::run_with_opts(&spec, &opts(4, None), |_| {});
    assert_eq!(
        serial.table().to_text(),
        parallel.table().to_text(),
        "campaign table must not depend on worker count"
    );
    assert_eq!(
        format!("{:?}", serial.cells),
        format!("{:?}", parallel.cells),
        "every point record must match, not just the table"
    );
    // The on-cell hook observes cells in matrix order under both modes.
    let mut order = Vec::new();
    campaign::run_with_opts(&spec, &opts(4, None), |cell| {
        order.push((cell.workload, cell.model, cell.system));
    });
    let expected: Vec<_> = serial
        .cells
        .iter()
        .map(|c| (c.workload, c.model, c.system))
        .collect();
    assert_eq!(order, expected);
}

#[test]
fn warm_cache_serves_every_cell_without_changing_output() {
    let cache = TempCache::new("warm");
    let specs = tiny_specs();

    let (cold, cold_summary) = run_specs(&opts(2, Some(cache.0.clone())), &specs);
    assert_eq!(cold_summary.cache_hits(), 0, "first run must be all misses");

    let (warm, warm_summary) = run_specs(&opts(2, Some(cache.0.clone())), &specs);
    assert_eq!(
        warm_summary.cache_hits(),
        specs.len(),
        "second run must be 100% cache hits"
    );
    assert_eq!(render(&cold), render(&warm), "cache must not alter output");

    // --no-cache bypasses the warm cache and recomputes.
    let (uncached, uncached_summary) = run_specs(&opts(2, None), &specs);
    assert_eq!(uncached_summary.cache_hits(), 0);
    assert_eq!(render(&cold), render(&uncached));
}

#[test]
fn corrupt_or_mismatched_cache_entries_fall_back_to_live_runs() {
    let cache = TempCache::new("corrupt");
    let specs = vec![tiny_specs().remove(0)];
    let (reference, _) = run_specs(&opts(1, Some(cache.0.clone())), &specs);

    // Overwrite every entry with garbage: the sweep must recompute and
    // still produce the same result.
    for entry in std::fs::read_dir(&cache.0).expect("cache dir exists") {
        std::fs::write(entry.expect("entry").path(), "{\"schema\":999,\"bogus\":1").unwrap();
    }
    let (recomputed, summary) = run_specs(&opts(1, Some(cache.0.clone())), &specs);
    assert_eq!(summary.cache_hits(), 0, "garbage entries must not hit");
    assert_eq!(render(&reference), render(&recomputed));
}

#[test]
fn fingerprints_key_on_every_simulation_input() {
    // Any spec change that can change the simulation must change the
    // cache key, or a stale result would be served silently.
    let base = tiny_specs().remove(0);
    let fp = spec_fingerprint(&base);
    let variants = [
        RunSpec {
            seed: base.seed + 1,
            ..base.clone()
        },
        RunSpec {
            scale: base.scale * 2,
            ..base.clone()
        },
        RunSpec {
            workload: WorkloadKind::Scan,
            ..base.clone()
        },
        RunSpec {
            model: ModelKind::Epoch,
            ..base.clone()
        },
        RunSpec {
            system: SystemDesign::PmFar,
            ..base.clone()
        },
        RunSpec {
            eadr: true,
            system: SystemDesign::PmFar,
            ..base.clone()
        },
        RunSpec {
            pb_coverage: Some(0.25),
            ..base.clone()
        },
        RunSpec {
            window: Some(2),
            ..base.clone()
        },
        RunSpec {
            no_ooo_drain: true,
            ..base.clone()
        },
        RunSpec {
            small_gpu: false,
            ..base.clone()
        },
    ];
    for v in variants {
        assert_ne!(
            spec_fingerprint(&v),
            fp,
            "fingerprint must separate {v:?} from the base spec"
        );
    }
}

#[test]
fn campaign_cache_round_trips_through_the_engine() {
    let cache = TempCache::new("campaign");
    let spec = CampaignSpec {
        workloads: vec![WorkloadKind::Gpkvs],
        models: vec![ModelKind::Sbrp],
        systems: vec![SystemDesign::PmNear],
        scale: Some(128),
        points_per_cell: 3,
        small_gpu: true,
        ..CampaignSpec::default()
    };
    let cold = campaign::run_with_opts(&spec, &opts(1, Some(cache.0.clone())), |_| {});
    let warm = campaign::run_with_opts(&spec, &opts(1, Some(cache.0.clone())), |_| {});
    assert_eq!(
        format!("{:?}", cold.cells),
        format!("{:?}", warm.cells),
        "cached campaign cells must deserialize to the original records"
    );
    assert!(warm.ok());
}
