//! The serving engine's load-bearing guarantees, end to end:
//!
//! 1. **Determinism under parallelism** — a serve sweep's table and
//!    histogram JSON are byte-identical at `--jobs 1` and `--jobs 4`.
//! 2. **Seed sensitivity** — the arrival process actually depends on the
//!    seed (different seeds measure different tails), while the same
//!    seed reproduces the full output exactly.
//! 3. **Pinned percentiles** — the exact p50/p95/p99/p999 of fixed
//!    cells are snapshotted under `tests/golden/` and checked
//!    bit-for-bit; regenerate intended changes with
//!    `SBRP_UPDATE_GOLDEN=1 cargo test -p sbrp-harness --test serve_determinism`.
//! 4. **Crash replay exactness** — a crash mid-stream replays exactly
//!    the requests that were admitted but not durably acked at the
//!    crash instant, and the post-recovery store still verifies.

use sbrp_harness::serve::{
    hist_json, run_serve_cells, run_service, run_service_detailed, serve_table, ServeCell,
    ServeModel, ServeOutput, ServeSpec,
};
use sbrp_harness::sweep::SweepOpts;
use std::path::PathBuf;

/// A cheap spec: small GPU, short trace, still long enough to form
/// several batches and produce distinct percentiles.
fn tiny(model: ServeModel) -> ServeSpec {
    ServeSpec {
        model,
        requests: 64,
        scale: 128,
        batch: 16,
        rate_milli: 10_000,
        linger: 500,
        queue_bound: 64,
        small_gpu: true,
        ..ServeSpec::default()
    }
}

fn opts(jobs: usize) -> SweepOpts {
    SweepOpts {
        jobs,
        ..SweepOpts::serial()
    }
}

/// Runs a sweep and renders it to the bytes the `serve` binary emits:
/// the text table plus the histogram JSON artifact.
fn render(jobs: usize, cells: &[ServeCell]) -> String {
    let (results, summary) = run_serve_cells(&opts(jobs), cells);
    assert_eq!(summary.jobs, jobs.min(cells.len()));
    let outs: Vec<ServeOutput> = results
        .into_iter()
        .map(|r| r.expect("serve cell completes"))
        .collect();
    assert!(outs.iter().all(|o| o.verified), "every cell must verify");
    format!(
        "{}\n{}",
        serve_table(cells, &outs).to_text(),
        hist_json(cells, &outs)
    )
}

#[test]
fn parallel_serve_sweep_is_byte_identical_to_serial() {
    let cells: Vec<ServeCell> = [ServeModel::Sbrp, ServeModel::Gpm]
        .into_iter()
        .flat_map(|model| {
            [4_000u64, 40_000]
                .into_iter()
                .map(move |rate_milli| ServeCell {
                    spec: ServeSpec {
                        rate_milli,
                        ..tiny(model)
                    },
                })
        })
        .collect();
    assert_eq!(
        render(1, &cells),
        render(4, &cells),
        "jobs=4 must reproduce jobs=1 byte-for-byte"
    );
}

#[test]
fn arrival_seed_changes_the_measured_tail() {
    let base = tiny(ServeModel::Sbrp);
    let a = run_service(&base).expect("seed 42 run");
    let a_again = run_service(&base).expect("seed 42 rerun");
    let b = run_service(&ServeSpec { seed: 43, ..base }).expect("seed 43 run");
    assert!(a.verified && b.verified);
    assert_eq!(a, a_again, "same seed must reproduce the full output");
    assert_ne!(
        a.hist, b.hist,
        "a different seed must produce a different arrival process \
         and therefore different measured latencies"
    );
}

#[test]
fn percentiles_match_golden_snapshot() {
    // One cell below the saturation knee and one above it, so the
    // snapshot pins both a quiet-tail and an overloaded-tail shape.
    let cells = vec![
        ServeCell {
            spec: tiny(ServeModel::Sbrp),
        },
        ServeCell {
            spec: ServeSpec {
                rate_milli: 80_000,
                ..tiny(ServeModel::Gpm)
            },
        },
    ];
    let (results, _) = run_serve_cells(&SweepOpts::serial(), &cells);
    let outs: Vec<ServeOutput> = results
        .into_iter()
        .map(|r| r.expect("cell completes"))
        .collect();
    for out in &outs {
        assert!(out.verified);
        let h = &out.hist;
        assert!(h.min <= h.p50 && h.p50 <= h.p95 && h.p95 <= h.p99);
        assert!(
            h.p99 <= h.p999 && h.p999 <= h.max,
            "percentiles must be ordered"
        );
        assert_eq!(h.count, out.completed);
    }
    let json = hist_json(&cells, &outs);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join("serve_tiny_hist.json");
    if std::env::var_os("SBRP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("golden dir");
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}; regenerate with SBRP_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        json, expected,
        "serving percentiles drifted from the golden snapshot; if the \
         change is intended, regenerate with SBRP_UPDATE_GOLDEN=1 and \
         commit the diff"
    );
}

#[test]
fn crash_mid_stream_replays_exactly_the_unacked_requests() {
    let spec = ServeSpec {
        crash_at: Some(3_000),
        ..tiny(ServeModel::Sbrp)
    };
    let (out, detail) = run_service_detailed(&spec).expect("crash run completes");
    let crash = out.crash_cycle.expect("the injected crash must fire");
    assert!(
        crash >= 3_000,
        "crash fires at the first batch boundary past --crash-at"
    );
    assert!(out.verified, "post-recovery final state must verify");
    assert!(
        detail.rollback_ok,
        "recovery must roll the store back to the acked prefix"
    );
    assert!(out.recovery_cycles > 0, "recovery runs a real kernel");

    // The replay set must be exactly the requests that had arrived by
    // the crash instant, were admitted (not rejected), and were not yet
    // durably acked — no lost requests, no double-acked requests.
    let expected: Vec<usize> = detail
        .trace
        .iter()
        .enumerate()
        .filter(|(i, req)| {
            req.arrival <= crash
                && !detail.rejected[*i]
                && detail.acked[*i].is_none_or(|ack| ack > crash)
        })
        .map(|(i, _)| i)
        .collect();
    assert!(
        !expected.is_empty(),
        "a mid-stream crash must strand some requests"
    );
    assert_eq!(
        detail.replay_set, expected,
        "replay set must be exactly the admitted-but-unacked requests, in arrival order"
    );
    assert_eq!(out.replayed, expected.len() as u64);

    // After replay, every admitted request ends durably acked.
    for (i, acked) in detail.acked.iter().enumerate() {
        if detail.rejected[i] {
            assert!(acked.is_none(), "rejected request {i} must never be acked");
        } else {
            assert!(
                acked.is_some(),
                "admitted request {i} must be acked by the end"
            );
        }
    }
}

#[test]
fn overload_rejects_at_the_queue_bound_but_stays_consistent() {
    let spec = ServeSpec {
        rate_milli: 200_000,
        queue_bound: 24,
        ..tiny(ServeModel::Gpm)
    };
    let out = run_service(&spec).expect("overloaded run completes");
    assert!(out.verified, "rejected requests must not corrupt the store");
    assert!(
        out.rejected > 0,
        "an offered rate far past capacity must shed load"
    );
    assert_eq!(out.completed + out.rejected, spec.requests);
}
