//! A minimal JSON tree — just enough for the sweep engine's on-disk
//! result cache (`outputs/.cache/<hash>.json`).
//!
//! The cache round-trips records the harness itself wrote, so the
//! dialect is deliberately small: objects, arrays, strings (with the
//! common escapes), booleans, `null`, and **unsigned integers** — every
//! number the simulator produces is a `u64`, and refusing floats keeps
//! byte-identical round-trips trivial. This is not a general-purpose
//! JSON library and does not try to be one; the build environment is
//! offline, so vendoring `serde_json` is not an option.

use std::fmt::Write as _;

/// A parsed JSON value (integers only — see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so rendering is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    /// A short description with the byte offset of the first problem.
    ///
    /// ```
    /// use sbrp_harness::json::Json;
    /// let v = Json::parse(r#"{"cells": 3, "ok": true}"#).unwrap();
    /// assert_eq!(v.get("cells").and_then(Json::as_u64), Some(3));
    /// ```
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value compactly (no insignificant whitespace).
    /// Rendering then re-parsing yields an equal tree.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        // Reject the float/exponent forms this dialect excludes.
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'.' | b'e' | b'E'))
        {
            return Err(format!("non-integer number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::U64)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Writes `contents` to `path` atomically: first to a unique `.tmp`
/// sibling on the same filesystem, then published with a `rename`. A
/// crash (or `kill -9`) at any point leaves either the old file or the
/// new one — never a torn record — which is what makes the result cache
/// and the resume journal safe to trust after an interrupted sweep.
///
/// # Errors
/// The underlying I/O error if the temp write or rename fails; the
/// stray temp file is cleaned up on a failed rename.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // pid + counter make the temp name unique across processes and
    // across threads of one process writing siblings concurrently.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let tmp = path.with_file_name(format!(
        "{}.{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x\ny"}, null, true], "c": 0}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(v.get("c").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn round_trips_render_parse() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("quote \" slash \\ nl \n".into())),
            (
                "arr".into(),
                Json::Arr(vec![Json::U64(u64::MAX), Json::Bool(false), Json::Null]),
            ),
        ]);
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("-1").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2] tail").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_the_simstats_rendering() {
        let stats = sbrp_gpu_sim::stats::SimStats::default();
        assert!(Json::parse(&stats.to_json()).is_ok());
    }

    #[test]
    fn write_atomic_publishes_whole_files_and_leaves_no_temps() {
        let dir = std::env::temp_dir().join(format!("sbrp-json-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("record.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(
            stray.is_empty(),
            "temp siblings must not survive: {stray:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
