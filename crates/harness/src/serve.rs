//! Open-loop request serving: drive the simulated GPU with a
//! deterministic arrival stream of get/put/delete requests against the
//! sharded persistent KVS ([`sbrp_workloads::service`]), form batches
//! under a max-size + max-linger policy with admission control, launch
//! each batch as a kernel, and attribute per-request latency from
//! enqueue to **durable ack** — all in simulated cycles on one clock.
//!
//! # The service clock
//!
//! `Gpu::skip_idle` advances the simulator clock across host-side gaps
//! (waiting for arrivals, linger timers), so `gpu.cycle()` *is* the
//! service clock: kernel durations, idle gaps, and recovery passes
//! compose into a single timeline, and a request's latency is simply
//! `ack_cycle - arrival_cycle`.
//!
//! # Durable ack
//!
//! A batch kernel completing on `sbrp-sim` means every buffered persist
//! drained to the durability point ([`RunOutcome::Completed`] includes
//! the final drain), so kernel completion is the durable ack for every
//! request in the batch. There is no earlier ack: SBRP's buffering
//! shortens the *drain*, which is exactly what the tail latencies
//! measure.
//!
//! # Crash-mid-stream contract
//!
//! A crash takes the durable NVM image mid-batch. Recovery rolls back
//! **every** armed lane (the in-flight batch never acked — see the
//! no-commit-mark design in [`sbrp_workloads::service`]), so the
//! recovered store equals the acked-prefix state exactly; the engine
//! then re-serves precisely the un-acked requests: the in-flight batch
//! plus everything queued at the crash, in arrival order. Acked
//! requests are never re-executed; rejected requests stay rejected.

#![warn(clippy::pedantic)]
#![allow(clippy::module_name_repetitions, clippy::missing_panics_doc)]
// Lane/key counts are bounded by launch geometry and key-space size;
// the usize↔u64 conversions cannot truncate, and f64 statistics over
// cycle counts are presentation-only.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss
)]

use crate::json::Json;
use crate::report::Table;
use crate::sweep::{sweep, CellOutcome, SweepCell, SweepOpts, SweepSummary, CACHE_SCHEMA};
use crate::{HarnessError, CYCLE_LIMIT};
use sbrp_core::fingerprint::Fingerprint;
use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::{Gpu, RunOutcome};
use sbrp_workloads::service::{
    generate_trace, initial_value, ArrivalKind, LaneOp, ReqOp, Request, ServiceStore, TraceParams,
    OP_GET, OP_WRITE,
};
use std::collections::{HashMap, VecDeque};

/// The persistency configurations the serving experiment compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeModel {
    /// SBRP on PM-near (the paper's proposal, best system design).
    Sbrp,
    /// Epoch persistency on PM-near (the strongest baseline).
    Epoch,
    /// GPM on PM-far (its only realizable system design).
    Gpm,
    /// eADR: epoch programming model with the durability point at the
    /// host LLC (battery-backed), on PM-far — Fig. 9's configuration.
    Eadr,
}

impl ServeModel {
    /// All four, in report order.
    pub const ALL: [ServeModel; 4] = [
        ServeModel::Sbrp,
        ServeModel::Epoch,
        ServeModel::Gpm,
        ServeModel::Eadr,
    ];

    /// Report / CLI label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServeModel::Sbrp => "SBRP",
            ServeModel::Epoch => "Epoch",
            ServeModel::Gpm => "GPM",
            ServeModel::Eadr => "eADR",
        }
    }

    /// Parses a CLI name (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sbrp" => Some(ServeModel::Sbrp),
            "epoch" => Some(ServeModel::Epoch),
            "gpm" => Some(ServeModel::Gpm),
            "eadr" => Some(ServeModel::Eadr),
            _ => None,
        }
    }

    /// The `(kernel model, system design, eadr)` triple this
    /// configuration resolves to.
    #[must_use]
    pub fn resolve(self) -> (ModelKind, SystemDesign, bool) {
        match self {
            ServeModel::Sbrp => (ModelKind::Sbrp, SystemDesign::PmNear, false),
            ServeModel::Epoch => (ModelKind::Epoch, SystemDesign::PmNear, false),
            ServeModel::Gpm => (ModelKind::Gpm, SystemDesign::PmFar, false),
            ServeModel::Eadr => (ModelKind::Epoch, SystemDesign::PmFar, true),
        }
    }
}

/// Everything that determines one serving run. All rate-like knobs are
/// fixed-point integers (×1000) so specs hash and cache exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSpec {
    /// Persistency configuration under test.
    pub model: ServeModel,
    /// Arrival-process shape.
    pub arrival: ArrivalKind,
    /// Offered rate in milli-requests per kilocycle (`2000` = 2
    /// requests per 1000 cycles).
    pub rate_milli: u64,
    /// Zipf skew θ ×1000.
    pub zipf_milli: u64,
    /// Requests in the trace.
    pub requests: u64,
    /// Key-space size of the store.
    pub scale: u64,
    /// Shard count of the store.
    pub shards: u64,
    /// Max requests per batch launch.
    pub batch: u32,
    /// Max cycles the oldest queued request may wait before the batch
    /// launches anyway (0 = launch as soon as anything is queued).
    pub linger: u64,
    /// Admission bound: arrivals beyond this queue depth are rejected
    /// (backpressure), not enqueued.
    pub queue_bound: u64,
    /// Trace seed.
    pub seed: u64,
    /// Use the 4-SM test GPU instead of the Table 1 machine.
    pub small_gpu: bool,
    /// Inject a crash at this service-clock cycle (durable image is
    /// taken, recovery runs, un-acked requests replay).
    pub crash_at: Option<u64>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            model: ServeModel::Sbrp,
            arrival: ArrivalKind::Poisson,
            rate_milli: 2000,
            zipf_milli: 990,
            requests: 2048,
            scale: 2048,
            shards: 8,
            batch: 64,
            linger: 2000,
            queue_bound: 512,
            seed: 42,
            small_gpu: false,
            crash_at: None,
        }
    }
}

/// Renders a ×1000 fixed-point value ("2000" → "2", "500" → "0.5").
#[must_use]
pub fn milli_str(m: u64) -> String {
    if m.is_multiple_of(1000) {
        format!("{}", m / 1000)
    } else {
        let frac = format!("{:03}", m % 1000);
        format!("{}.{}", m / 1000, frac.trim_end_matches('0'))
    }
}

impl ServeSpec {
    /// The simulator configuration this spec resolves to.
    #[must_use]
    pub fn config(&self) -> GpuConfig {
        let (model, system, eadr) = self.model.resolve();
        let mut cfg = if self.small_gpu {
            GpuConfig::small(model, system)
        } else {
            GpuConfig::table1(model, system)
        };
        cfg.eadr = eadr;
        cfg
    }

    /// `serve <model>/<arrival> rate=<r>` — the cell name in progress
    /// lines and failure tables.
    #[must_use]
    pub fn cell_name(&self) -> String {
        format!(
            "serve {}/{} rate={}",
            self.model.label(),
            self.arrival.label(),
            milli_str(self.rate_milli)
        )
    }

    fn trace_params(&self, keys: u64) -> TraceParams {
        TraceParams {
            arrival: self.arrival,
            rate_milli: self.rate_milli,
            zipf_milli: self.zipf_milli,
            requests: self.requests,
            keys,
            seed: self.seed,
        }
    }
}

/// Number of log₂ latency buckets in a histogram.
pub const HIST_BUCKETS: usize = 64;

/// Latency distribution of one serving run: exact nearest-rank
/// percentiles (computed from the full sorted latency list, so they are
/// bit-exact and deterministic) plus log₂ buckets for the JSON
/// artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Completed requests measured.
    pub count: u64,
    /// Sum of latencies (for the mean).
    pub sum: u64,
    /// Fastest request.
    pub min: u64,
    /// Slowest request.
    pub max: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// `buckets[i]` counts latencies with `floor(log2(l)) + 1 == i`
    /// (bucket 0 holds zero-cycle latencies, which cannot occur).
    pub buckets: Vec<u64>,
}

impl LatencyHistogram {
    /// Builds the histogram from the (unsorted) per-request latencies.
    #[must_use]
    pub fn from_latencies(mut lats: Vec<u64>) -> Self {
        lats.sort_unstable();
        let mut buckets = vec![0u64; HIST_BUCKETS];
        for &l in &lats {
            let idx = if l == 0 {
                0
            } else {
                (64 - l.leading_zeros() as usize).min(HIST_BUCKETS - 1)
            };
            buckets[idx] += 1;
        }
        let rank = |num: u64, den: u64| nearest_rank(&lats, num, den);
        LatencyHistogram {
            count: lats.len() as u64,
            sum: lats.iter().sum(),
            min: lats.first().copied().unwrap_or(0),
            max: lats.last().copied().unwrap_or(0),
            p50: rank(50, 100),
            p90: rank(90, 100),
            p95: rank(95, 100),
            p99: rank(99, 100),
            p999: rank(999, 1000),
            buckets,
        }
    }

    /// Mean latency in cycles (0 for an empty histogram).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Nearest-rank percentile of a sorted slice: the smallest element with
/// at least `num/den` of the distribution at or below it. Exact integer
/// arithmetic — no interpolation, no floating point.
fn nearest_rank(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let idx = (n * num).div_ceil(den).max(1) - 1;
    sorted[idx.min(n - 1) as usize]
}

/// Aggregate result of one serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOutput {
    /// Requests served to durable ack.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests re-served after the crash (0 without one).
    pub replayed: u64,
    /// Batch kernels launched (excluding the recovery kernel).
    pub batches: u64,
    /// Service-clock cycle of the last event (the run's makespan).
    pub duration: u64,
    /// Cycle the crash was injected at, if one was.
    pub crash_cycle: Option<u64>,
    /// Cycles the recovery pass took (0 without a crash).
    pub recovery_cycles: u64,
    /// Whether every check passed: get answers match the sequential
    /// reference, the final store equals the reference, the recovered
    /// image equalled the acked-prefix state.
    pub verified: bool,
    /// First verification failure, for failure tables.
    pub verify_error: Option<String>,
    /// Latency distribution of the completed requests.
    pub hist: LatencyHistogram,
}

impl ServeOutput {
    /// Completed-request throughput in requests per kilocycle.
    #[must_use]
    pub fn throughput_kilo(&self) -> f64 {
        if self.duration == 0 {
            0.0
        } else {
            self.completed as f64 * 1000.0 / self.duration as f64
        }
    }
}

/// Per-request disposition of a serving run, for tests and debugging
/// (not cached).
#[derive(Clone, Debug)]
pub struct ServeDetail {
    /// The generated trace the run served.
    pub trace: Vec<Request>,
    /// Ack cycle per request (`None` = rejected, or never acked).
    pub acked: Vec<Option<u64>>,
    /// Whether admission control rejected the request.
    pub rejected: Vec<bool>,
    /// Request indices re-served after the crash, in replay order.
    pub replay_set: Vec<usize>,
    /// Whether the post-recovery store equalled the acked-prefix
    /// reference (trivially true without a crash).
    pub rollback_ok: bool,
}

/// Runs one serving experiment.
///
/// ```
/// use sbrp_harness::serve::{run_service, ServeSpec};
///
/// let out = run_service(&ServeSpec {
///     requests: 32,
///     scale: 64,
///     batch: 8,
///     rate_milli: 20_000, // 20 requests per kilocycle
///     small_gpu: true,
///     ..ServeSpec::default()
/// })
/// .unwrap();
/// assert!(out.verified);
/// assert_eq!(out.completed + out.rejected, 32);
/// assert!(out.hist.p50 > 0 && out.hist.p99 >= out.hist.p50);
/// ```
///
/// # Errors
/// [`HarnessError::Sim`] if any batch or recovery kernel deadlocks or
/// times out.
pub fn run_service(spec: &ServeSpec) -> Result<ServeOutput, HarnessError> {
    run_service_detailed(spec).map(|(out, _)| out)
}

/// Like [`run_service`], but also returns the per-request
/// [`ServeDetail`].
///
/// # Errors
/// As [`run_service`].
#[allow(clippy::too_many_lines)] // the engine loop reads best as one piece
pub fn run_service_detailed(spec: &ServeSpec) -> Result<(ServeOutput, ServeDetail), HarnessError> {
    assert!(spec.batch > 0, "batch size must be positive");
    assert!(spec.requests > 0, "need at least one request");
    let cfg = spec.config();
    let (model, _, _) = spec.model.resolve();
    let store = ServiceStore::new(spec.scale, spec.shards, spec.batch);
    let trace = generate_trace(&spec.trace_params(store.keys()));
    let batch_l = store.batch_kernel(model);
    let rec_l = store.recovery_kernel(model);
    let cell = spec.cell_name();
    let sim_err = |source| HarnessError::Sim {
        cell: cell.clone(),
        source,
    };

    let n = trace.len();
    let mut gpu = Gpu::new(&cfg);
    store.init(&mut gpu);
    // The sequential reference: what every key holds after the acked
    // prefix. Updated only at ack time, so between batches it equals
    // the durable store exactly — which is what makes host-side get
    // answers and the crash rollback check possible.
    let mut reference: Vec<u64> = (0..store.keys()).map(initial_value).collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut acked: Vec<Option<u64>> = vec![None; n];
    let mut rejected: Vec<bool> = vec![false; n];
    let mut next_arrival = 0usize;
    let mut crash_pending = spec.crash_at;
    let mut crash_cycle = None;
    let mut recovery_cycles = 0u64;
    let mut replay_set: Vec<usize> = Vec::new();
    let mut rollback_ok = true;
    let mut batches = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(n);
    let mut verify_error: Option<String> = None;
    let fail = |slot: &mut Option<String>, msg: String| {
        if slot.is_none() {
            *slot = Some(msg);
        }
    };

    // Host-side admission runs in real time: every arrival at or before
    // `now` is enqueued (or rejected at the bound) in arrival order.
    let admit = |now: u64,
                 queue: &mut VecDeque<usize>,
                 next_arrival: &mut usize,
                 rejected: &mut Vec<bool>| {
        while *next_arrival < n && trace[*next_arrival].arrival <= now {
            if queue.len() as u64 >= spec.queue_bound {
                rejected[*next_arrival] = true;
            } else {
                queue.push_back(*next_arrival);
            }
            *next_arrival += 1;
        }
    };

    loop {
        let now = gpu.cycle();
        admit(now, &mut queue, &mut next_arrival, &mut rejected);

        // A crash due now (reached during an idle gap) hits an idle
        // GPU: nothing is in flight, the image equals the acked state,
        // and replay is just the queue.
        if crash_pending.is_some_and(|c| c <= now) {
            crash_pending = None;
            crash_cycle = Some(now);
            let members: Vec<usize> = Vec::new();
            do_recovery(
                &cfg,
                &store,
                &rec_l,
                &mut gpu,
                &reference,
                &sim_err,
                &mut recovery_cycles,
                &mut rollback_ok,
            )?;
            if !rollback_ok {
                fail(
                    &mut verify_error,
                    "recovered image differs from the acked-prefix state".into(),
                );
            }
            replay_set = members;
            replay_set.extend(queue.iter().copied());
            continue;
        }

        if queue.is_empty() {
            let Some(next) = trace.get(next_arrival) else {
                break;
            };
            let target = crash_pending.map_or(next.arrival, |c| next.arrival.min(c));
            gpu.skip_idle(target - now);
            continue;
        }

        // Batch policy: launch when full, or when the oldest queued
        // request has lingered long enough; otherwise sleep until the
        // next arrival or the linger deadline, whichever is sooner.
        let deadline = trace[queue[0]].arrival + spec.linger;
        if (queue.len() as u64) < u64::from(spec.batch) && now < deadline {
            let target = match trace.get(next_arrival) {
                Some(r) if r.arrival < deadline => r.arrival,
                _ => deadline,
            };
            let target = crash_pending.map_or(target, |c| target.min(c));
            gpu.skip_idle(target - now);
            continue;
        }

        // Form the batch: pop up to `batch` requests and coalesce them
        // into one lane per key. Multiple writes to a key collapse to
        // the last one; gets are answered host-side from the reference
        // (+ in-batch overlay), and a key whose lane stays a pure get
        // is additionally read kernel-side and checked.
        let mut members = Vec::new();
        while members.len() < spec.batch as usize {
            match queue.pop_front() {
                Some(i) => members.push(i),
                None => break,
            }
        }
        let mut lanes: Vec<LaneOp> = Vec::new();
        let mut lane_of: HashMap<u64, usize> = HashMap::new();
        let mut overlay: HashMap<u64, u64> = HashMap::new();
        for &i in &members {
            let r = &trace[i];
            match r.op {
                ReqOp::Get => {
                    if let std::collections::hash_map::Entry::Vacant(e) = lane_of.entry(r.key) {
                        e.insert(lanes.len());
                        lanes.push(LaneOp {
                            op: OP_GET,
                            key: r.key,
                            value: 0,
                        });
                    }
                }
                ReqOp::Put | ReqOp::Delete => {
                    overlay.insert(r.key, r.value);
                    if let Some(&l) = lane_of.get(&r.key) {
                        lanes[l].op = OP_WRITE;
                        lanes[l].value = r.value;
                    } else {
                        lane_of.insert(r.key, lanes.len());
                        lanes.push(LaneOp {
                            op: OP_WRITE,
                            key: r.key,
                            value: r.value,
                        });
                    }
                }
            }
        }

        store.encode_batch(&mut gpu, &lanes);
        gpu.launch(&batch_l.kernel, batch_l.launch);
        let report = match crash_pending {
            Some(c) => gpu.run_until(c).map_err(&sim_err)?,
            None => gpu.run(CYCLE_LIMIT).map_err(&sim_err)?,
        };

        if report.outcome == RunOutcome::Crashed {
            // Crash mid-batch: the batch never acked. Admission still
            // ran in host real time up to the crash instant.
            crash_pending = None;
            crash_cycle = Some(report.cycles);
            admit(report.cycles, &mut queue, &mut next_arrival, &mut rejected);
            do_recovery(
                &cfg,
                &store,
                &rec_l,
                &mut gpu,
                &reference,
                &sim_err,
                &mut recovery_cycles,
                &mut rollback_ok,
            )?;
            if !rollback_ok {
                fail(
                    &mut verify_error,
                    "recovered image differs from the acked-prefix state".into(),
                );
            }
            // Replay exactly the un-acked requests, in arrival order:
            // the in-flight batch, then everything queued at the crash.
            replay_set = members;
            replay_set.extend(queue.iter().copied());
            queue.clear();
            queue.extend(replay_set.iter().copied());
            continue;
        }

        // Durable ack: the kernel (including its final drain)
        // completed, so every lane's writes are durable.
        let done = gpu.cycle();
        batches += 1;
        for (l, lane) in lanes.iter().enumerate() {
            if lane.op == OP_GET {
                let got = store.read_result(&gpu, l as u64);
                let want = reference[lane.key as usize];
                if got != want {
                    fail(
                        &mut verify_error,
                        format!("get key {} returned {got}, expected {want}", lane.key),
                    );
                }
            }
        }
        for lane in &lanes {
            if lane.op == OP_WRITE {
                reference[lane.key as usize] = lane.value;
            }
        }
        // Host contract: armed marks of an acked batch must not
        // survive into the next one (see the service module docs).
        store.clear_marks(&mut gpu);
        for &i in &members {
            acked[i] = Some(done);
            latencies.push(done - trace[i].arrival);
        }
    }

    // Final verification: the store equals the sequential reference
    // over the acked requests, every admitted request acked, and every
    // get answer (host overlay semantics) is consistent.
    for key in 0..store.keys() {
        let got = store.read_value(&gpu, key);
        if got != reference[key as usize] {
            fail(
                &mut verify_error,
                format!(
                    "final store key {key} holds {got}, reference {}",
                    reference[key as usize]
                ),
            );
            break;
        }
    }
    for i in 0..n {
        if !rejected[i] && acked[i].is_none() {
            fail(&mut verify_error, format!("request {i} was never acked"));
            break;
        }
        if rejected[i] && acked[i].is_some() {
            fail(&mut verify_error, format!("rejected request {i} was acked"));
            break;
        }
    }

    let out = ServeOutput {
        completed: latencies.len() as u64,
        rejected: rejected.iter().filter(|&&r| r).count() as u64,
        replayed: replay_set.len() as u64,
        batches,
        duration: gpu.cycle(),
        crash_cycle,
        recovery_cycles,
        verified: verify_error.is_none(),
        verify_error: verify_error.clone(),
        hist: LatencyHistogram::from_latencies(latencies),
    };
    let detail = ServeDetail {
        trace,
        acked,
        rejected,
        replay_set,
        rollback_ok,
    };
    Ok((out, detail))
}

/// Crash recovery: rebuild a GPU from the durable image (clock
/// fast-forwarded so the service timeline continues), run the recovery
/// kernel, clear the marks, and check the rolled-back store equals the
/// acked-prefix reference.
#[allow(clippy::too_many_arguments)]
fn do_recovery(
    cfg: &GpuConfig,
    store: &ServiceStore,
    rec_l: &sbrp_workloads::Launchable,
    gpu: &mut Gpu,
    reference: &[u64],
    sim_err: &impl Fn(sbrp_gpu_sim::SimError) -> HarnessError,
    recovery_cycles: &mut u64,
    rollback_ok: &mut bool,
) -> Result<(), HarnessError> {
    let crash_cycle = gpu.cycle();
    let image = gpu.durable_image();
    let mut rgpu = Gpu::from_image(cfg, &image);
    rgpu.skip_idle(crash_cycle);
    store.init_volatile(&mut rgpu);
    rgpu.launch(&rec_l.kernel, rec_l.launch);
    rgpu.run(CYCLE_LIMIT).map_err(sim_err)?;
    *recovery_cycles = rgpu.cycle() - crash_cycle;
    store.clear_marks(&mut rgpu);
    for (key, &want) in reference.iter().enumerate() {
        if store.read_value(&rgpu, key as u64) != want {
            *rollback_ok = false;
            break;
        }
    }
    *gpu = rgpu;
    Ok(())
}

// ---------------------------------------------------------------------
// Sweep integration
// ---------------------------------------------------------------------

/// One serving run as a sweep cell — rate×model sweeps ride the
/// standard engine (parallelism, cache, resume, fault tolerance).
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// The run to execute.
    pub spec: ServeSpec,
}

impl SweepCell for ServeCell {
    type Out = Result<ServeOutput, HarnessError>;

    fn name(&self) -> String {
        self.spec.cell_name()
    }

    fn fingerprint(&self) -> u64 {
        let s = &self.spec;
        let mut fp = Fingerprint::new();
        fp.write_str("serve");
        fp.write_u64(CACHE_SCHEMA);
        fp.write_str(&format!("{:?}", s.config()));
        fp.write_str(s.arrival.label());
        fp.write_u64(s.rate_milli);
        fp.write_u64(s.zipf_milli);
        fp.write_u64(s.requests);
        fp.write_u64(s.scale);
        fp.write_u64(s.shards);
        fp.write_u64(u64::from(s.batch));
        fp.write_u64(s.linger);
        fp.write_u64(s.queue_bound);
        fp.write_u64(s.seed);
        fp.write_u64(s.crash_at.map_or(u64::MAX, |c| c));
        fp.write_u64(u64::from(s.crash_at.is_some()));
        let (model, _, _) = s.model.resolve();
        let store = ServiceStore::new(s.scale, s.shards, s.batch);
        for l in [store.batch_kernel(model), store.recovery_kernel(model)] {
            fp.write_str(l.kernel.name());
            fp.write_str(&l.kernel.disassemble());
            for &p in l.kernel.params().iter() {
                fp.write_u64(p);
            }
            fp.write_u64(u64::from(l.launch.blocks));
            fp.write_u64(u64::from(l.launch.threads_per_block));
        }
        fp.finish()
    }

    fn run(&self) -> Self::Out {
        run_service(&self.spec)
    }

    fn failure(&self, out: &Self::Out) -> Option<String> {
        match out {
            Err(e) => Some(e.to_string()),
            Ok(o) if !o.verified => Some(
                o.verify_error
                    .clone()
                    .unwrap_or_else(|| "serving verification failed".into()),
            ),
            Ok(_) => None,
        }
    }

    fn to_cache(&self, out: &Self::Out) -> Option<String> {
        let o = out.as_ref().ok()?;
        if !o.verified {
            return None;
        }
        let h = &o.hist;
        let obj = Json::Obj(vec![
            ("schema".into(), Json::U64(CACHE_SCHEMA)),
            ("kind".into(), Json::Str("serve".into())),
            ("completed".into(), Json::U64(o.completed)),
            ("rejected".into(), Json::U64(o.rejected)),
            ("replayed".into(), Json::U64(o.replayed)),
            ("batches".into(), Json::U64(o.batches)),
            ("duration".into(), Json::U64(o.duration)),
            (
                "crash_cycle".into(),
                o.crash_cycle.map_or(Json::Null, Json::U64),
            ),
            ("recovery_cycles".into(), Json::U64(o.recovery_cycles)),
            ("count".into(), Json::U64(h.count)),
            ("sum".into(), Json::U64(h.sum)),
            ("min".into(), Json::U64(h.min)),
            ("max".into(), Json::U64(h.max)),
            ("p50".into(), Json::U64(h.p50)),
            ("p90".into(), Json::U64(h.p90)),
            ("p95".into(), Json::U64(h.p95)),
            ("p99".into(), Json::U64(h.p99)),
            ("p999".into(), Json::U64(h.p999)),
            (
                "buckets".into(),
                Json::Arr(h.buckets.iter().map(|&b| Json::U64(b)).collect()),
            ),
        ]);
        Some(obj.render())
    }

    fn parse_cached(&self, cached: &str) -> Option<Self::Out> {
        let v = Json::parse(cached).ok()?;
        if v.get("schema")?.as_u64()? != CACHE_SCHEMA || v.get("kind")?.as_str()? != "serve" {
            return None;
        }
        let crash_cycle = match v.get("crash_cycle")? {
            Json::Null => None,
            other => Some(other.as_u64()?),
        };
        let buckets = v
            .get("buckets")?
            .as_arr()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<u64>>>()?;
        if buckets.len() != HIST_BUCKETS {
            return None;
        }
        Some(Ok(ServeOutput {
            completed: v.get("completed")?.as_u64()?,
            rejected: v.get("rejected")?.as_u64()?,
            replayed: v.get("replayed")?.as_u64()?,
            batches: v.get("batches")?.as_u64()?,
            duration: v.get("duration")?.as_u64()?,
            crash_cycle,
            recovery_cycles: v.get("recovery_cycles")?.as_u64()?,
            verified: true,
            verify_error: None,
            hist: LatencyHistogram {
                count: v.get("count")?.as_u64()?,
                sum: v.get("sum")?.as_u64()?,
                min: v.get("min")?.as_u64()?,
                max: v.get("max")?.as_u64()?,
                p50: v.get("p50")?.as_u64()?,
                p90: v.get("p90")?.as_u64()?,
                p95: v.get("p95")?.as_u64()?,
                p99: v.get("p99")?.as_u64()?,
                p999: v.get("p999")?.as_u64()?,
                buckets,
            },
        }))
    }
}

/// Sweeps serving cells, flattening engine-level failures into
/// [`HarnessError`] rows like the other cell sweeps.
#[must_use]
pub fn run_serve_cells(
    opts: &SweepOpts,
    cells: &[ServeCell],
) -> (Vec<Result<ServeOutput, HarnessError>>, SweepSummary) {
    let (outcomes, summary) = sweep(opts, cells);
    let results = cells
        .iter()
        .zip(outcomes)
        .map(|(cell, outcome)| match outcome {
            CellOutcome::Ok(r) | CellOutcome::Err { out: r, .. } => r,
            CellOutcome::Panicked { message, .. } => Err(HarnessError::Panicked {
                cell: cell.name(),
                message,
            }),
            CellOutcome::DeadlineExceeded { limit_millis, .. } => Err(HarnessError::Deadline {
                cell: cell.name(),
                limit_millis,
            }),
        })
        .collect();
    (results, summary)
}

/// Like [`run_serve_cells`] but for binaries: on any failing cell,
/// prints the aggregated failure table and exits nonzero.
#[must_use]
pub fn run_serve_cells_expect(
    opts: &SweepOpts,
    cells: &[ServeCell],
) -> (Vec<ServeOutput>, SweepSummary) {
    let (results, summary) = run_serve_cells(opts, cells);
    let mut oks = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (cell, result) in cells.iter().zip(results) {
        match result {
            Ok(out) => oks.push(out),
            Err(e) => failures.push((cell.name(), e.detail())),
        }
    }
    if failures.is_empty() {
        (oks, summary)
    } else {
        crate::sweep::SweepFailures { failures }.exit_with_report()
    }
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// The throughput–latency table of a serving sweep: one row per cell,
/// offered rate next to achieved throughput, mean and tail latencies in
/// simulated cycles.
#[must_use]
pub fn serve_table(cells: &[ServeCell], outs: &[ServeOutput]) -> Table {
    let mut table = Table::new(
        "gpKVS serving: throughput vs tail latency (cycles)",
        &[
            "model", "arrival", "rate", "req", "done", "rej", "batches", "thr", "mean", "p50",
            "p95", "p99", "p999",
        ],
    );
    for (cell, out) in cells.iter().zip(outs) {
        let s = &cell.spec;
        table.row(vec![
            s.model.label().to_string(),
            s.arrival.label().to_string(),
            milli_str(s.rate_milli),
            s.requests.to_string(),
            out.completed.to_string(),
            out.rejected.to_string(),
            out.batches.to_string(),
            format!("{:.3}", out.throughput_kilo()),
            format!("{:.1}", out.hist.mean()),
            out.hist.p50.to_string(),
            out.hist.p95.to_string(),
            out.hist.p99.to_string(),
            out.hist.p999.to_string(),
        ]);
    }
    table
}

/// The latency-histogram JSON artifact: full log₂ buckets plus the
/// exact percentiles for every cell of the sweep.
#[must_use]
pub fn hist_json(cells: &[ServeCell], outs: &[ServeOutput]) -> String {
    let cells_json: Vec<Json> = cells
        .iter()
        .zip(outs)
        .map(|(cell, out)| {
            let s = &cell.spec;
            let h = &out.hist;
            Json::Obj(vec![
                ("cell".into(), Json::Str(cell.name())),
                ("model".into(), Json::Str(s.model.label().into())),
                ("arrival".into(), Json::Str(s.arrival.label().into())),
                ("rate_milli".into(), Json::U64(s.rate_milli)),
                ("zipf_milli".into(), Json::U64(s.zipf_milli)),
                ("requests".into(), Json::U64(s.requests)),
                ("batch".into(), Json::U64(u64::from(s.batch))),
                ("linger".into(), Json::U64(s.linger)),
                ("queue_bound".into(), Json::U64(s.queue_bound)),
                ("completed".into(), Json::U64(out.completed)),
                ("rejected".into(), Json::U64(out.rejected)),
                ("batches".into(), Json::U64(out.batches)),
                ("duration".into(), Json::U64(out.duration)),
                ("count".into(), Json::U64(h.count)),
                ("sum".into(), Json::U64(h.sum)),
                ("min".into(), Json::U64(h.min)),
                ("max".into(), Json::U64(h.max)),
                ("p50".into(), Json::U64(h.p50)),
                ("p90".into(), Json::U64(h.p90)),
                ("p95".into(), Json::U64(h.p95)),
                ("p99".into(), Json::U64(h.p99)),
                ("p999".into(), Json::U64(h.p999)),
                (
                    "buckets".into(),
                    Json::Arr(h.buckets.iter().map(|&b| Json::U64(b)).collect()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::U64(CACHE_SCHEMA)),
        ("kind".into(), Json::Str("serve_hist".into())),
        ("cells".into(), Json::Arr(cells_json)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(model: ServeModel) -> ServeSpec {
        ServeSpec {
            model,
            requests: 64,
            scale: 128,
            batch: 16,
            rate_milli: 10_000,
            linger: 500,
            queue_bound: 64,
            small_gpu: true,
            ..ServeSpec::default()
        }
    }

    #[test]
    fn nearest_rank_is_exact() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 50, 100), 50);
        assert_eq!(nearest_rank(&v, 99, 100), 99);
        assert_eq!(nearest_rank(&v, 999, 1000), 100);
        assert_eq!(nearest_rank(&v, 1, 100), 1);
        assert_eq!(nearest_rank(&[7], 50, 100), 7);
        assert_eq!(nearest_rank(&[], 50, 100), 0);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let h = LatencyHistogram::from_latencies((1..=1000).rev().collect());
        assert_eq!(h.count, 1000);
        assert_eq!((h.min, h.max), (1, 1000));
        assert!(h.p50 <= h.p90 && h.p90 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.p999);
        assert_eq!(h.p999, 999);
        assert_eq!(h.buckets.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn serving_runs_and_verifies_on_every_model() {
        for model in ServeModel::ALL {
            let out = run_service(&tiny(model)).expect("run completes");
            assert!(out.verified, "{model:?}: {:?}", out.verify_error);
            assert_eq!(out.completed + out.rejected, 64, "{model:?}");
            assert!(out.batches > 0);
            assert!(out.hist.p50 > 0);
        }
    }

    #[test]
    fn serving_is_deterministic() {
        let a = run_service(&tiny(ServeModel::Sbrp)).unwrap();
        let b = run_service(&tiny(ServeModel::Sbrp)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cache_roundtrip_preserves_output() {
        let cell = ServeCell {
            spec: tiny(ServeModel::Epoch),
        };
        let out = cell.run();
        let cached = cell.to_cache(&out).expect("verified output caches");
        let parsed = cell.parse_cached(&cached).expect("parses back");
        assert_eq!(out.unwrap(), parsed.unwrap());
    }

    #[test]
    fn fingerprints_distinguish_specs() {
        let base = ServeCell {
            spec: tiny(ServeModel::Sbrp),
        };
        let fp = base.fingerprint();
        for spec in [
            ServeSpec {
                seed: 7,
                ..base.spec.clone()
            },
            ServeSpec {
                rate_milli: 9999,
                ..base.spec.clone()
            },
            ServeSpec {
                model: ServeModel::Gpm,
                ..base.spec.clone()
            },
            ServeSpec {
                arrival: ArrivalKind::Bursty,
                ..base.spec.clone()
            },
            ServeSpec {
                batch: 8,
                ..base.spec.clone()
            },
            ServeSpec {
                linger: 501,
                ..base.spec.clone()
            },
            ServeSpec {
                crash_at: Some(5000),
                ..base.spec.clone()
            },
        ] {
            assert_ne!(fp, ServeCell { spec }.fingerprint());
        }
    }
}
