//! # sbrp-harness
//!
//! Experiment orchestration for the paper's evaluation (§7): run any
//! (workload × model × system design) combination, compute speedups
//! against the paper's baselines, inject crashes and time recovery, and
//! render figure tables. The per-figure binaries in `sbrp-bench` are
//! thin wrappers over this crate.

#![deny(missing_docs)]

pub mod campaign;
pub mod json;
pub mod perf;
pub mod report;
pub mod serve;
pub mod sweep;

use sbrp_core::ModelKind;
use sbrp_gpu_sim::config::{GpuConfig, SystemDesign};
use sbrp_gpu_sim::stats::SimStats;
use sbrp_gpu_sim::{Gpu, RunOutcome, SimError, Timeline};
use sbrp_workloads::{BuildOpts, WorkloadKind};

/// Cycle budget for any single simulated kernel.
pub const CYCLE_LIMIT: u64 = 20_000_000_000;

/// Typed failure of a harness run. Carries enough context to identify
/// the failing cell; campaign sweeps record these and continue instead
/// of aborting the whole matrix.
#[derive(Clone, Debug)]
pub enum HarnessError {
    /// The simulator failed (deadlock, timeout, protocol violation).
    Sim {
        /// `workload model/system` of the failing cell.
        cell: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A run ended in an outcome the measurement cannot use (e.g. a
    /// crash point that fell outside the run).
    Outcome {
        /// `workload model/system` of the failing cell.
        cell: String,
        /// What went wrong.
        detail: String,
    },
    /// The cell's code panicked; the sweep engine contained it
    /// (`catch_unwind`) and turned it into this typed error.
    Panicked {
        /// `workload model/system` of the failing cell.
        cell: String,
        /// The panic message.
        message: String,
    },
    /// The cell overran its configured wall-clock deadline
    /// (`--cell-timeout`) and was abandoned by the sweep watchdog.
    Deadline {
        /// `workload model/system` of the failing cell.
        cell: String,
        /// The configured budget, in milliseconds.
        limit_millis: u64,
    },
}

impl HarnessError {
    /// The `workload model/system` name of the failing cell.
    #[must_use]
    pub fn cell(&self) -> &str {
        match self {
            HarnessError::Sim { cell, .. }
            | HarnessError::Outcome { cell, .. }
            | HarnessError::Panicked { cell, .. }
            | HarnessError::Deadline { cell, .. } => cell,
        }
    }

    /// The failure description without the cell-name prefix — what an
    /// error row or failure table should print next to the cell.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            HarnessError::Sim { source, .. } => source.to_string(),
            HarnessError::Outcome { detail, .. } => detail.clone(),
            HarnessError::Panicked { message, .. } => format!("cell panicked: {message}"),
            HarnessError::Deadline { limit_millis, .. } => {
                format!("cell exceeded the {limit_millis} ms deadline")
            }
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.cell(), self.detail())
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Sim { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Everything needed to run one experiment cell.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Which application.
    pub workload: WorkloadKind,
    /// Which persistency model.
    pub model: ModelKind,
    /// PM-far or PM-near.
    pub system: SystemDesign,
    /// Workload size (elements / pairs / pixels).
    pub scale: u64,
    /// Input randomization seed.
    pub seed: u64,
    /// Demote block scopes to device scope (Fig. 7).
    pub demote_scopes: bool,
    /// Enable eADR (Fig. 9; PM-far only).
    pub eadr: bool,
    /// Persist-buffer coverage as a fraction of L1 lines (Fig. 10a);
    /// `None` keeps the default 50 %.
    pub pb_coverage: Option<f64>,
    /// NVM bandwidth multiplier (Fig. 10b).
    pub nvm_bw_scale: f64,
    /// Drain window size (Fig. 10c); `None` keeps the default 6.
    pub window: Option<u32>,
    /// Override the full drain policy (ablation of §6.2's choices);
    /// takes precedence over `window`.
    pub policy: Option<sbrp_core::pbuffer::DrainPolicy>,
    /// Disable the out-of-order drain refinement (ablation).
    pub no_ooo_drain: bool,
    /// Disable the early-flush-on-stall refinement (ablation).
    pub no_early_flush: bool,
    /// Disable per-warp oFence tracking (ablation: the paper's 1-bit
    /// FSM semantics).
    pub no_per_warp_fsm: bool,
    /// Use the scaled-down 4-SM GPU (for fast tests) instead of the
    /// default Table 1 machine with 30 SMs.
    pub small_gpu: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            workload: WorkloadKind::Reduction,
            model: ModelKind::Sbrp,
            system: SystemDesign::PmNear,
            scale: 4096,
            seed: 42,
            demote_scopes: false,
            eadr: false,
            pb_coverage: None,
            nvm_bw_scale: 1.0,
            window: None,
            policy: None,
            no_ooo_drain: false,
            no_early_flush: false,
            no_per_warp_fsm: false,
            small_gpu: false,
        }
    }
}

impl RunSpec {
    /// The simulator configuration this spec describes.
    #[must_use]
    pub fn config(&self) -> GpuConfig {
        let mut cfg = if self.small_gpu {
            GpuConfig::small(self.model, self.system)
        } else {
            GpuConfig::table1(self.model, self.system)
        };
        cfg.eadr = self.eadr;
        cfg.nvm_bw_scale = self.nvm_bw_scale;
        if let Some(f) = self.pb_coverage {
            cfg.set_pb_coverage(f);
        }
        if let Some(w) = self.window {
            cfg.pb.policy = sbrp_core::pbuffer::DrainPolicy::Window(w);
        }
        if let Some(p) = self.policy {
            cfg.pb.policy = p;
        }
        cfg.pb.ooo_drain = !self.no_ooo_drain;
        cfg.pb.early_flush = !self.no_early_flush;
        cfg.pb.per_warp_fsm = !self.no_per_warp_fsm;
        cfg
    }

    fn build_opts(&self) -> BuildOpts {
        BuildOpts {
            model: self.model,
            demote_scopes: self.demote_scopes,
        }
    }

    /// `workload model/system` — how errors and reports name this cell.
    #[must_use]
    pub fn cell_name(&self) -> String {
        format!("{} {:?}/{}", self.workload, self.model, self.system)
    }
}

/// Result of one experiment cell.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Crash-free kernel runtime in cycles (including the final drain).
    pub cycles: u64,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// Whether the workload's verifier accepted the final state.
    pub verified: bool,
}

/// Runs one cell to completion.
///
/// ```
/// use sbrp_harness::{run_workload, RunSpec};
/// use sbrp_workloads::WorkloadKind;
///
/// let out = run_workload(&RunSpec {
///     workload: WorkloadKind::Gpkvs,
///     scale: 64,
///     small_gpu: true,
///     ..RunSpec::default()
/// })
/// .unwrap();
/// assert!(out.verified && out.cycles > 0);
/// ```
///
/// # Errors
/// [`HarnessError::Sim`] if the simulation deadlocks, times out at
/// [`CYCLE_LIMIT`], or hits a completion-protocol violation. Callers
/// that sweep a matrix record the error and continue; one-shot callers
/// typically `expect` it.
pub fn run_workload(spec: &RunSpec) -> Result<RunOutput, HarnessError> {
    run_workload_traced(spec, false).map(|(out, _)| out)
}

/// Like [`run_workload`], but with `timeline: true` also records a
/// [`Timeline`] of warp states and memory events for Chrome-trace
/// export (the `--trace-out` flag of the bench binaries).
///
/// # Errors
/// As [`run_workload`].
pub fn run_workload_traced(
    spec: &RunSpec,
    timeline: bool,
) -> Result<(RunOutput, Option<Timeline>), HarnessError> {
    let mut cfg = spec.config();
    cfg.timeline = timeline;
    let w = spec.workload.instantiate(spec.scale, spec.seed);
    let l = w.kernel(spec.build_opts());
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let report = gpu.run(CYCLE_LIMIT).map_err(|source| HarnessError::Sim {
        cell: spec.cell_name(),
        source,
    })?;
    let out = RunOutput {
        cycles: report.cycles,
        stats: gpu.stats(),
        verified: w.verify_complete(&gpu).is_ok(),
    };
    Ok((out, gpu.take_timeline()))
}

/// Result of a crash + recovery measurement (Fig. 11).
#[derive(Clone, Debug)]
pub struct RecoveryOutput {
    /// Cycle the crash was injected at.
    pub crash_cycle: u64,
    /// Cycles the recovery pass took (recovery kernel where the workload
    /// has one, plus the resumed main kernel).
    pub recovery_cycles: u64,
    /// Crash-free runtime, for the recovery/runtime ratio.
    pub crash_free_cycles: u64,
    /// Whether the recovered state verified.
    pub verified: bool,
}

/// Crashes the workload at `fraction` of its crash-free runtime and
/// measures the recovery pass (§7.3, "Recovery time": the paper crashes
/// each application at its worst-case point, e.g. gpKVS just before the
/// transaction completes).
///
/// # Errors
/// [`HarnessError::Sim`] on simulator deadlock/timeout/protocol
/// violation in any of the three runs, [`HarnessError::Outcome`] if the
/// crash point fell outside the run.
pub fn run_recovery(spec: &RunSpec, fraction: f64) -> Result<RecoveryOutput, HarnessError> {
    let sim_err = |source| HarnessError::Sim {
        cell: spec.cell_name(),
        source,
    };
    let cfg = spec.config();
    let opts = spec.build_opts();
    let crash_free = run_workload(spec)?.cycles;
    let crash_cycle = ((crash_free as f64) * fraction) as u64;

    let w = spec.workload.instantiate(spec.scale, spec.seed);
    let l = w.kernel(opts);
    let mut gpu = Gpu::new(&cfg);
    w.init(&mut gpu);
    gpu.launch(&l.kernel, l.launch);
    let report = gpu.run_until(crash_cycle).map_err(sim_err)?;
    if report.outcome != RunOutcome::Crashed {
        return Err(HarnessError::Outcome {
            cell: spec.cell_name(),
            detail: format!(
                "crash point {crash_cycle} fell outside the run ({} cycles)",
                report.cycles
            ),
        });
    }
    let image = gpu.durable_image();

    let mut rgpu = Gpu::from_image(&cfg, &image);
    w.init_volatile(&mut rgpu);
    let start = rgpu.cycle();
    if let Some(r) = w.recovery(opts) {
        rgpu.launch(&r.kernel, r.launch);
        rgpu.run(CYCLE_LIMIT).map_err(sim_err)?;
    }
    let l2 = w.kernel(opts);
    rgpu.launch(&l2.kernel, l2.launch);
    rgpu.run(CYCLE_LIMIT).map_err(sim_err)?;
    Ok(RecoveryOutput {
        crash_cycle,
        recovery_cycles: rgpu.cycle() - start,
        crash_free_cycles: crash_free,
        verified: w.verify_complete(&rgpu).is_ok(),
    })
}

/// The five bars of Figure 6, in paper order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fig6Bar {
    /// GPM on PM-far (its only realizable system).
    Gpm,
    /// Epoch on PM-far — the normalization baseline.
    EpochFar,
    /// SBRP on PM-far.
    SbrpFar,
    /// Epoch on PM-near.
    EpochNear,
    /// SBRP on PM-near.
    SbrpNear,
}

impl Fig6Bar {
    /// All bars in figure order.
    pub const ALL: [Fig6Bar; 5] = [
        Fig6Bar::Gpm,
        Fig6Bar::EpochFar,
        Fig6Bar::SbrpFar,
        Fig6Bar::EpochNear,
        Fig6Bar::SbrpNear,
    ];

    /// The (model, system) pair of the bar.
    #[must_use]
    pub fn model_system(self) -> (ModelKind, SystemDesign) {
        match self {
            Fig6Bar::Gpm => (ModelKind::Gpm, SystemDesign::PmFar),
            Fig6Bar::EpochFar => (ModelKind::Epoch, SystemDesign::PmFar),
            Fig6Bar::SbrpFar => (ModelKind::Sbrp, SystemDesign::PmFar),
            Fig6Bar::EpochNear => (ModelKind::Epoch, SystemDesign::PmNear),
            Fig6Bar::SbrpNear => (ModelKind::Sbrp, SystemDesign::PmNear),
        }
    }

    /// The label used in the paper's legend.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fig6Bar::Gpm => "GPM",
            Fig6Bar::EpochFar => "Epoch-far",
            Fig6Bar::SbrpFar => "SBRP-far",
            Fig6Bar::EpochNear => "Epoch-near",
            Fig6Bar::SbrpNear => "SBRP-near",
        }
    }
}

/// Geometric mean (the paper's summary statistic).
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Default per-workload scales for the figure harness — chosen so the
/// full matrix runs in minutes at laptop scale while keeping every
/// workload's character (the paper's sizes, e.g. 4M-int reduction, need
/// the author's 20-hour budget; see EXPERIMENTS.md).
#[must_use]
pub fn default_scale(kind: WorkloadKind) -> u64 {
    match kind {
        WorkloadKind::Gpkvs => 8 * 1024,
        WorkloadKind::Hashmap => 8 * 1024,
        WorkloadKind::Srad => 16 * 1024,
        WorkloadKind::Reduction => 128 * 1024,
        WorkloadKind::Multiqueue => 16 * 1024,
        WorkloadKind::Scan => 16 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig6_bars_cover_the_legend() {
        let labels: Vec<_> = Fig6Bar::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            vec!["GPM", "Epoch-far", "SBRP-far", "Epoch-near", "SBRP-near"]
        );
    }

    #[test]
    fn spec_config_applies_knobs() {
        let spec = RunSpec {
            eadr: true,
            pb_coverage: Some(0.25),
            nvm_bw_scale: 2.0,
            window: Some(10),
            system: SystemDesign::PmFar,
            ..RunSpec::default()
        };
        let cfg = spec.config();
        assert!(cfg.eadr);
        assert_eq!(cfg.pb.capacity as u32, cfg.l1_lines() / 4);
        assert!((cfg.nvm_bw_scale - 2.0).abs() < 1e-12);
        assert_eq!(cfg.pb.policy, sbrp_core::pbuffer::DrainPolicy::Window(10));
    }

    #[test]
    fn tiny_end_to_end_run() {
        let out = run_workload(&RunSpec {
            workload: WorkloadKind::Gpkvs,
            scale: 128,
            ..RunSpec::default()
        })
        .expect("run completes");
        assert!(out.verified);
        assert!(out.cycles > 0);
        assert_eq!(
            out.stats.stall.bucket_sum(),
            out.stats.stall.total,
            "stall buckets sum to total"
        );
    }
}
