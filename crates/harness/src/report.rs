//! Table rendering for the figure binaries: fixed-width text for the
//! terminal plus CSV, mirroring the artifact's `*_output.txt` files.

use std::fmt::Write as _;

/// A simple column-oriented table of figure results.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Convenience: a row of a label plus f64 values rendered to 3
    /// decimal places.
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let render = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row, &widths));
        }
        out
    }

    /// Renders as CSV (title as a comment line).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_text_and_csv() {
        let mut t = Table::new("Fig X", &["app", "a", "b"]);
        t.row_f64("Red", &[1.0, 2.5]);
        t.row(vec!["MQ".into(), "0.5".into(), "9".into()]);
        let text = t.to_text();
        assert!(text.contains("# Fig X"));
        assert!(text.contains("Red"));
        assert!(text.contains("2.500"));
        let csv = t.to_csv();
        assert!(csv.contains("app,a,b"));
        assert!(csv.contains("MQ,0.5,9"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
