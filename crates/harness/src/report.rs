//! Table rendering for the figure binaries: fixed-width text for the
//! terminal plus CSV and JSON, mirroring the artifact's `*_output.txt`
//! files. Also the shared column scheme for stall-breakdown tables
//! (the `breakdown` binary's Fig. 6-style stacked-bar data).

use sbrp_core::stall::StallCause;
use sbrp_gpu_sim::stats::SimStats;
use std::fmt::Write as _;

/// Column headers for a stall-breakdown table: total stall cycles, then
/// one column per [`StallCause`] in reporting order. Prepend your
/// identifying columns (app/model/system/cycles).
#[must_use]
pub fn stall_headers() -> Vec<&'static str> {
    let mut h = vec!["stall_total"];
    h.extend(StallCause::ALL.iter().map(|c| c.label()));
    h
}

/// Renders a sweep's failing cells as a table (cell name, failure) —
/// the shared format strict sweeps print before exiting nonzero, so
/// every failing cell is named, not just the first.
#[must_use]
pub fn failures_table(failures: &[(String, String)]) -> Table {
    let mut table = Table::new("failed cells", &["cell", "failure"]);
    for (cell, err) in failures {
        table.row(vec![cell.clone(), err.clone()]);
    }
    table
}

/// The cells matching [`stall_headers`] for one run's stats.
#[must_use]
pub fn stall_cells(stats: &SimStats) -> Vec<String> {
    let mut cells = vec![stats.stall.total.to_string()];
    cells.extend(stats.stall.iter().map(|(_, v)| v.to_string()));
    cells
}

/// A simple column-oriented table of figure results.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Convenience: a row of a label plus f64 values rendered to 3
    /// decimal places.
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let render = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row, &widths));
        }
        out
    }

    /// Renders as CSV (title as a comment line).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Renders as JSON: `{"title", "headers", "rows"}` with every cell
    /// a string (deterministic; no float re-formatting).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn quote(s: &str) -> String {
            let mut q = String::with_capacity(s.len() + 2);
            q.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => q.push_str("\\\""),
                    '\\' => q.push_str("\\\\"),
                    '\n' => q.push_str("\\n"),
                    c => q.push(c),
                }
            }
            q.push('"');
            q
        }
        let list = |cells: &[String]| {
            cells
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"title\": {},", quote(&self.title));
        let _ = writeln!(out, "  \"headers\": [{}],", list(&self.headers));
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(out, "    [{}]{comma}", list(row));
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_text_and_csv() {
        let mut t = Table::new("Fig X", &["app", "a", "b"]);
        t.row_f64("Red", &[1.0, 2.5]);
        t.row(vec!["MQ".into(), "0.5".into(), "9".into()]);
        let text = t.to_text();
        assert!(text.contains("# Fig X"));
        assert!(text.contains("Red"));
        assert!(text.contains("2.500"));
        let csv = t.to_csv();
        assert!(csv.contains("app,a,b"));
        assert!(csv.contains("MQ,0.5,9"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn render_json() {
        let mut t = Table::new("Fig \"J\"", &["app", "x"]);
        t.row(vec!["Red".into(), "1".into()]);
        t.row(vec!["MQ".into(), "2".into()]);
        let json = t.to_json();
        assert!(json.contains("\"title\": \"Fig \\\"J\\\"\""));
        assert!(json.contains("\"headers\": [\"app\", \"x\"]"));
        assert!(json.contains("[\"Red\", \"1\"],"));
        assert!(json.contains("[\"MQ\", \"2\"]\n"));
    }

    #[test]
    fn stall_columns_line_up() {
        let headers = stall_headers();
        let stats = SimStats::default();
        let cells = stall_cells(&stats);
        assert_eq!(headers.len(), cells.len());
        assert_eq!(headers[0], "stall_total");
        assert_eq!(headers.len(), 1 + StallCause::ALL.len());
        assert!(cells.iter().all(|c| c == "0"));
    }
}
